"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail.  Keeping a setup.py
lets ``pip install -e .`` use the legacy ``setup.py develop`` path, which
works offline.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
