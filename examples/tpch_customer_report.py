"""TPC-H trading database: ValueRank + Customer/Supplier size-l OSs.

The DBLP examples rely on citation authority; trading databases have no
citations, which is exactly why the paper pairs TPC-H with ValueRank
(Section 2.2): authority flows proportionally to monetary value, so a
customer's summary surfaces their *biggest* orders, not just their most
connected ones.

The example also demonstrates the attribute-selection θ′ filter (the
Partsupp ``comment`` column is excluded from rendered OSs, as in the paper)
and contrasts ValueRank against its value-blind ObjectRank variant (G_A2).

Run:  python examples/tpch_customer_report.py
"""

from __future__ import annotations

from repro.core import QueryOptions, SizeLEngine, Source
from repro.datasets.tpch import TPCHConfig, generate_tpch


def main() -> None:
    data = generate_tpch(TPCHConfig(scale_factor=0.002, seed=11))
    print(f"Database: {data.db}")

    # from_dataset wires the G_DS presets and the default ValueRank store.
    engine = SizeLEngine.from_dataset(data)

    print()
    print("Customer G_DS(0.7) - Figure 12's theta cut:")
    print(engine.gds_for("customer").render())

    # Pick the busiest customer (most orders) as the showcase subject.
    orders = data.db.table("orders")
    cust_idx = orders.schema.column_index("cust_id")
    counts: dict[int, int] = {}
    for _rid, row in orders.scan():
        counts[row[cust_idx]] = counts.get(row[cust_idx], 0) + 1
    busiest_pk = max(counts, key=counts.get)
    busiest_row = data.db.table("customer").row_id_for_pk(busiest_pk)

    complete = engine.complete_os("customer", busiest_row)
    print()
    print(
        f"Busiest customer: Customer#{busiest_pk:06d} with {counts[busiest_pk]} "
        f"orders; complete OS = {complete.size} tuples"
    )
    print()
    print("Size-12 summary (ValueRank):")
    report_options = QueryOptions(l=12, source=Source.PRELIM)
    result = engine.size_l("customer", busiest_row, options=report_options)
    print(result.render())

    # Value-blind contrast: the same summary under the ObjectRank G_A2.
    from repro.ranking import compute_objectrank

    blind_engine = SizeLEngine.from_dataset(
        data, store=compute_objectrank(data.db, data.ga2())
    )
    blind = blind_engine.size_l("customer", busiest_row, options=report_options)
    shared = len(result.selected_uids & blind.selected_uids)
    print()
    print(
        f"Value-blind (G_A2) summary shares {shared}/12 tuples with the "
        f"ValueRank one - the difference is what TotalPrice-weighted "
        f"authority buys."
    )

    # A supplier summary from the other G_DS.
    supplier_result = engine.keyword_query("Supplier#000001", l=10)[0]
    print()
    print("Supplier summary (l = 10):")
    print(supplier_result.result.render())


if __name__ == "__main__":
    main()
