"""The paper's running example, end to end (Examples 1-5).

Walks through the three result paradigms the introduction contrasts:

* Example 3 — plain R-KwS: the ranked list of matching Author tuples;
* Example 4 — the complete OS of the top match (large!);
* Example 5 — size-15 OSs: synoptic, stand-alone summaries per brother;

then shows the machinery underneath: the annotated Author G_DS (Figure 2),
the prelim-l OS with avoidance-condition statistics (Figure 7), and a
comparison of all size-l algorithms on the same OS.

Run:  python examples/dblp_faloutsos.py
"""

from __future__ import annotations

from repro.core import Algorithm, QueryOptions, SizeLEngine, Source
from repro.datasets.dblp import DBLPConfig, generate_dblp


def main() -> None:
    data = generate_dblp(DBLPConfig(n_authors=120, n_papers=300, seed=7))
    # from_dataset wires the G_DS presets and the default ObjectRank store.
    engine = SizeLEngine.from_dataset(data)

    print("=" * 72)
    print("Example 3 - R-KwS result for Q1 'Faloutsos': matching tuples only")
    print("=" * 72)
    matches = engine.searcher.search("Faloutsos")
    for match in matches:
        name = data.db.table("author").value(match.row_id, "name")
        print(f"  Author: {name}   (Im = {match.importance:.2f})")

    christos = matches[0]
    complete = engine.complete_os("author", christos.row_id)
    print()
    print("=" * 72)
    print(f"Example 4 - the complete OS ({complete.size} tuples; first 12 shown)")
    print("=" * 72)
    print(complete.render(max_nodes=12))

    print()
    print("=" * 72)
    print("Example 5 - size-15 OSs for every Faloutsos brother")
    print("=" * 72)
    for entry in engine.keyword_query("Faloutsos", l=15):
        print()
        print(entry.result.render())

    print()
    print("=" * 72)
    print("Figure 2 - the annotated Author G_DS (theta = 0.7)")
    print("=" * 72)
    print(engine.gds_for("author").render())

    print()
    print("=" * 72)
    print("Figure 7 - prelim-l OS generation (l = 15)")
    print("=" * 72)
    prelim, stats = engine.prelim_os("author", christos.row_id, 15)
    print(
        f"complete OS: {complete.size} tuples -> prelim-15 OS: {prelim.size} tuples\n"
        f"extracted {stats.extracted_tuples} tuples; "
        f"Avoidance Condition 1 skipped {stats.avoided_subtrees} subtrees; "
        f"Avoidance Condition 2 capped {stats.limited_extractions} joins"
    )

    print()
    print("=" * 72)
    print("All size-l algorithms on the same OS (l = 15)")
    print("=" * 72)
    for algorithm in Algorithm:
        for source in Source:
            options = QueryOptions(l=15, algorithm=algorithm, source=source)
            result = engine.size_l("author", christos.row_id, options=options)
            print(
                f"  {algorithm.value:>20} on {source.value:8}: "
                f"Im(S) = {result.importance:8.2f}  "
                f"({result.stats['algorithm_seconds'] * 1000:6.1f} ms)"
            )


if __name__ == "__main__":
    main()
