"""Data-protection subject access requests — the paper's motivating
application (Section 1).

"OSs can automate responses to data protection act (DPA) subject access
requests ... data controllers of organizations must extract data for a
given DS from their databases and present it in an intelligible form."

This example plays the data controller for the TPC-H trading database:
given a customer's name, it produces

1. the *complete* personal-data report (the full OS — everything the
   organisation holds about the subject), exported to CSV for delivery, and
2. a size-l executive summary for the case officer, plus a word-budget
   variant (Section 7's future-work feature) capped at 80 rendered words.

Run:  python examples/dpa_subject_access.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import SizeLEngine, Source, word_budget_summary
from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.db.csvio import export_table


def main() -> None:
    data = generate_tpch(TPCHConfig(scale_factor=0.002, seed=11))
    # from_dataset wires the G_DS presets and the default ValueRank store.
    engine = SizeLEngine.from_dataset(data)

    subject_name = "Customer#000007"
    matches = engine.searcher.search(subject_name)
    if not matches:
        raise SystemExit(f"no data subject matching {subject_name!r}")
    subject = matches[0]

    # 1. The complete personal-data report.
    report = engine.complete_os("customer", subject.row_id)
    print(f"Subject access request for {subject_name}")
    print(f"  relations searched : {len(engine.gds_for('customer').nodes())}")
    print(f"  records found      : {report.size} tuples")
    print()
    print("Complete report (first 15 records):")
    print(report.render(max_nodes=15))

    # Deliverable: the subject's own rows, exported as CSV.
    out_dir = Path(tempfile.mkdtemp(prefix="dpa_report_"))
    rows = export_table(data.db.table("customer"), out_dir / "customer.csv")
    print(f"\nExported {rows} customer records to {out_dir / 'customer.csv'}")

    # 2. Case-officer summaries.
    print()
    print("Executive summary (size-10):")
    summary = engine.size_l("customer", subject.row_id, 10, source=Source.PRELIM)
    print(summary.render())

    print()
    budget = 80
    capped = word_budget_summary(report, word_budget=budget)
    print(
        f"Word-budget summary (<= {budget} words; got {capped.stats['word_count']} "
        f"words across {capped.size} tuples):"
    )
    print(capped.render())


if __name__ == "__main__":
    main()
