"""Bring your own database: size-l OSs over a user-defined schema.

The DBLP/TPC-H examples use bundled presets.  This example shows the full
manual wiring a downstream user needs for their *own* relational data:

1. declare schemas (tables, primary/foreign keys, searchable columns),
2. load rows,
3. build the schema graph and let :class:`ComputedAffinityModel` derive the
   G_DS affinities from Equation 1's metrics (no expert values needed),
4. rank tuples (plain PageRank here — no citation or value structure), and
5. query size-l summaries.

The toy domain is a university: students enrol in course offerings taught
by lecturers in departments.  The data-subject relation is ``student``:
"tell me everything important about Dana" in eight tuples.

Run:  python examples/custom_database.py
"""

from __future__ import annotations

from repro.core import EngineBuilder
from repro.db import Column, ColumnType, Database, ForeignKey, TableSchema
from repro.ranking import compute_pagerank
from repro.schema_graph import ComputedAffinityModel, SchemaGraph, build_gds

INT, TEXT, FLOAT = ColumnType.INT, ColumnType.TEXT, ColumnType.FLOAT


def build_university() -> Database:
    db = Database("university")
    db.create_table(
        TableSchema(
            "department",
            [Column("dept_id", INT), Column("name", TEXT, text_searchable=True)],
            primary_key="dept_id",
        )
    )
    db.create_table(
        TableSchema(
            "lecturer",
            [
                Column("lect_id", INT),
                Column("name", TEXT, text_searchable=True),
                Column("dept_id", INT),
            ],
            primary_key="lect_id",
            foreign_keys=[ForeignKey("dept_id", "department", "dept_id")],
        )
    )
    db.create_table(
        TableSchema(
            "course",
            [
                Column("course_id", INT),
                Column("title", TEXT, text_searchable=True),
                Column("credits", INT),
                Column("lect_id", INT),
            ],
            primary_key="course_id",
            foreign_keys=[ForeignKey("lect_id", "lecturer", "lect_id")],
        )
    )
    db.create_table(
        TableSchema(
            "student",
            [
                Column("student_id", INT),
                Column("name", TEXT, text_searchable=True),
                Column("gpa", FLOAT),
            ],
            primary_key="student_id",
        )
    )
    # enrolls is a pure M:N junction: auto-detected, folded into G_DS edges.
    db.create_table(
        TableSchema(
            "enrolls",
            [
                Column("enroll_id", INT),
                Column("student_id", INT),
                Column("course_id", INT),
            ],
            primary_key="enroll_id",
            foreign_keys=[
                ForeignKey("student_id", "student", "student_id"),
                ForeignKey("course_id", "course", "course_id"),
            ],
        )
    )

    departments = ["Computing", "Mathematics", "Physics"]
    for dept_id, name in enumerate(departments):
        db.insert("department", [dept_id, name])
    lecturers = [
        ("Prof. Ada Marek", 0), ("Dr. Lin Osei", 0),
        ("Prof. Iris Vann", 1), ("Dr. Omar Reyes", 2),
    ]
    for lect_id, (name, dept) in enumerate(lecturers):
        db.insert("lecturer", [lect_id, name, dept])
    courses = [
        ("Databases", 10, 0), ("Algorithms", 10, 0), ("Compilers", 5, 1),
        ("Linear Algebra", 10, 2), ("Statistics", 5, 2), ("Mechanics", 10, 3),
    ]
    for course_id, (title, credits, lect) in enumerate(courses):
        db.insert("course", [course_id, title, credits, lect])
    students = [
        ("Dana Quill", 3.9), ("Eli Sorens", 3.1), ("Mia Tran", 3.6),
        ("Noa Petri", 2.8), ("Sam Ulner", 3.3),
    ]
    for student_id, (name, gpa) in enumerate(students):
        db.insert("student", [student_id, name, gpa])
    enrolments = [
        (0, 0), (0, 1), (0, 3), (0, 4),     # Dana: DB, Algo, LinAlg, Stats
        (1, 0), (1, 5), (2, 0), (2, 1),
        (2, 2), (3, 5), (4, 3), (4, 4),
    ]
    for enroll_id, (student, course) in enumerate(enrolments):
        db.insert("enrolls", [enroll_id, student, course])
    db.validate_integrity()
    db.ensure_fk_indexes()
    return db


def main() -> None:
    db = build_university()
    print(f"Database: {db}")

    # No expert affinities: Equation 1 with computed metrics.
    schema_graph = SchemaGraph(db)
    print(f"Schema graph: {schema_graph}")
    affinity = ComputedAffinityModel(schema_graph)
    student_gds = build_gds(
        schema_graph,
        "student",
        affinity,
        max_depth=4,
        label_overrides={
            ("Student", "course_via_student_id"): "Course",
            ("Course", "co_student"): "Classmate",
            ("Course", "lecturer"): "Lecturer",
            ("Lecturer", "department"): "Department",
        },
        root_label="Student",
    )
    print("\nComputed Student G_DS (Equation 1 affinities):")
    print(student_gds.render())

    # No citations/values in this schema: PageRank over the tuple graph.
    store = compute_pagerank(db)
    theta = 0.25  # computed affinities sit lower than expert ones
    session = (
        EngineBuilder()
        .with_database(db)
        .with_gds("student", student_gds)
        .with_store(store)
        .with_theta(theta)
        .build_session()
    )

    print(f"\nSize-8 summaries for keyword query 'Dana' (theta={theta}):")
    for entry in session.iter_keyword_query("Dana", l=8):
        print()
        print(entry.result.render())


if __name__ == "__main__":
    main()
