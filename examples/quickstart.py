"""Quickstart: keyword search to size-l Object Summaries in ~15 lines.

Builds a small synthetic DBLP database, opens a :class:`repro.Session`
(engine + integrated cache), and streams the paper's running example:
the keyword query Q1 = "Faloutsos" with l = 15 (Example 5 of the paper).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import QueryOptions, Session
from repro.datasets.dblp import small_dblp


def main() -> None:
    # 1. A database (swap in your own via repro.EngineBuilder).
    data = small_dblp(seed=7)
    print(f"Database: {data.db}")

    # 2. A session: engine (G_DS presets, ObjectRank store, theta = 0.7)
    #    plus an integrated summary cache.
    session = Session.from_dataset(data)

    # 3. The paper's Q1, streamed: each size-15 OS prints as soon as it is
    #    computed - no waiting for the full result list.
    for entry in session.iter_keyword_query(
        "Faloutsos", options=QueryOptions(l=15)
    ):
        result = entry.result
        print()
        print(
            f"--- {result.summary.root.label} match "
            f"(Im(S) = {result.importance:.2f}, "
            f"complete OS had {result.stats['initial_os_size']} tuples) ---"
        )
        print(result.render())


if __name__ == "__main__":
    main()
