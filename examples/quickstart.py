"""Quickstart: keyword search to size-l Object Summaries in ~20 lines.

Builds a small synthetic DBLP database, ranks tuples with global ObjectRank,
and runs the paper's running example: the keyword query Q1 = "Faloutsos"
with l = 15 (Example 5 of the paper).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import SizeLEngine
from repro.datasets.dblp import small_dblp
from repro.ranking import compute_objectrank


def main() -> None:
    # 1. A database (swap in your own via repro.db.Database + schemas).
    data = small_dblp(seed=7)
    print(f"Database: {data.db}")

    # 2. Global tuple importance: ObjectRank under the paper's default G_A.
    store = compute_objectrank(data.db, data.ga1())

    # 3. The engine: G_DS presets per Data Subject relation, theta = 0.7.
    engine = SizeLEngine(
        data.db,
        {"author": data.author_gds(), "paper": data.paper_gds()},
        store,
    )

    # 4. The paper's Q1: one size-15 OS per matching Data Subject.
    for entry in engine.keyword_query("Faloutsos", l=15):
        result = entry.result
        print()
        print(
            f"--- {result.summary.root.label} match "
            f"(Im(S) = {result.importance:.2f}, "
            f"complete OS had {result.stats['initial_os_size']} tuples) ---"
        )
        print(result.render())


if __name__ == "__main__":
    main()
