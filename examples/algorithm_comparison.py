"""Side-by-side comparison of the size-l algorithms (Sections 4-5).

For one large Author OS, runs DP (optimal), Bottom-Up Pruning, and both
Update Top-Path-l variants across a range of l, on the complete OS and on
the prelim-l OS — printing the approximation-quality and runtime picture
the paper's Figures 9 and 10 summarise, for a single Data Subject.

Run:  python examples/algorithm_comparison.py
"""

from __future__ import annotations

import time

from repro.core import SizeLEngine
from repro.core.bottom_up import bottom_up_size_l
from repro.core.dp import optimal_size_l
from repro.core.top_path import top_path_size_l
from repro.datasets.dblp import DBLPConfig, generate_dblp
from repro.util.text import format_table


def main() -> None:
    data = generate_dblp(DBLPConfig(n_authors=150, n_papers=400, seed=7))
    # from_dataset wires the G_DS presets and the default ObjectRank store.
    engine = SizeLEngine.from_dataset(data)

    subject_row = 0  # Christos Faloutsos - the largest OS in the database
    complete = engine.complete_os("author", subject_row)
    print(f"Subject OS: {complete.size} tuples, Im = {complete.total_importance():.1f}")

    algorithms = {
        "optimal (DP)": optimal_size_l,
        "bottom-up": bottom_up_size_l,
        "top-path": top_path_size_l,
        "top-path s(v)": lambda t, l: top_path_size_l(t, l, variant="optimized"),
    }

    headers = ["l", "source", "algorithm", "Im(S)", "quality %", "ms"]
    rows = []
    for l in (5, 10, 20, 40):  # noqa: E741
        prelim, _stats = engine.prelim_os("author", subject_row, l)
        optimum = optimal_size_l(complete, l).importance
        for source_name, tree in (("complete", complete), (f"prelim({prelim.size})", prelim)):
            for name, algorithm in algorithms.items():
                start = time.perf_counter()
                result = algorithm(tree, l)
                elapsed_ms = (time.perf_counter() - start) * 1000
                quality = 100.0 * result.importance / optimum if optimum else 100.0
                rows.append(
                    [l, source_name, name, result.importance, quality, elapsed_ms]
                )
    print()
    print(format_table(headers, rows, float_format="{:.2f}"))
    print()
    print(
        "Reading guide: quality is Im(S) relative to DP on the complete OS\n"
        "(the paper's Figure 9 measure); prelim sources trade a tiny quality\n"
        "loss for a much smaller initial OS (Figure 10's speed-ups)."
    )


if __name__ == "__main__":
    main()
