"""Chaos benchmark: availability under faults (BENCH_chaos.json).

Quantifies what the reliability tier (PR 7) actually buys, against a live
3-shard cluster, under three seeded fault regimes:

* ``fault_sweep``: the router's transport frames fail with probability
  ``rate`` (both directions, deterministic seeded schedule) while a
  uniform size-l stream runs.  The retry layer must hold **availability**
  (200s / requests) at >= 95% for the 5% fault rate — and every 200 must
  still verify against the fault-free reference (``wrong == 0`` is a hard
  gate at every rate; a wrong answer is worse than an error).
* ``deadline_504``: one worker is SIGKILLed, then requests owned by the
  dead shard run with ``deadline_ms=100``.  The pinned 504 must land in
  roughly the budget (not the router's 30s flat timeout) and its body
  must be **byte-identical** to the 504 a single-process deployment
  produces for the same blown budget — clients cannot tell topologies
  apart even when failing.
* ``degraded``: the same dead-shard cluster queried with
  ``allow_partial=true`` through a short-patience router.  Responses must
  stay 200 (availability gate), be explicitly marked ``degraded`` with
  the missing shard listed, and every entry they *do* carry must match
  the reference at its global rank.

The run self-verifies: a wrong answer in any scenario fails the run even
without ``--check``.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py            # full
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick \
        --check BENCH_chaos.json --out /tmp/bench_chaos_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.cluster import Cluster, ClusterRouter, DatasetSpec  # noqa: E402
from repro.reliability import FaultPlan, FaultRule, install, uninstall  # noqa: E402
from repro.service.deployment import Deployment  # noqa: E402
from repro.service.dispatch import ServiceDispatcher  # noqa: E402

SCHEMA_VERSION = 1
SEED = 7
SIZE_L = 30
SHARDS = 3
CLIENT_THREADS = 4
FAULT_RATES = (0.05, 0.10)
KEYWORDS = ["Faloutsos"]
QUERY_OPTIONS = {"l": 8}

_STABLE = (
    "rank",
    "table",
    "row_id",
    "match_importance",
    "importance",
    "l",
    "algorithm",
    "selected_uids",
    "rendered",
)


def _stable(entry: dict) -> tuple:
    return tuple(
        tuple(entry[key]) if isinstance(entry[key], list) else entry[key]
        for key in _STABLE
    )


def build_reference(quick: bool) -> dict:
    """Working set, truth, and the single-process topology twin."""
    scale = 0.5 if quick else 1.0
    working_set = 48 if quick else 96
    n_requests = 150 if quick else 450
    deployment = Deployment().add(
        "dblp", named="dblp", seed=SEED, scale=scale, cache_size=4096
    )
    dispatcher = ServiceDispatcher(deployment)
    store = deployment.session("dblp").engine.store
    by_rank = np.argsort(store.array("author"))[::-1][:working_set]
    subjects = [("author", int(row_id)) for row_id in by_rank]
    truth = {}
    for table, row_id in subjects:
        status, body = dispatcher.dispatch_safe(
            "/v1/size-l",
            {
                "dataset": "dblp",
                "table": table,
                "row_id": row_id,
                "options": {"l": SIZE_L},
            },
        )
        assert status == 200, body
        truth[(table, row_id)] = tuple(sorted(body["result"]["selected_uids"]))
    status, query_truth = dispatcher.dispatch_safe(
        "/v1/query",
        {"dataset": "dblp", "keywords": KEYWORDS, "options": QUERY_OPTIONS},
    )
    assert status == 200, query_truth
    return {
        "scale": scale,
        "subjects": subjects,
        "truth": truth,
        "query_truth": query_truth,
        "n_requests": n_requests,
        "deployment": deployment,
        "dispatcher": dispatcher,
        "fixture": {
            "dataset": "dblp",
            "seed": SEED,
            "scale": scale,
            "l": SIZE_L,
            "shards": SHARDS,
            "working_set": working_set,
            "client_threads": CLIENT_THREADS,
            "fault_rates": list(FAULT_RATES),
        },
    }


def _request_stream(reference: dict, n_requests: int) -> list[tuple[str, int]]:
    rng = np.random.default_rng(SEED)
    subjects = reference["subjects"]
    picks = rng.integers(0, len(subjects), size=n_requests)
    return [subjects[int(i)] for i in picks]


def _drive(router, stream: list[tuple[str, int]], truth: dict) -> dict:
    """Fire the stream from CLIENT_THREADS threads; verify every 200.

    Failures are acceptable only in the pinned retryable shapes (503
    ``ShardUnavailableError``/``BackendIOError``, 504
    ``DeadlineExceededError``); anything else — above all a 200 whose
    answer differs from the reference — counts as ``wrong``.
    """
    cursor = {"next": 0}
    lock = threading.Lock()
    ok = [0] * CLIENT_THREADS
    unavailable = [0] * CLIENT_THREADS
    wrong = [0] * CLIENT_THREADS
    latencies: list[list[float]] = [[] for _ in range(CLIENT_THREADS)]

    def worker(slot: int) -> None:
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(stream):
                    return
                cursor["next"] = index + 1
            table, row_id = stream[index]
            started = time.perf_counter()
            status, body = router.dispatch_safe(
                "/v1/size-l",
                {
                    "dataset": "dblp",
                    "table": table,
                    "row_id": row_id,
                    "options": {"l": SIZE_L},
                },
            )
            latencies[slot].append(time.perf_counter() - started)
            if status == 200:
                uids = tuple(sorted(body["result"]["selected_uids"]))
                if uids == truth[(table, row_id)]:
                    ok[slot] += 1
                else:
                    wrong[slot] += 1
            elif status in (503, 504) and body.get("error", {}).get("type") in (
                "ShardUnavailableError",
                "BackendIOError",
                "DeadlineExceededError",
            ):
                unavailable[slot] += 1
            else:
                wrong[slot] += 1

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(CLIENT_THREADS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    flat = [latency for per_thread in latencies for latency in per_thread]
    total = len(stream)
    return {
        "requests": total,
        "ok": sum(ok),
        "unavailable": sum(unavailable),
        "wrong": sum(wrong),
        "availability": sum(ok) / total,
        "seconds": elapsed,
        "qps": total / elapsed,
        "mean_ms": float(np.mean(flat)) * 1e3,
        "p99_ms": float(np.percentile(flat, 99)) * 1e3,
    }


def _wait_all_ready(cluster: Cluster, timeout: float = 300.0) -> None:
    deadline = time.monotonic() + timeout
    while cluster.supervisor.ready_count() < cluster.shards:
        if time.monotonic() > deadline:
            raise RuntimeError("cluster did not recover in time")
        time.sleep(0.05)


def bench_fault_sweep(cluster: Cluster, reference: dict) -> dict:
    """Availability and latency under seeded transport-frame faults."""
    stream = _request_stream(reference, reference["n_requests"])
    # one fault-free warm lap: steady-state caches, and a baseline that
    # proves the stream itself is 100% servable
    baseline = _drive(cluster.router, stream, reference["truth"])
    points = []
    for rate in FAULT_RATES:
        install(
            FaultPlan(
                [
                    FaultRule(site="transport.send", probability=rate),
                    FaultRule(site="transport.recv", probability=rate),
                ],
                seed=SEED,
            )
        )
        try:
            driven = _drive(cluster.router, stream, reference["truth"])
        finally:
            uninstall()
        point = {"rate": rate, **driven}
        points.append(point)
        print(
            f"  {rate * 100:.0f}% frame faults: availability "
            f"{point['availability'] * 100:.1f}% "
            f"({point['ok']}/{point['requests']}, wrong {point['wrong']}, "
            f"mean {point['mean_ms']:.2f}ms, p99 {point['p99_ms']:.2f}ms)"
        )
        _wait_all_ready(cluster)  # a ping-strike restart must not leak
    return {
        "baseline": baseline,
        "points": points,
        "availability_at_5pct": points[0]["availability"],
    }


def bench_deadline_504(cluster: Cluster, reference: dict, quick: bool) -> dict:
    """The pinned 504 against a dead shard, twinned across topologies."""
    trials = 10 if quick else 20
    victim = 1
    probe = next(
        subject
        for subject in reference["subjects"]
        if cluster.router.ring.owner("dblp", *subject) == victim
    )
    payload = {
        "dataset": "dblp",
        "table": probe[0],
        "row_id": probe[1],
        "options": {"l": SIZE_L},
        "deadline_ms": 100,
    }
    cluster_latencies = []
    cluster_body = None
    try:
        for _ in range(trials):
            # re-kill before every trial: the supervisor restarts fast
            # enough that a single kill would let later trials hit a
            # recovered shard and measure the wrong thing
            cluster.supervisor.kill(victim)
            started = time.perf_counter()
            status, body = cluster.dispatch_safe("/v1/size-l", payload)
            cluster_latencies.append(time.perf_counter() - started)
            assert status == 504, (status, body)
            cluster_body = body
    finally:
        _wait_all_ready(cluster)

    # the single-process twin: the same 100ms budget blown by slow IO
    dispatcher = reference["dispatcher"]
    # force complete-OS generation through the SQL backend with the disk
    # tier off: every trial pays per-node IO, so the delay fault below
    # reliably blows the budget regardless of scale or warm state
    single_payload = {
        "dataset": "dblp",
        "table": probe[0],
        "row_id": probe[1],
        "options": {
            "l": SIZE_L,
            "source": "complete",
            "backend": "database",
            "snapshot": False,
        },
        "deadline_ms": 100,
    }
    install(FaultPlan([FaultRule(site="db.io", kind="delay", delay_seconds=0.02)]))
    single_latencies = []
    single_body = None
    try:
        for _ in range(trials):
            # a 504 caches nothing, but earlier subjects might: start cold
            dispatcher.dispatch_safe("/v1/admin/invalidate", {"dataset": "dblp"})
            started = time.perf_counter()
            status, body = dispatcher.dispatch_safe("/v1/size-l", single_payload)
            single_latencies.append(time.perf_counter() - started)
            assert status == 504, (status, body)
            single_body = body
    finally:
        uninstall()
        dispatcher.dispatch_safe("/v1/admin/invalidate", {"dataset": "dblp"})

    identical = json.dumps(cluster_body, sort_keys=True) == json.dumps(
        single_body, sort_keys=True
    )
    outcome = {
        "budget_ms": 100,
        "trials": trials,
        "cluster_p50_ms": float(np.percentile(cluster_latencies, 50)) * 1e3,
        "cluster_p99_ms": float(np.percentile(cluster_latencies, 99)) * 1e3,
        "single_p50_ms": float(np.percentile(single_latencies, 50)) * 1e3,
        "single_p99_ms": float(np.percentile(single_latencies, 99)) * 1e3,
        "bodies_byte_identical": identical,
    }
    print(
        f"  deadline 100ms vs dead shard: cluster p50 "
        f"{outcome['cluster_p50_ms']:.0f}ms, single-process p50 "
        f"{outcome['single_p50_ms']:.0f}ms, bodies identical: {identical}"
    )
    return outcome


def bench_degraded(cluster: Cluster, reference: dict, quick: bool) -> dict:
    """allow_partial availability while one shard is down."""
    trials = 30 if quick else 60
    truth = reference["query_truth"]
    truth_by_rank = {e["rank"]: _stable(e) for e in truth["results"]}
    router = ClusterRouter(
        cluster.supervisor,
        request_timeout=5.0,
        retry_interval=0.02,
        partial_patience=0.3,
    )
    victim = 2
    payload = {
        "dataset": "dblp",
        "keywords": KEYWORDS,
        "options": QUERY_OPTIONS,
        "allow_partial": True,
    }
    cluster.supervisor.kill(victim)
    ok = degraded = wrong = 0
    latencies = []
    try:
        for _ in range(trials):
            started = time.perf_counter()
            status, body = router.dispatch_safe("/v1/query", payload)
            latencies.append(time.perf_counter() - started)
            if status != 200:
                continue
            entries_match = all(
                _stable(entry) == truth_by_rank.get(entry["rank"])
                for entry in body["results"]
            )
            if not entries_match or body["total_matches"] != truth["total_matches"]:
                wrong += 1
            elif body.get("degraded"):
                if body.get("missing_shards") == [victim]:
                    degraded += 1
                else:
                    wrong += 1
            else:
                ok += 1
    finally:
        router.close()
        _wait_all_ready(cluster)

    # healthy again: the same flag must now yield a full, unmarked answer
    status, body = cluster.dispatch_safe("/v1/query", payload)
    recovered_full = (
        status == 200
        and "degraded" not in body
        and [_stable(e) for e in body["results"]]
        == [_stable(e) for e in truth["results"]]
    )
    outcome = {
        "trials": trials,
        "full_200": ok,
        "degraded_200": degraded,
        "wrong": wrong,
        "availability": (ok + degraded) / trials,
        "mean_ms": float(np.mean(latencies)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
        "recovered_full_answer": recovered_full,
    }
    print(
        f"  degraded mode: {degraded} degraded + {ok} full of {trials} "
        f"(availability {outcome['availability'] * 100:.1f}%, wrong {wrong}, "
        f"mean {outcome['mean_ms']:.1f}ms)"
    )
    return outcome


def run_mode(quick: bool) -> dict:
    reference = build_reference(quick)
    print(
        f"  working set {reference['fixture']['working_set']} subjects, "
        f"{SHARDS} shards, l={SIZE_L}"
    )
    spec = DatasetSpec(
        name="dblp", database="dblp", seed=SEED, scale=reference["scale"]
    )
    try:
        with Cluster([spec], SHARDS, cache_size=4096, startup_timeout=300) as cluster:
            sweep = bench_fault_sweep(cluster, reference)
            deadline = bench_deadline_504(cluster, reference, quick)
            degraded = bench_degraded(cluster, reference, quick)
    finally:
        reference["deployment"].close()
    verified = {
        "baseline_all_ok": sweep["baseline"]["ok"] == sweep["baseline"]["requests"],
        "sweep_no_wrong_answers": all(p["wrong"] == 0 for p in sweep["points"]),
        "available_at_5pct_faults": sweep["availability_at_5pct"] >= 0.95,
        "deadline_bodies_byte_identical": deadline["bodies_byte_identical"],
        # the 100ms budget — not a flat timeout — must set the clock on
        # both topologies (a lenient 500ms bound; the JSON has exact p50s)
        "deadline_504_is_fast": (
            deadline["cluster_p50_ms"] < 500.0 and deadline["single_p50_ms"] < 500.0
        ),
        "degraded_no_wrong_answers": degraded["wrong"] == 0,
        "degraded_available": degraded["availability"] >= 0.95,
        "degraded_recovers_to_full": degraded["recovered_full_answer"],
    }
    return {
        "fixture": reference["fixture"],
        "fault_sweep": sweep,
        "deadline_504": deadline,
        "degraded": degraded,
        "verified": verified,
    }


def check_regression(baseline_path: Path, mode: str, result: dict) -> int:
    """Fail when availability at the 5% fault rate drops by >3 points."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    try:
        committed = baseline["modes"][mode]["fault_sweep"]["availability_at_5pct"]
    except KeyError:
        print(f"CHECK SKIPPED: no '{mode}' baseline in {baseline_path}")
        return 0
    floor = committed - 0.03
    current = result["fault_sweep"]["availability_at_5pct"]
    verdict = "OK" if current >= floor else "REGRESSION"
    print(
        f"CHECK [{mode}]: availability at 5% faults {current * 100:.1f}% vs "
        f"committed {committed * 100:.1f}% (floor {floor * 100:.1f}%) -> {verdict}"
    )
    return 0 if current >= floor else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fixture (CI smoke mode)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_chaos.json",
        help="JSON output path (merged per mode; default: repo-root "
        "BENCH_chaos.json)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline; exit 1 when availability "
        "under 5% faults drops more than 3 points below it",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    print(f"===== bench_chaos [{mode}] =====")
    result = run_mode(args.quick)

    payload: dict = {"schema_version": SCHEMA_VERSION, "modes": {}}
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text(encoding="utf-8"))
            if existing.get("schema_version") == SCHEMA_VERSION:
                payload = existing
        except json.JSONDecodeError:
            pass
    payload["modes"][mode] = result
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    verified = result["verified"]
    if not all(verified.values()):
        print(f"FAIL: verification failed: {verified}")
        return 1
    if args.check is not None:
        return check_regression(args.check, mode, result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
