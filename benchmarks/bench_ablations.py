"""Ablations on the design choices DESIGN.md calls out.

* **Top-Path s(v) optimisation** (Section 5.2): the paper proposes caching
  the best-AI node per subtree to avoid rescans; the claim that the argmax
  survives prefix removal is heuristic.  We measure both the speed-up and
  the quality deviation against the exact-rescan variant.
* **Prelim-l avoidance conditions** (Section 5.3): what Conditions 1 & 2
  actually save, in extracted tuples and I/O accesses, against a naive
  "generate everything" run on the database backend.
* **DP cost growth** (Section 4): the O(n·l) claim — cell updates should
  scale ~linearly in l for fixed n and ~linearly in n for fixed l.
"""

from __future__ import annotations

import time

import pytest

from benchlib import emit, sample_subjects
from repro.core.dp import optimal_size_l
from repro.core.top_path import top_path_size_l
from repro.util.text import format_table


@pytest.mark.benchmark(group="ablation")
def test_ablation_toppath_sv(benchmark, dblp_engine_bench) -> None:
    engine = dblp_engine_bench
    subjects = sample_subjects(engine, "author", 5, 150)
    trees = [engine.complete_os("author", r) for r in subjects]

    def run_variant(variant: str) -> tuple[float, float]:
        start = time.perf_counter()
        total = 0.0
        for tree in trees:
            for l in (5, 10, 20, 40):  # noqa: E741
                total += top_path_size_l(tree, l, variant=variant).importance
        return time.perf_counter() - start, total

    def experiment():
        return run_variant("naive"), run_variant("optimized")

    (naive_s, naive_im), (opt_s, opt_im) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    deviation = 100.0 * (1.0 - opt_im / naive_im) if naive_im else 0.0
    emit(
        "ablation_toppath_sv",
        f"naive rescans : {naive_s*1000:8.1f} ms  total Im = {naive_im:.1f}\n"
        f"s(v) cached   : {opt_s*1000:8.1f} ms  total Im = {opt_im:.1f}\n"
        f"speed-up x{naive_s/max(opt_s,1e-9):.2f}, quality deviation {deviation:+.2f}%",
    )
    assert opt_im >= 0.9 * naive_im  # the heuristic must stay close


@pytest.mark.benchmark(group="ablation")
def test_ablation_prelim_avoidance(benchmark, dblp_engine_bench) -> None:
    """Avoidance conditions vs naive full generation on the database
    backend: extracted tuples and I/O accesses."""
    engine = dblp_engine_bench
    subjects = sample_subjects(engine, "author", 4, 150)

    def experiment():
        rows = []
        for row_id in subjects:
            engine.query_interface.reset_counters()
            complete = engine.complete_os("author", row_id, backend="database")
            full_io = engine.query_interface.io_accesses
            for l in (10, 50):  # noqa: E741
                engine.query_interface.reset_counters()
                prelim, stats = engine.prelim_os("author", row_id, l, backend="database")
                rows.append(
                    [
                        row_id,
                        l,
                        complete.size,
                        prelim.size,
                        full_io,
                        engine.query_interface.io_accesses,
                        stats.avoided_subtrees,
                        stats.limited_extractions,
                    ]
                )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "ablation_prelim_avoidance",
        format_table(
            ["subject", "l", "|OS|", "|prelim|", "io(full)", "io(prelim)", "av1", "av2"],
            rows,
        ),
    )
    for row in rows:
        assert row[3] <= row[2]  # prelim never larger than complete
        assert row[5] <= row[4]  # avoidance never costs extra I/O


@pytest.mark.benchmark(group="ablation")
def test_ablation_optimal_family(benchmark, dblp_engine_bench) -> None:
    """Section 7: the space of optimal size-l OSs across l.

    Measures how often consecutive optima are nested and how much they
    overlap — the empirical basis for the pre-computation/caching
    discussion (`repro.core.analysis`, `repro.core.cache`)."""
    from repro.core.analysis import nesting_profile, optimal_family, stability_profile

    engine = dblp_engine_bench
    subjects = sample_subjects(engine, "author", 5, 120)
    trees = [engine.complete_os("author", r) for r in subjects]

    def experiment():
        rows = []
        for tree in trees:
            family = optimal_family(tree, 25)
            nesting = nesting_profile(family)
            stability = stability_profile(family)
            rows.append(
                [
                    tree.size,
                    f"{nesting.nested_fraction * 100:.1f}%",
                    len(nesting.breaks),
                    f"{stability.mean_jaccard:.3f}",
                    stability.core_size,
                    stability.union_size,
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "ablation_optimal_family",
        format_table(
            ["|OS|", "nested", "breaks", "mean_jaccard", "core", "union"], rows
        ),
    )
    # Consecutive optima must overlap heavily on average even when nesting
    # breaks — the library's caching story depends on it.
    assert all(float(row[3]) > 0.5 for row in rows)


@pytest.mark.benchmark(group="ablation")
def test_ablation_dp_cost_growth(benchmark, dblp_engine_bench) -> None:
    """DP cell updates grow with l (for one OS) — the O(n·l) story."""
    engine = dblp_engine_bench
    subjects = sample_subjects(engine, "author", 1, 200)
    tree = engine.complete_os("author", subjects[0])

    def experiment():
        return [
            (l, optimal_size_l(tree, l).stats["cell_updates"])
            for l in (5, 10, 20, 40)
        ]

    points = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "ablation_dp_cost",
        f"|OS| = {tree.size}\n"
        + format_table(["l", "cell_updates"], [[l, c] for l, c in points]),
    )
    updates = [c for _l, c in points]
    assert updates == sorted(updates)  # monotone growth in l
    # Growth from l=5 to l=40 should be super-linear but bounded (~l or l^2).
    assert updates[-1] > updates[0]
