"""Session fixtures for the benchmark drivers: bench-scale datasets,
the four G_A settings per database, and engines."""

from __future__ import annotations

import pytest

from benchlib import BENCH_SCALE
from repro.core.engine import SizeLEngine
from repro.datasets.dblp import DBLPConfig, generate_dblp
from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.ranking.objectrank import (
    DAMPING_D1,
    DAMPING_D2,
    DAMPING_D3,
    compute_objectrank,
)
from repro.ranking.valuerank import compute_valuerank


@pytest.fixture(scope="session")
def dblp_bench():
    if BENCH_SCALE == "paper":
        config = DBLPConfig(n_authors=400, n_papers=1600, seed=7)
    else:
        config = DBLPConfig(n_authors=300, n_papers=800, seed=7)
    return generate_dblp(config)


@pytest.fixture(scope="session")
def dblp_settings(dblp_bench):
    """The paper's four ranking settings (Section 6): G_A1 × {d1, d2, d3}
    and G_A2-d1."""
    ga1 = dblp_bench.ga1()
    ga2 = dblp_bench.ga2()
    return {
        "GA1-d1": compute_objectrank(dblp_bench.db, ga1, damping=DAMPING_D1),
        "GA1-d2": compute_objectrank(dblp_bench.db, ga1, damping=DAMPING_D2),
        "GA1-d3": compute_objectrank(dblp_bench.db, ga1, damping=DAMPING_D3),
        "GA2-d1": compute_objectrank(dblp_bench.db, ga2, damping=DAMPING_D1),
    }


@pytest.fixture(scope="session")
def dblp_engine_bench(dblp_bench, dblp_settings):
    return SizeLEngine.from_dataset(dblp_bench, store=dblp_settings["GA1-d1"])


@pytest.fixture(scope="session")
def tpch_bench():
    scale = 0.004 if BENCH_SCALE == "paper" else 0.003
    return generate_tpch(TPCHConfig(scale_factor=scale, seed=11))


@pytest.fixture(scope="session")
def tpch_settings(tpch_bench):
    ga1 = tpch_bench.ga1()
    ga2 = tpch_bench.ga2()
    return {
        "GA1-d1": compute_valuerank(tpch_bench.db, ga1, damping=DAMPING_D1),
        "GA1-d2": compute_valuerank(tpch_bench.db, ga1, damping=DAMPING_D2),
        "GA1-d3": compute_valuerank(tpch_bench.db, ga1, damping=DAMPING_D3),
        "GA2-d1": compute_valuerank(tpch_bench.db, ga2, damping=DAMPING_D1),
    }


@pytest.fixture(scope="session")
def tpch_engine_bench(tpch_bench, tpch_settings):
    return SizeLEngine.from_dataset(tpch_bench, store=tpch_settings["GA1-d1"])
