"""Serving-layer benchmark: concurrent keyword queries (BENCH_serving.json).

Models the ROADMAP's target deployment — many clients streaming keyword
queries at one :class:`~repro.session.Session` — and measures what the
concurrent serving layer (thread-safe single-flight
:class:`~repro.core.cache.SummaryCache` + ``Executor`` fan-out) buys:

* ``keyword_stream_dbms`` (the headline): a zipfian stream of author
  keyword queries served by 1/4/8 worker threads against a simulated
  remote DBMS backend — the paper's own efficiency metric is I/O accesses
  (Figure 10), so each backend join carries a fixed I/O latency.  Worker
  threads overlap those waits; this is the scenario thread fan-out exists
  for, and the one the ``--check`` gate regresses.
* ``fanout_dbms``: ``Session.size_l_many(..., workers=N)`` over the cold
  distinct-subject set — the fan-out API itself, no cache hits involved.
* ``keyword_stream_inmem``: the same stream against the in-memory
  data-graph backend.  Pure-Python CPU work shares the GIL, so this row
  honestly documents that threads do *not* speed up the CPU-bound path
  (on this box: one core); it is reported, not gated.

Each scenario also reports the cache hit-rate under the zipfian mix and
verifies **single-flight**: across every thread and every repeat of a
subject, ``result_computations == distinct subjects`` (a violated
invariant fails the run even without ``--check``).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full
    PYTHONPATH=src python benchmarks/bench_serving.py --quick
    PYTHONPATH=src python benchmarks/bench_serving.py --quick \
        --check BENCH_serving.json --out /tmp/bench_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.engine import SizeLEngine  # noqa: E402
from repro.core.generation import DatabaseBackend  # noqa: E402
from repro.core.options import QueryOptions, Source  # noqa: E402
from repro.core.registry import register_backend  # noqa: E402
from repro.datasets.dblp import DBLPConfig, generate_dblp  # noqa: E402
from repro.db.query import QueryInterface  # noqa: E402
from repro.ranking.objectrank import compute_objectrank  # noqa: E402
from repro.session import Session  # noqa: E402

SCHEMA_VERSION = 1
WORKER_GRID = (1, 4, 8)
SIZE_L = 10
ZIPF_A = 1.2
#: Each (scenario, workers) cell keeps its best-of-N run: serial streams
#: of thousands of 100us sleeps are very sensitive to kernel timer slack,
#: and the minimum filters those spikes out (same rationale as
#: bench_core_micro's _best_of).
REPEATS = 3


class SimulatedDBMSBackend:
    """The database backend with a fixed latency per I/O access.

    The paper counts one I/O access per join statement (Section 6.3); a
    remote DBMS pays network + page latency for each.  ``time.sleep``
    releases the GIL, so this models exactly the wait a serving thread
    pool is supposed to overlap.
    """

    def __init__(self, inner: DatabaseBackend, io_latency_s: float) -> None:
        self.inner = inner
        self.io_latency_s = io_latency_s

    @property
    def db(self):
        return self.inner.db

    def children(self, gds_child, parent):
        time.sleep(self.io_latency_s)
        return self.inner.children(gds_child, parent)

    def children_top(self, gds_child, parent, store, threshold, limit):
        time.sleep(self.io_latency_s)
        return self.inner.children_top(gds_child, parent, store, threshold, limit)


def _register_dbms_sim(io_latency_s: float) -> None:
    def factory(engine: SizeLEngine) -> SimulatedDBMSBackend:
        # A private QueryInterface per generation keeps the I/O counters
        # of concurrent generations from racing on one shared object.
        return SimulatedDBMSBackend(
            DatabaseBackend(QueryInterface(engine.db)), io_latency_s
        )

    register_backend("dbms_sim", factory, replace=True)


def build_workload(quick: bool):
    """Engine + a deterministic zipfian stream of author-name queries."""
    if quick:
        config = DBLPConfig(
            n_authors=120, n_papers=280, mean_citations_per_paper=5.0, seed=7
        )
        n_subjects, n_queries, io_latency_s = 12, 60, 100e-6
    else:
        config = DBLPConfig(seed=7)  # the bench-scale defaults (300 / 800)
        n_subjects, n_queries, io_latency_s = 40, 200, 100e-6

    dataset = generate_dblp(config)
    store = compute_objectrank(dataset.db, dataset.ga1())
    engine = SizeLEngine(dataset.db, {"author": dataset.author_gds()}, store)
    _register_dbms_sim(io_latency_s)

    # Subject universe: the most important authors (prominent subjects with
    # the large OSs the paper's efficiency experiments use); query mix:
    # zipfian over their importance rank — the skew a popular service sees.
    by_rank = np.argsort(store.array("author"))[::-1][:n_subjects]
    author = dataset.db.table("author")
    name_idx = author.schema.column_index("name")
    names = [str(author.row(int(row))[name_idx]) for row in by_rank]

    rng = np.random.default_rng(7)
    ranks = np.minimum(rng.zipf(ZIPF_A, size=n_queries) - 1, n_subjects - 1)
    stream = [names[int(rank)] for rank in ranks]
    subjects = [("author", int(row)) for row in by_rank]

    return {
        "engine": engine,
        "stream": stream,
        "subjects": subjects,
        "distinct_in_stream": len(set(stream)),
        "fixture": {
            "dataset": "synthetic-dblp",
            "seed": config.seed,
            "n_authors": config.n_authors,
            "n_papers": config.n_papers,
        },
        "workload": {
            "n_queries": n_queries,
            "subject_universe": n_subjects,
            "zipf_a": ZIPF_A,
            "io_latency_us": io_latency_s * 1e6,
            "l": SIZE_L,
        },
    }


def _run_stream(engine, stream, options: QueryOptions, workers: int) -> dict:
    """Serve the whole query stream through *workers* client threads."""
    session = Session(engine, cache_size=256)  # cold cache per measurement
    matched: set[tuple[str, int]] = set()

    def serve(keywords: str) -> list[tuple[str, int]]:
        return [
            (entry.match.table, entry.match.row_id)
            for entry in session.keyword_query(keywords, options=options)
        ]

    start = time.perf_counter()
    if workers == 1:
        for keywords in stream:
            matched.update(serve(keywords))
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for subjects in pool.map(serve, stream):
                matched.update(subjects)
    seconds = time.perf_counter() - start

    stats = session.cache_stats()
    return {
        "seconds": seconds,
        "queries_per_second": len(stream) / seconds,
        "hit_rate": stats.hit_rate,
        "distinct_subjects": len(matched),
        "cache": stats.as_dict(),
    }


def _run_fanout(engine, subjects, options: QueryOptions, workers: int) -> dict:
    """One cold ``size_l_many`` fan-out over the distinct subject set."""
    session = Session(engine, cache_size=256)
    start = time.perf_counter()
    results = session.size_l_many(subjects, options=options, workers=workers)
    seconds = time.perf_counter() - start
    assert len(results) == len(subjects)
    return {
        "seconds": seconds,
        "subjects_per_second": len(subjects) / seconds,
        "cache": session.cache_stats().as_dict(),
    }


def _best_of(run, workers: int) -> dict:
    return min(
        (run(workers) for _ in range(REPEATS)), key=lambda row: row["seconds"]
    )


def _scenario(run, label: str, per_worker_key: str) -> dict:
    results = {str(workers): _best_of(run, workers) for workers in WORKER_GRID}
    base = results["1"]["seconds"]
    scenario = {
        "workers": results,
        "speedup_4x": base / results["4"]["seconds"],
        "speedup_8x": base / results["8"]["seconds"],
    }
    print(f"  {label}:")
    for workers in WORKER_GRID:
        row = results[str(workers)]
        extra = (
            f", hit-rate {row['hit_rate'] * 100:.0f}%"
            if "hit_rate" in row
            else ""
        )
        print(
            f"    workers={workers}: {row['seconds']:.3f}s "
            f"({row[per_worker_key]:.1f}/s{extra})"
        )
    print(
        f"    speedup: {scenario['speedup_4x']:.2f}x @4, "
        f"{scenario['speedup_8x']:.2f}x @8"
    )
    return scenario


def run_mode(quick: bool) -> dict:
    workload = build_workload(quick)
    engine = workload["engine"]
    stream = workload["stream"]
    subjects = workload["subjects"]

    dbms_options = QueryOptions(
        l=SIZE_L, source=Source.PRELIM, backend="dbms_sim", max_results=1
    ).normalized()
    inmem_options = QueryOptions(
        l=SIZE_L, source=Source.PRELIM, max_results=1
    ).normalized()

    print(
        f"workload: {workload['workload']['n_queries']} queries over "
        f"{workload['workload']['subject_universe']} subjects "
        f"(zipf a={ZIPF_A}, {workload['distinct_in_stream']} distinct in stream, "
        f"io latency {workload['workload']['io_latency_us']:.0f}us)"
    )

    scenarios = {
        "keyword_stream_dbms": _scenario(
            lambda w: _run_stream(engine, stream, dbms_options, w),
            "keyword stream, simulated-DBMS backend",
            "queries_per_second",
        ),
        "fanout_dbms": _scenario(
            lambda w: _run_fanout(engine, subjects, dbms_options, w),
            "size_l_many fan-out, simulated-DBMS backend",
            "subjects_per_second",
        ),
        "keyword_stream_inmem": _scenario(
            lambda w: _run_stream(engine, stream, inmem_options, w),
            "keyword stream, in-memory data-graph backend (GIL-bound)",
            "queries_per_second",
        ),
    }

    # Single-flight invariant, checked on the most concurrent stream run:
    # every distinct subject was computed exactly once, cache-wide.
    heaviest = scenarios["keyword_stream_dbms"]["workers"]["8"]
    single_flight = {
        "result_computations": heaviest["cache"]["result_computations"],
        "distinct_subjects": heaviest["distinct_subjects"],
        "verified": heaviest["cache"]["result_computations"]
        == heaviest["distinct_subjects"],
    }
    print(
        f"  single-flight @8 workers: {single_flight['result_computations']} "
        f"computations for {single_flight['distinct_subjects']} distinct "
        f"subjects -> {'OK' if single_flight['verified'] else 'VIOLATED'}"
    )

    return {
        "fixture": workload["fixture"],
        "workload": workload["workload"],
        "scenarios": scenarios,
        "single_flight": single_flight,
    }


def check_regression(baseline_path: Path, mode: str, result: dict) -> int:
    """Fail when the 4-worker serving speedup fell below half the baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    try:
        committed = baseline["modes"][mode]["scenarios"]["keyword_stream_dbms"][
            "speedup_4x"
        ]
    except KeyError:
        print(f"CHECK SKIPPED: no '{mode}' baseline in {baseline_path}")
        return 0
    floor = committed / 2.0
    current = result["scenarios"]["keyword_stream_dbms"]["speedup_4x"]
    verdict = "OK" if current >= floor else "REGRESSION"
    print(
        f"CHECK [{mode}]: serving speedup @4 workers {current:.2f}x vs "
        f"committed {committed:.2f}x (floor {floor:.2f}x) -> {verdict}"
    )
    return 0 if current >= floor else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fixture (CI smoke mode)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_serving.json",
        help="JSON output path (merged per mode; default: repo-root "
        "BENCH_serving.json)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline; exit 1 on a >2x regression",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    print(f"===== bench_serving [{mode}] =====")
    result = run_mode(args.quick)

    payload: dict = {"schema_version": SCHEMA_VERSION, "modes": {}}
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text(encoding="utf-8"))
            if existing.get("schema_version") == SCHEMA_VERSION:
                payload = existing
        except json.JSONDecodeError:
            pass
    payload["modes"][mode] = result
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    if not result["single_flight"]["verified"]:
        print("FAIL: single-flight invariant violated")
        return 1
    if args.check is not None:
        return check_regression(args.check, mode, result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
