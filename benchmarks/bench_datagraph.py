"""DGBUILD — Section 6.3 in-text: data-graph construction cost and size.

The paper: "The DBLP and TPC-H data-graphs take only 17 sec. and 128 sec.
to generate and occupy 150MB and 500MB" (2011 hardware, full datasets).
Our datasets are scaled down; the bench records build time and the
footprint so the ratio to database size can be compared.
"""

from __future__ import annotations

import pytest

from benchlib import emit
from repro.datagraph.builder import build_data_graph


@pytest.mark.benchmark(group="datagraph")
def test_dgbuild_dblp(benchmark, dblp_bench) -> None:
    graph = benchmark(build_data_graph, dblp_bench.db)
    emit(
        "dgbuild_dblp",
        f"rows={dblp_bench.db.total_rows}  fk_tuple_edges={graph.edge_count}  "
        f"approx_bytes={graph.approx_size_bytes()}",
    )
    assert graph.edge_count > 0


@pytest.mark.benchmark(group="datagraph")
def test_dgbuild_tpch(benchmark, tpch_bench) -> None:
    graph = benchmark(build_data_graph, tpch_bench.db)
    emit(
        "dgbuild_tpch",
        f"rows={tpch_bench.db.total_rows}  fk_tuple_edges={graph.edge_count}  "
        f"approx_bytes={graph.approx_size_bytes()}",
    )
    assert graph.edge_count > 0


@pytest.mark.benchmark(group="generation")
def test_os_generation_datagraph_backend(benchmark, dblp_engine_bench) -> None:
    """Raw Algorithm-5 throughput on the data-graph backend."""
    engine = dblp_engine_bench
    tree = benchmark(engine.complete_os, "author", 0, "datagraph")
    assert tree.size > 0


@pytest.mark.benchmark(group="generation")
def test_os_generation_database_backend(benchmark, dblp_engine_bench) -> None:
    """Raw Algorithm-5 throughput issuing per-join queries ("directly from
    the database")."""
    engine = dblp_engine_bench
    tree = benchmark(engine.complete_os, "author", 0, "database")
    assert tree.size > 0
