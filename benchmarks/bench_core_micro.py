"""Micro-benchmark of the columnar core hot path (BENCH_core.json).

Measures, on the synthetic DBLP fixture:

* data-graph build time and exact memory bytes (CSR layout);
* complete-OS generation throughput — legacy ``generate_os`` (one OSNode
  per tuple) vs the columnar ``generate_os_flat`` hot path, same subjects,
  same run;
* size-l latency of dp / bottom_up / top_path / top_path_optimized over
  both representations (the selections are asserted identical first).

Results are written as JSON (default: ``BENCH_core.json`` at the repo
root) under a per-mode key, so one file can hold both the ``full`` run
(the committed perf trajectory future PRs regress against) and the
``quick`` run (the CI smoke gate's baseline).

``--check BASELINE.json`` is the CI regression gate: it compares this
run's flat-vs-legacy generation *speedup* against the same mode's
committed speedup and fails (exit 1) when the current value has dropped
below half of it.  The gate is a within-run ratio rather than absolute
seconds because both paths run on the same machine in the same process —
absolute timings on shared CI runners are noise, the ratio is not.

Usage::

    PYTHONPATH=src python benchmarks/bench_core_micro.py            # full
    PYTHONPATH=src python benchmarks/bench_core_micro.py --quick
    PYTHONPATH=src python benchmarks/bench_core_micro.py --quick \
        --check BENCH_core.json --out /tmp/bench_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.bottom_up import bottom_up_size_l  # noqa: E402
from repro.core.dp import optimal_size_l  # noqa: E402
from repro.core.engine import SizeLEngine  # noqa: E402
from repro.core.top_path import top_path_size_l  # noqa: E402
from repro.datagraph.builder import timed_build  # noqa: E402
from repro.datasets.dblp import DBLPConfig, generate_dblp  # noqa: E402
from repro.ranking.objectrank import compute_objectrank  # noqa: E402

SCHEMA_VERSION = 1
SIZE_L = 20

ALGORITHMS = {
    "dp": lambda tree, l: optimal_size_l(tree, l),
    "bottom_up": lambda tree, l: bottom_up_size_l(tree, l),
    "top_path": lambda tree, l: top_path_size_l(tree, l),
    "top_path_optimized": lambda tree, l: top_path_size_l(
        tree, l, variant="optimized"
    ),
}


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall time of *fn* (minimum filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_mode(quick: bool) -> dict:
    if quick:
        config = DBLPConfig(
            n_authors=120, n_papers=280, mean_citations_per_paper=5.0, seed=7
        )
        n_subjects, repeats = 4, 2
    else:
        config = DBLPConfig(seed=7)  # the bench-scale defaults (300 / 800)
        n_subjects, repeats = 6, 3

    dataset = generate_dblp(config)
    store = compute_objectrank(dataset.db, dataset.ga1())

    graph, build_seconds = timed_build(dataset.db)
    engine = SizeLEngine(
        dataset.db, {"author": dataset.author_gds()}, store, data_graph=graph
    )

    # The most important authors: prominent subjects with the large OSs the
    # paper's efficiency experiments use (deterministic under the seed).
    subjects = [
        int(row) for row in np.argsort(store.array("author"))[::-1][:n_subjects]
    ]

    # Sanity before timing anything: the two representations must agree.
    for subject in subjects:
        legacy = engine.complete_os("author", subject)
        flat = engine.complete_os_flat("author", subject)
        assert flat.size == legacy.size
        for name, algo in ALGORITHMS.items():
            a = algo(legacy, SIZE_L)
            b = algo(flat, SIZE_L)
            assert a.selected_uids == b.selected_uids, (name, subject)
            assert abs(a.importance - b.importance) <= 1e-9 * max(
                1.0, abs(a.importance)
            ), (name, subject)

    total_nodes = sum(engine.complete_os_flat("author", s).size for s in subjects)

    def generate_legacy() -> None:
        for subject in subjects:
            engine.complete_os("author", subject)

    def generate_flat() -> None:
        for subject in subjects:
            engine.complete_os_flat("author", subject)

    legacy_seconds = _best_of(generate_legacy, repeats)
    flat_seconds = _best_of(generate_flat, repeats)

    largest = subjects[0]
    legacy_tree = engine.complete_os("author", largest)
    flat_tree = engine.complete_os_flat("author", largest)
    algorithms = {}
    for name, algo in ALGORITHMS.items():
        algo_legacy = _best_of(lambda a=algo: a(legacy_tree, SIZE_L), repeats)
        algo_flat = _best_of(lambda a=algo: a(flat_tree, SIZE_L), repeats)
        algorithms[name] = {
            "l": SIZE_L,
            "legacy_seconds": algo_legacy,
            "flat_seconds": algo_flat,
            "speedup": algo_legacy / algo_flat,
        }

    return {
        "fixture": {
            "dataset": "synthetic-dblp",
            "seed": config.seed,
            "n_authors": config.n_authors,
            "n_papers": config.n_papers,
            "subjects": len(subjects),
            "total_os_nodes": total_nodes,
            "largest_os_nodes": flat_tree.size,
        },
        "data_graph": {
            "build_seconds": build_seconds,
            "size_bytes": graph.size_bytes(),
            "tuple_edges": graph.edge_count,
        },
        "complete_os_generation": {
            "legacy_seconds": legacy_seconds,
            "flat_seconds": flat_seconds,
            "speedup": legacy_seconds / flat_seconds,
            "legacy_nodes_per_second": total_nodes / legacy_seconds,
            "flat_nodes_per_second": total_nodes / flat_seconds,
        },
        "size_l": algorithms,
    }


def print_report(mode: str, result: dict) -> None:
    gen = result["complete_os_generation"]
    dg = result["data_graph"]
    fixture = result["fixture"]
    print(f"===== bench_core_micro [{mode}] =====")
    print(
        f"fixture: {fixture['n_authors']} authors / {fixture['n_papers']} papers, "
        f"{fixture['subjects']} subjects, {fixture['total_os_nodes']} OS nodes"
    )
    print(
        f"data graph: build {dg['build_seconds'] * 1000:.1f} ms, "
        f"{dg['size_bytes']} bytes (exact), {dg['tuple_edges']} tuple edges"
    )
    print(
        f"complete-OS generation: legacy {gen['legacy_seconds'] * 1000:.1f} ms, "
        f"flat {gen['flat_seconds'] * 1000:.1f} ms  "
        f"-> {gen['speedup']:.1f}x "
        f"({gen['flat_nodes_per_second']:,.0f} nodes/s)"
    )
    for name, algo in result["size_l"].items():
        print(
            f"size-l {name:<18} legacy {algo['legacy_seconds'] * 1000:7.2f} ms, "
            f"flat {algo['flat_seconds'] * 1000:7.2f} ms  "
            f"-> {algo['speedup']:.2f}x"
        )


def check_regression(baseline_path: Path, mode: str, result: dict) -> int:
    """Fail (1) when generation speedup fell below half the baseline's."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    try:
        committed = baseline["modes"][mode]["complete_os_generation"]["speedup"]
    except KeyError:
        print(f"CHECK SKIPPED: no '{mode}' baseline in {baseline_path}")
        return 0
    floor = committed / 2.0
    current = result["complete_os_generation"]["speedup"]
    verdict = "OK" if current >= floor else "REGRESSION"
    print(
        f"CHECK [{mode}]: flat generation speedup {current:.1f}x vs committed "
        f"{committed:.1f}x (floor {floor:.1f}x) -> {verdict}"
    )
    return 0 if current >= floor else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fixture (CI smoke mode)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_core.json",
        help="JSON output path (merged per mode; default: repo-root BENCH_core.json)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline; exit 1 on a >2x regression",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    result = run_mode(args.quick)
    print_report(mode, result)

    payload: dict = {"schema_version": SCHEMA_VERSION, "modes": {}}
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text(encoding="utf-8"))
            if existing.get("schema_version") == SCHEMA_VERSION:
                payload = existing
        except json.JSONDecodeError:
            pass
    payload["modes"][mode] = result
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    if args.check is not None:
        return check_regression(args.check, mode, result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
