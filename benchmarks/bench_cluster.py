"""Cluster benchmark: sharded serving throughput (BENCH_cluster.json).

Measures what ``repro serve --shards N`` buys on one box with a fixed
**per-process** cache budget — the deployment knob sharding actually
controls.  Every worker is allowed the same complete-OS cache capacity;
the consistent-hash ring splits the working set across workers, so N
shards hold N disjoint partitions where one process holds one partition's
worth and thrashes on the rest:

* ``sweep``: a uniform-random size-l stream over a working set chosen to
  *overflow* one worker's cache (the capacity is ~35% of the set).  At 1
  shard most requests pay a complete-OS regeneration; at 4 shards each
  partition fits its worker's cache and requests are memo hits.  The
  headline is ``speedup_4shard_vs_1`` (aggregate QPS ratio), gated by
  ``--check``; hit rates from the merged worker stats are reported so the
  mechanism is visible, not inferred.
* ``mmap_rss``: every worker attaches the *same* precomputed snapshot
  directory, whose arenas are ``np.load(..., mmap_mode="r")`` file-backed
  mappings.  After a warm lap touches the pages, each worker's
  ``/proc/<pid>/smaps`` is read for the snapshot-dir mappings: once two
  or more workers map the snapshot, per-worker private bytes must be ~0
  (read-only mappings never copy; a lone mapper's pages are merely
  *accounted* private), and the summed proportional-set-size must stay
  flat as shards grow — the page
  cache holds one copy no matter how many workers map it, so the
  incremental snapshot RSS of an extra shard is near zero.
* ``kill_recovery``: the same stream at 2 shards while one worker is
  SIGKILLed mid-run.  Accepted requests must stay *correct*: every 200 is
  verified node-for-node against an in-process reference Session, every
  failure must be the pinned 503 body (``wrong`` is required to be 0),
  and the killed shard must answer again within the supervisor's restart
  budget (``recovery_seconds``).

The run self-verifies: every response in every mode is compared against
reference ``Session.size_l`` output — a routing bug that served the wrong
shard's answer would fail the run even without ``--check``.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py            # full
    PYTHONPATH=src python benchmarks/bench_cluster.py --quick
    PYTHONPATH=src python benchmarks/bench_cluster.py --quick \
        --check BENCH_cluster.json --out /tmp/bench_cluster_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.cluster import Cluster, ClusterRouter, DatasetSpec  # noqa: E402
from repro.core.options import QueryOptions  # noqa: E402
from repro.session import Session  # noqa: E402

SCHEMA_VERSION = 1
SEED = 7
SIZE_L = 30
SHARD_SWEEP = (1, 2, 4)
CLIENT_THREADS = 4
#: Measured passes per shard count; best-of wins.  A single pass is at
#: the mercy of transient CPU contention (N workers + router + client
#: threads share the box), which can halve one point and fake a
#: regression.
REPEATS = 3
#: Per-worker cache capacity as a fraction of the working set: small
#: enough that one worker thrashes, large enough that a 4-way partition
#: (working_set / 4 subjects per worker) fits comfortably.
CACHE_FRACTION = 0.35


def build_reference(quick: bool) -> dict:
    """The working set + ground-truth size-l answers from one Session."""
    # full mode uses a bigger database so a cache miss (complete-OS
    # regeneration, ~3ms) clearly dominates the per-request transport
    # overhead (~0.5ms) — the contrast sharding is supposed to remove
    scale = 0.5 if quick else 3.0
    working_set = 48 if quick else 120
    n_requests = 400 if quick else 1200
    session = Session.from_named("dblp", seed=SEED, scale=scale, cache_size=4096)
    store = session.engine.store
    by_rank = np.argsort(store.array("author"))[::-1][:working_set]
    subjects = [("author", int(row_id)) for row_id in by_rank]
    options = QueryOptions(l=SIZE_L)
    truth = {
        subject: tuple(
            sorted(session.size_l(subject[0], subject[1], options=options).selected_uids)
        )
        for subject in subjects
    }
    session.close()
    return {
        "scale": scale,
        "subjects": subjects,
        "truth": truth,
        "n_requests": n_requests,
        "cache_size": max(4, int(working_set * CACHE_FRACTION)),
        "fixture": {
            "dataset": "dblp",
            "seed": SEED,
            "scale": scale,
            "l": SIZE_L,
            "working_set": working_set,
            "per_worker_cache": max(4, int(working_set * CACHE_FRACTION)),
            "client_threads": CLIENT_THREADS,
        },
    }


def _request_stream(reference: dict, n_requests: int) -> list[tuple[str, int]]:
    """A deterministic uniform-random subject stream (the anti-zipf: every
    subject is equally hot, so capacity — not popularity — decides hits)."""
    rng = np.random.default_rng(SEED)
    subjects = reference["subjects"]
    picks = rng.integers(0, len(subjects), size=n_requests)
    return [subjects[int(i)] for i in picks]


def _drive(
    router,
    stream: list[tuple[str, int]],
    truth: dict,
    *,
    collect_failures: bool = False,
    milestone: tuple[int, threading.Event] | None = None,
) -> dict:
    """Fire the stream from CLIENT_THREADS threads; verify every answer.

    ``milestone=(index, event)`` sets the event once the stream reaches
    that index — how the kill-recovery mode lands its SIGKILL mid-stream
    instead of racing a wall-clock timer against a fast run.
    """
    cursor = {"next": 0}
    lock = threading.Lock()
    ok = [0] * CLIENT_THREADS
    unavailable = [0] * CLIENT_THREADS
    wrong = [0] * CLIENT_THREADS
    latencies: list[list[float]] = [[] for _ in range(CLIENT_THREADS)]

    def worker(slot: int) -> None:
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(stream):
                    return
                cursor["next"] = index + 1
            if milestone is not None and index >= milestone[0]:
                milestone[1].set()
            table, row_id = stream[index]
            started = time.perf_counter()
            status, body = router.dispatch_safe(
                "/v1/size-l",
                {
                    "dataset": "dblp",
                    "table": table,
                    "row_id": row_id,
                    "options": {"l": SIZE_L},
                },
            )
            latencies[slot].append(time.perf_counter() - started)
            if status == 200:
                uids = tuple(sorted(body["result"]["selected_uids"]))
                if uids == truth[(table, row_id)]:
                    ok[slot] += 1
                else:
                    wrong[slot] += 1
            elif (
                collect_failures
                and status == 503
                and body.get("error", {}).get("type") == "ShardUnavailableError"
            ):
                unavailable[slot] += 1
            else:
                wrong[slot] += 1

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(CLIENT_THREADS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    flat = [latency for per_thread in latencies for latency in per_thread]
    return {
        "requests": len(stream),
        "ok": sum(ok),
        "unavailable_503": sum(unavailable),
        "wrong": sum(wrong),
        "seconds": elapsed,
        "qps": len(stream) / elapsed,
        "mean_ms": float(np.mean(flat)) * 1e3,
        "p99_ms": float(np.percentile(flat, 99)) * 1e3,
    }


def bench_sweep(reference: dict) -> dict:
    """Aggregate QPS vs shard count, fixed per-worker cache budget."""
    stream = _request_stream(reference, reference["n_requests"])
    spec = DatasetSpec(
        name="dblp", database="dblp", seed=SEED, scale=reference["scale"]
    )
    points = []
    for shards in SHARD_SWEEP:
        with Cluster(
            [spec],
            shards,
            cache_size=reference["cache_size"],
            startup_timeout=300,
        ) as cluster:
            # one warm lap (each subject once) so the measured pass sees
            # steady-state caches, not cold-start ones
            for table, row_id in reference["subjects"]:
                status, _ = cluster.dispatch_safe(
                    "/v1/size-l",
                    {
                        "dataset": "dblp",
                        "table": table,
                        "row_id": row_id,
                        "options": {"l": SIZE_L},
                    },
                )
                assert status == 200
            _, before = cluster.dispatch_safe("/v1/stats", {"dataset": "dblp"})
            passes = [
                _drive(cluster.router, stream, reference["truth"])
                for _ in range(REPEATS)
            ]
            _, after = cluster.dispatch_safe("/v1/stats", {"dataset": "dblp"})
        best = max(passes, key=lambda driven: driven["qps"])
        hits = after["cache"]["hits"] - before["cache"]["hits"]
        misses = after["cache"]["misses"] - before["cache"]["misses"]
        point = {
            "shards": shards,
            **best,
            "repeats": REPEATS,
            # correctness is judged over EVERY pass, not just the fastest
            "wrong": sum(driven["wrong"] for driven in passes),
            "all_passes_correct": all(
                driven["wrong"] == 0 and driven["ok"] == driven["requests"]
                for driven in passes
            ),
            "measured_hits": hits,
            "measured_misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }
        points.append(point)
        print(
            f"  {shards} shard(s): {point['qps']:.0f} QPS "
            f"(mean {point['mean_ms']:.2f}ms, p99 {point['p99_ms']:.2f}ms, "
            f"hit rate {point['hit_rate'] * 100:.0f}%, "
            f"wrong {point['wrong']})"
        )
    by_shards = {point["shards"]: point for point in points}
    return {
        "points": points,
        "speedup_4shard_vs_1": by_shards[4]["qps"] / by_shards[1]["qps"],
        "speedup_2shard_vs_1": by_shards[2]["qps"] / by_shards[1]["qps"],
    }


def _snapshot_mappings(pid: int, snapshot_dir: Path) -> "dict | None":
    """Aggregate smaps fields over one process's snapshot-dir mappings (kB)."""
    needle = str(snapshot_dir.resolve())
    totals = {
        "rss_kb": 0,
        "pss_kb": 0,
        "private_kb": 0,
        "private_dirty_kb": 0,
        "shared_kb": 0,
    }
    try:
        text = Path(f"/proc/{pid}/smaps").read_text(encoding="utf-8")
    except OSError:
        return None
    in_snapshot = False
    for line in text.splitlines():
        if line.endswith("kB") and ":" in line:
            if not in_snapshot:
                continue
            key, _, rest = line.partition(":")
            kb = int(rest.split()[0])
            if key == "Rss":
                totals["rss_kb"] += kb
            elif key == "Pss":
                totals["pss_kb"] += kb
            elif key in ("Private_Clean", "Private_Dirty"):
                totals["private_kb"] += kb
                if key == "Private_Dirty":
                    totals["private_dirty_kb"] += kb
            elif key in ("Shared_Clean", "Shared_Dirty"):
                totals["shared_kb"] += kb
        elif not line.startswith("VmFlags"):
            # a mapping header: does it name a file inside the snapshot?
            in_snapshot = needle in line
    return totals


def bench_mmap_rss(reference: dict) -> dict:
    """Per-worker memory cost of the shared mmap snapshot, by shard count."""
    import shutil
    import tempfile

    from repro.persist import precompute_snapshot

    # one snapshot directory, attached by every worker of every cluster
    session = Session.from_named("dblp", seed=SEED, scale=reference["scale"])
    snapshot_dir = Path(tempfile.mkdtemp(prefix="bench-mmap-")) / "snapshot"
    precompute_snapshot(session.engine, reference["subjects"], snapshot_dir)
    session.close()
    spec = DatasetSpec(
        name="dblp",
        database="dblp",
        seed=SEED,
        scale=reference["scale"],
        snapshot=str(snapshot_dir),
    )
    points = []
    try:
        for shards in SHARD_SWEEP:
            with Cluster(
                [spec], shards, cache_size=4, startup_timeout=300
            ) as cluster:
                # touch the arenas: one size-l per subject faults the
                # snapshot pages in on whichever worker owns the subject
                for table, row_id in reference["subjects"]:
                    status, _ = cluster.dispatch_safe(
                        "/v1/size-l",
                        {
                            "dataset": "dblp",
                            "table": table,
                            "row_id": row_id,
                            "options": {"l": SIZE_L},
                        },
                    )
                    assert status == 200
                workers = [
                    _snapshot_mappings(entry["pid"], snapshot_dir)
                    for entry in cluster.supervisor.describe()
                    if entry["pid"] is not None
                ]
            workers = [w for w in workers if w is not None]
            point = {
                "shards": shards,
                "workers_sampled": len(workers),
                "pss_total_kb": sum(w["pss_kb"] for w in workers),
                "rss_total_kb": sum(w["rss_kb"] for w in workers),
                "private_max_kb": max((w["private_kb"] for w in workers), default=0),
                # dirty private pages would be actual per-worker copies;
                # clean "private" is just a file page with a single mapper
                "private_dirty_max_kb": max(
                    (w["private_dirty_kb"] for w in workers), default=0
                ),
            }
            points.append(point)
            print(
                f"  {shards} shard(s): snapshot pss {point['pss_total_kb']} kB "
                f"total, worst private-dirty {point['private_dirty_max_kb']} kB"
            )
    finally:
        shutil.rmtree(snapshot_dir.parent, ignore_errors=True)
    by_shards = {point["shards"]: point for point in points}
    return {
        "points": points,
        "smaps_readable": all(
            point["workers_sampled"] == point["shards"] for point in points
        ),
        # the headline: the unique (proportional) snapshot footprint of a
        # 4-worker cluster vs one worker — ~1.0 means one page-cache copy
        "pss_ratio_4shard_vs_1": (
            by_shards[4]["pss_total_kb"] / by_shards[1]["pss_total_kb"]
            if by_shards[1]["pss_total_kb"]
            else None
        ),
    }


def bench_kill_recovery(reference: dict) -> dict:
    """SIGKILL one of two workers mid-stream; nothing may be silently wrong."""
    stream = _request_stream(reference, min(600, reference["n_requests"]))
    spec = DatasetSpec(
        name="dblp", database="dblp", seed=SEED, scale=reference["scale"]
    )
    with Cluster(
        [spec], 2, cache_size=reference["cache_size"], startup_timeout=300
    ) as cluster:
        # impatient router: requests racing the restart surface as pinned
        # 503s instead of waiting it out — that is the failure mode under test
        impatient = ClusterRouter(cluster.supervisor, request_timeout=1.0)
        victim = 0
        result: dict = {}
        reached = threading.Event()

        def assassin() -> None:
            reached.wait(timeout=120)  # fire 20% into the stream, not on a clock
            cluster.supervisor.kill(victim)
            killed_at = time.perf_counter()
            # a subject owned by the victim answers again == shard recovered
            probe = next(
                subject
                for subject in reference["subjects"]
                if cluster.router.ring.owner("dblp", *subject) == victim
            )
            while True:
                status, _ = impatient.dispatch_safe(
                    "/v1/size-l",
                    {
                        "dataset": "dblp",
                        "table": probe[0],
                        "row_id": probe[1],
                        "options": {"l": SIZE_L},
                    },
                )
                if status == 200:
                    result["recovery_seconds"] = time.perf_counter() - killed_at
                    return
                time.sleep(0.05)

        killer = threading.Thread(target=assassin)
        killer.start()
        driven = _drive(
            impatient,
            stream,
            reference["truth"],
            collect_failures=True,
            milestone=(len(stream) // 5, reached),
        )
        killer.join(timeout=120)
        impatient.close()
        restarted = cluster.supervisor.restarts(victim)
    outcome = {
        **driven,
        "recovery_seconds": result.get("recovery_seconds"),
        "worker_restarts": restarted,
    }
    print(
        f"  kill-recovery: {outcome['ok']} ok / "
        f"{outcome['unavailable_503']} pinned 503 / {outcome['wrong']} wrong; "
        f"shard back in {outcome['recovery_seconds']:.2f}s "
        f"({restarted} restart(s))"
    )
    return outcome


def run_mode(quick: bool) -> dict:
    reference = build_reference(quick)
    print(
        f"  working set {reference['fixture']['working_set']} subjects, "
        f"per-worker cache {reference['cache_size']}, l={SIZE_L}"
    )
    sweep = bench_sweep(reference)
    mmap_rss = bench_mmap_rss(reference)
    recovery = bench_kill_recovery(reference)
    speedup = sweep["speedup_4shard_vs_1"]
    print(f"  speedup at 4 shards vs 1: {speedup:.2f}x")
    smaps_ok = mmap_rss["smaps_readable"]
    verified = {
        "sweep_all_correct": all(
            point["all_passes_correct"] for point in sweep["points"]
        ),
        "sharding_partitions_the_cache": (
            sweep["points"][-1]["hit_rate"] > sweep["points"][0]["hit_rate"]
        ),
        "recovery_no_wrong_answers": recovery["wrong"] == 0,
        "recovery_all_accounted": (
            recovery["ok"] + recovery["unavailable_503"] == recovery["requests"]
        ),
        "recovered_within_budget": (
            recovery["recovery_seconds"] is not None
            and recovery["recovery_seconds"] < 30.0
        ),
        # quick mode only sanity-checks that sharding helps at all (the
        # small fixture + shared CI runners make the exact ratio noisy);
        # the real quick-mode gate is --check against the committed
        # baseline.  Full mode owns the headline >= 3x claim.
        "speedup_at_least_3x": speedup >= (1.2 if quick else 3.0),
        # read-only mmap arenas never fault private copies.  Judged on
        # the multi-worker points only: with a single mapper the kernel
        # *accounts* the page-cache pages as that process's private set,
        # so the 1-shard number is ownership bookkeeping, not a copy.
        "mmap_no_per_worker_copies": (not smaps_ok) or all(
            point["private_max_kb"] <= 64
            for point in mmap_rss["points"]
            if point["shards"] > 1
        ),
        # 4 workers mapping one snapshot must cost ~one page-cache copy,
        # not four: the summed PSS may not grow materially with shards
        "mmap_one_page_cache_copy": (not smaps_ok) or (
            mmap_rss["pss_ratio_4shard_vs_1"] is not None
            and mmap_rss["pss_ratio_4shard_vs_1"] <= 1.5
        ),
    }
    return {
        "fixture": reference["fixture"],
        "sweep": sweep,
        "mmap_rss": mmap_rss,
        "kill_recovery": recovery,
        "verified": verified,
    }


def check_regression(baseline_path: Path, mode: str, result: dict) -> int:
    """Fail when the sharding speedup halved vs the committed baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    try:
        committed = baseline["modes"][mode]["sweep"]["speedup_4shard_vs_1"]
    except KeyError:
        print(f"CHECK SKIPPED: no '{mode}' baseline in {baseline_path}")
        return 0
    floor = committed / 2.0
    current = result["sweep"]["speedup_4shard_vs_1"]
    verdict = "OK" if current >= floor else "REGRESSION"
    print(
        f"CHECK [{mode}]: 4-shard speedup {current:.2f}x vs committed "
        f"{committed:.2f}x (floor {floor:.2f}x) -> {verdict}"
    )
    return 0 if current >= floor else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fixture (CI smoke mode)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_cluster.json",
        help="JSON output path (merged per mode; default: repo-root "
        "BENCH_cluster.json)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline; exit 1 when the "
        "sharding speedup drops below half of it",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    print(f"===== bench_cluster [{mode}] =====")
    result = run_mode(args.quick)

    payload: dict = {"schema_version": SCHEMA_VERSION, "modes": {}}
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text(encoding="utf-8"))
            if existing.get("schema_version") == SCHEMA_VERSION:
                payload = existing
        except json.JSONDecodeError:
            pass
    payload["modes"][mode] = result
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    verified = result["verified"]
    if not all(verified.values()):
        print(f"FAIL: verification failed: {verified}")
        return 1
    if args.check is not None:
        return check_regression(args.check, mode, result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
