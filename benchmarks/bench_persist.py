"""Persistence-tier benchmark: cold start, snapshot vs. from-scratch.

Measures what the :mod:`repro.persist` snapshot store buys a serving
process that has the *database* but none of the derived structures — the
ROADMAP's fast-cold-start requirement:

* ``cold_start.full``: build a Session from the dataset (ObjectRank power
  iteration, inverted-index scan, data-graph build) and **rebuild the
  serving state** — generate the complete OS of every subject the
  snapshot would have covered — before serving the first keyword query;
* ``cold_start.snapshot``: attach a precomputed snapshot instead.  The
  importance store, inverted index, CSR data graph, and all complete OS
  trees come off ``mmap`` — the attach *is* the warm-up — and the same
  first query is served from disk hits.

Both variants exclude synthesising the dataset itself (in production the
DBMS already exists) and end in the same servable state: every hot
subject's complete OS available at memory-or-disk speed (the cold
variant's trees end up in RAM, the snapshot's in the page cache; the
per-serve gap is reported as ``first_query_seconds``).  Timings are the
best of ``REPEATS`` runs.  The run also self-verifies:

* the warm first results are selection-identical to the cold ones
  (serving from disk must be indistinguishable from generating);
* a corrupted arena and a mismatched-fingerprint snapshot are rejected
  with the library's typed errors (never silently served).

Usage::

    PYTHONPATH=src python benchmarks/bench_persist.py            # full
    PYTHONPATH=src python benchmarks/bench_persist.py --quick
    PYTHONPATH=src python benchmarks/bench_persist.py --quick \
        --check BENCH_persist.json --out /tmp/bench_persist_ci.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.builder import EngineBuilder  # noqa: E402
from repro.core.options import QueryOptions, Source  # noqa: E402
from repro.datasets.dblp import DBLPConfig, generate_dblp  # noqa: E402
from repro.errors import SnapshotFormatError, SnapshotMismatchError  # noqa: E402
from repro.persist import Snapshot, precompute_snapshot, select_subjects  # noqa: E402

SCHEMA_VERSION = 1
SIZE_L = 10
KEYWORDS = "Faloutsos"
#: Cold starts re-run cleanly (each run builds a fresh Session), so the
#: minimum filters scheduler noise out, same as the other benches.
REPEATS = 3

QUERY_OPTIONS = QueryOptions(
    l=SIZE_L, source=Source.COMPLETE, max_results=3
).normalized()


def build_fixture(quick: bool) -> dict:
    if quick:
        config = DBLPConfig(
            n_authors=120, n_papers=280, mean_citations_per_paper=5.0, seed=7
        )
    else:
        config = DBLPConfig(seed=7)  # bench-scale defaults (300 / 800)
    dataset = generate_dblp(config)
    return {
        "dataset": dataset,
        "fixture": {
            "dataset": "synthetic-dblp",
            "seed": config.seed,
            "n_authors": config.n_authors,
            "n_papers": config.n_papers,
        },
    }


def _first_results(session) -> list:
    return [
        (entry.match.table, entry.match.row_id, frozenset(entry.result.selected_uids))
        for entry in session.iter_keyword_query(KEYWORDS, options=QUERY_OPTIONS)
    ]


def _cold_start(
    dataset, hot_subjects: list[tuple[str, int]], snapshot_path: Path | None
) -> dict:
    """One cold start: build + reach the servable state + first query.

    Without a snapshot, "servable" means the complete OS of every hot
    subject has been generated (the serving state a snapshot persists);
    with one, attaching the mmap arena already is that state, so the
    warm-up loop is skipped.
    """
    build_start = time.perf_counter()
    builder = EngineBuilder.from_dataset(dataset)
    if snapshot_path is not None:
        builder.with_snapshot(snapshot_path)
    session = builder.build_session(cache_size=len(hot_subjects) + 8)
    build_seconds = time.perf_counter() - build_start

    warmup_start = time.perf_counter()
    if snapshot_path is None:
        for table, row_id in hot_subjects:
            session.cache.complete_os_flat(table, row_id)
    warmup_seconds = time.perf_counter() - warmup_start

    query_start = time.perf_counter()
    results = _first_results(session)
    query_seconds = time.perf_counter() - query_start
    stats = session.cache_stats()
    return {
        "build_seconds": build_seconds,
        "warmup_seconds": warmup_seconds,
        "first_query_seconds": query_seconds,
        "total_seconds": build_seconds + warmup_seconds + query_seconds,
        "disk_hits": stats.disk_hits,
        "tree_generations": stats.tree_generations,
        "results": results,
    }


def _best_of(run) -> dict:
    return min((run() for _ in range(REPEATS)), key=lambda row: row["total_seconds"])


def verify_rejection(dataset, snapshot_path: Path, workdir: Path) -> dict:
    """A corrupt or mismatched snapshot must raise, not serve."""
    corrupt_dir = workdir / "corrupt"
    shutil.copytree(snapshot_path, corrupt_dir)
    target = corrupt_dir / "trees_weight.npy"
    blob = bytearray(target.read_bytes())
    blob[-1] ^= 0xFF
    target.write_bytes(bytes(blob))
    try:
        Snapshot.open(corrupt_dir)
        corrupt_rejected = False
    except SnapshotFormatError:
        corrupt_rejected = True

    other = generate_dblp(DBLPConfig(n_authors=60, n_papers=120, seed=99))
    try:
        EngineBuilder.from_dataset(other).with_snapshot(snapshot_path).build()
        mismatch_rejected = False
    except SnapshotMismatchError:
        mismatch_rejected = True
    return {
        "corrupt_rejected": corrupt_rejected,
        "mismatch_rejected": mismatch_rejected,
    }


def run_mode(quick: bool) -> dict:
    fixture = build_fixture(quick)
    dataset = fixture["dataset"]
    workdir = Path(tempfile.mkdtemp(prefix="bench-persist-"))
    try:
        snapshot_path = workdir / "snapshot"
        # Offline precompute: full engine build + every author subject.
        precompute_start = time.perf_counter()
        engine = EngineBuilder.from_dataset(dataset).build()
        hot_subjects = select_subjects(engine, table="author")
        report = precompute_snapshot(
            engine, hot_subjects, snapshot_path, workers=4
        )
        precompute_seconds = time.perf_counter() - precompute_start

        full = _best_of(lambda: _cold_start(dataset, hot_subjects, None))
        snap = _best_of(lambda: _cold_start(dataset, hot_subjects, snapshot_path))

        results_match = full.pop("results") == snap.pop("results")
        speedup = full["total_seconds"] / snap["total_seconds"]
        rejection = verify_rejection(dataset, snapshot_path, workdir)

        print(
            f"  precompute: {report.subjects} subjects, "
            f"{report.tree_nodes} nodes, {report.size_bytes / 1024:.0f} KiB "
            f"({precompute_seconds:.2f}s incl. engine build)"
        )
        print(
            f"  cold start, from scratch: {full['total_seconds'] * 1e3:.1f}ms "
            f"(build {full['build_seconds'] * 1e3:.1f}ms + "
            f"OS warm-up {full['warmup_seconds'] * 1e3:.1f}ms + first query "
            f"{full['first_query_seconds'] * 1e3:.1f}ms, "
            f"{full['tree_generations']} generations)"
        )
        print(
            f"  cold start, snapshot:     {snap['total_seconds'] * 1e3:.1f}ms "
            f"(build {snap['build_seconds'] * 1e3:.1f}ms + first query "
            f"{snap['first_query_seconds'] * 1e3:.1f}ms, "
            f"{snap['disk_hits']} disk hits, "
            f"{snap['tree_generations']} generations)"
        )
        print(
            f"  speedup: {speedup:.1f}x; identical results: "
            f"{'OK' if results_match else 'MISMATCH'}; rejection: "
            f"corrupt {'OK' if rejection['corrupt_rejected'] else 'FAIL'}, "
            f"mismatch {'OK' if rejection['mismatch_rejected'] else 'FAIL'}"
        )
        return {
            "fixture": fixture["fixture"],
            "workload": {"keywords": KEYWORDS, "l": SIZE_L, "max_results": 3},
            "precompute": {
                "subjects": report.subjects,
                "tree_nodes": report.tree_nodes,
                "snapshot_bytes": report.size_bytes,
                "seconds": precompute_seconds,
            },
            "cold_start": {
                "full": full,
                "snapshot": snap,
                "speedup": speedup,
            },
            "verified": {
                "identical_results": results_match,
                **rejection,
            },
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def check_regression(baseline_path: Path, mode: str, result: dict) -> int:
    """Fail when the cold-start speedup fell below half the baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    try:
        committed = baseline["modes"][mode]["cold_start"]["speedup"]
    except KeyError:
        print(f"CHECK SKIPPED: no '{mode}' baseline in {baseline_path}")
        return 0
    floor = committed / 2.0
    current = result["cold_start"]["speedup"]
    verdict = "OK" if current >= floor else "REGRESSION"
    print(
        f"CHECK [{mode}]: snapshot cold-start speedup {current:.1f}x vs "
        f"committed {committed:.1f}x (floor {floor:.1f}x) -> {verdict}"
    )
    return 0 if current >= floor else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fixture (CI smoke mode)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_persist.json",
        help="JSON output path (merged per mode; default: repo-root "
        "BENCH_persist.json)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline; exit 1 on a >2x regression",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    print(f"===== bench_persist [{mode}] =====")
    result = run_mode(args.quick)

    payload: dict = {"schema_version": SCHEMA_VERSION, "modes": {}}
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text(encoding="utf-8"))
            if existing.get("schema_version") == SCHEMA_VERSION:
                payload = existing
        except json.JSONDecodeError:
            pass
    payload["modes"][mode] = result
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    verified = result["verified"]
    if not all(verified.values()):
        print(f"FAIL: verification failed: {verified}")
        return 1
    if args.check is not None:
        return check_regression(args.check, mode, result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
