"""Service-layer benchmark: wire-protocol overhead (BENCH_service.json).

Measures what a request pays for crossing the :mod:`repro.service`
surface instead of calling the Session directly — the cost every future
transport inherits:

* ``dispatch``: a warm zipfian keyword-query stream served twice — once
  as direct ``Session.keyword_query`` calls, once as full wire requests
  (encode request dict → ``ServiceDispatcher.dispatch`` → encoded
  response dict).  The difference is the per-request DTO-codec + dispatch
  overhead; the gate regresses ``overhead_ratio`` (service time / direct
  time), a within-run ratio so shared-runner noise cancels out.
* ``codec``: the pure codec microbench — ``decode(encode(request))``
  round-trips per second, no engine behind it.
* ``http_smoke``: boots the real ``repro serve`` CLI as a subprocess on
  an ephemeral port, pages one keyword query through ``/v1/query`` across
  cursor requests, and checks the union against the direct results.
  Latency is reported, not gated (it includes socket + process noise).

The run self-verifies: the service-path results must be node-for-node
identical to the direct ones, and the paged union must equal the unpaged
result list — a silent divergence fails the run even without ``--check``.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick
    PYTHONPATH=src python benchmarks/bench_service.py --quick \
        --check BENCH_service.json --out /tmp/bench_service_ci.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.options import QueryOptions  # noqa: E402
from repro.datasets.dblp import DBLPConfig, generate_dblp  # noqa: E402
from repro.service import Deployment, ServiceDispatcher  # noqa: E402
from repro.service.protocol import (  # noqa: E402
    QueryRequest,
    decode_query_request,
    encode_request,
)
from repro.session import Session  # noqa: E402

SCHEMA_VERSION = 1
SIZE_L = 10
ZIPF_A = 1.2
REPEATS = 3  # best-of filter against scheduler noise (as the other benches)


def build_workload(quick: bool) -> dict:
    """One dataset + a deterministic zipfian stream of author queries."""
    if quick:
        config = DBLPConfig(
            n_authors=120, n_papers=280, mean_citations_per_paper=5.0, seed=7
        )
        n_subjects, n_queries = 12, 150
    else:
        config = DBLPConfig(seed=7)  # the bench-scale defaults (300 / 800)
        n_subjects, n_queries = 40, 600

    dataset = generate_dblp(config)
    session = Session.from_dataset(dataset, cache_size=256)
    store = session.engine.store
    by_rank = np.argsort(store.array("author"))[::-1][:n_subjects]
    author = dataset.db.table("author")
    name_idx = author.schema.column_index("name")
    names = [str(author.row(int(row))[name_idx]) for row in by_rank]
    rng = np.random.default_rng(7)
    ranks = np.minimum(rng.zipf(ZIPF_A, size=n_queries) - 1, n_subjects - 1)
    stream = [names[int(rank)] for rank in ranks]
    return {
        "session": session,
        "stream": stream,
        "fixture": {
            "dataset": "synthetic-dblp",
            "seed": config.seed,
            "n_authors": config.n_authors,
            "n_papers": config.n_papers,
        },
        "workload": {"n_queries": n_queries, "zipf_a": ZIPF_A, "l": SIZE_L},
    }


def _result_keys(entries) -> list[tuple[str, int, frozenset]]:
    return [
        (e.match.table, e.match.row_id, frozenset(e.result.selected_uids))
        for e in entries
    ]


def _wire_keys(body: dict) -> list[tuple[str, int, frozenset]]:
    return [
        (r["table"], r["row_id"], frozenset(r["selected_uids"]))
        for r in body["results"]
    ]


def bench_dispatch(session: Session, stream: list[str]) -> dict:
    """Direct warm calls vs the full dict-in/dict-out dispatch path."""
    deployment = Deployment().add_session("dblp", session)
    dispatcher = ServiceDispatcher(deployment)
    options = QueryOptions(l=SIZE_L)
    wire_options = options.normalized().as_dict()

    # Warm every subject in the stream once so both measured passes pay
    # cache hits — what is left over IS the serve-path overhead.
    for keywords in set(stream):
        session.keyword_query(keywords, options=options)

    def run_direct() -> tuple[float, list]:
        start = time.perf_counter()
        outcomes = [
            _result_keys(session.keyword_query(kw, options=options))
            for kw in stream
        ]
        return time.perf_counter() - start, outcomes

    def run_service() -> tuple[float, list]:
        start = time.perf_counter()
        outcomes = []
        for keywords in stream:
            body = dispatcher.dispatch(
                "/v1/query",
                {
                    "dataset": "dblp",
                    "keywords": [keywords],
                    "options": wire_options,
                },
            )
            outcomes.append(_wire_keys(body))
        return time.perf_counter() - start, outcomes

    direct_seconds, direct_results = min(
        (run_direct() for _ in range(REPEATS)), key=lambda pair: pair[0]
    )
    service_seconds, service_results = min(
        (run_service() for _ in range(REPEATS)), key=lambda pair: pair[0]
    )
    identical = direct_results == service_results
    n = len(stream)
    overhead_us = (service_seconds - direct_seconds) / n * 1e6
    return {
        "n_requests": n,
        "direct_seconds": direct_seconds,
        "service_seconds": service_seconds,
        "direct_us_per_request": direct_seconds / n * 1e6,
        "service_us_per_request": service_seconds / n * 1e6,
        "overhead_us_per_request": overhead_us,
        "overhead_ratio": service_seconds / direct_seconds,
        "identical_results": identical,
    }


def bench_middleware(session: Session, stream: list[str]) -> dict:
    """Per-warm-request cost of the PR-8 pipeline, disarmed and armed.

    Three passes over the same warm stream: the bare dispatcher, the
    disarmed pipeline (context + metrics only — the default ``repro
    serve`` stack), and a fully armed stack (token auth + rate limiter +
    concurrency quota + access log to ``/dev/null``).  The deltas are the
    microseconds every request pays for each tier; the gate regresses the
    within-run ratios so runner noise cancels out.
    """
    from repro.service import MiddlewareConfig, RequestContext, build_pipeline

    deployment = Deployment().add_session("dblp", session)
    dispatcher = ServiceDispatcher(deployment)
    options = QueryOptions(l=SIZE_L)
    wire_options = options.normalized().as_dict()
    for keywords in set(stream):
        session.keyword_query(keywords, options=options)
    payloads = [
        {"dataset": "dblp", "keywords": [kw], "options": wire_options}
        for kw in stream
    ]

    def timed(run) -> tuple[float, list]:
        return min((run() for _ in range(REPEATS)), key=lambda pair: pair[0])

    def run_raw() -> tuple[float, list]:
        start = time.perf_counter()
        outcomes = [
            _wire_keys(dispatcher.dispatch_safe("/v1/query", p)[1])
            for p in payloads
        ]
        return time.perf_counter() - start, outcomes

    with tempfile.TemporaryDirectory() as tmp:
        token_file = Path(tmp) / "tokens"
        token_file.write_text("bench:bench-token\n", encoding="utf-8")
        disarmed = build_pipeline(dispatcher, None)
        with open(os.devnull, "w", encoding="utf-8") as sink:
            armed = build_pipeline(
                dispatcher,
                MiddlewareConfig(
                    auth_token_file=token_file,
                    rate_limit=1e9,
                    max_concurrent=1_000_000,
                    access_log=sink,
                ),
            )

            def run_disarmed() -> tuple[float, list]:
                start = time.perf_counter()
                outcomes = [
                    _wire_keys(disarmed.dispatch_safe("/v1/query", p)[1])
                    for p in payloads
                ]
                return time.perf_counter() - start, outcomes

            def run_armed() -> tuple[float, list]:
                start = time.perf_counter()
                outcomes = []
                for p in payloads:
                    ctx = RequestContext(
                        credential="bench-token", client="bench"
                    )
                    _status, body = armed.handle(ctx, "/v1/query", p)
                    outcomes.append(_wire_keys(body))
                return time.perf_counter() - start, outcomes

            raw_seconds, raw_results = timed(run_raw)
            disarmed_seconds, disarmed_results = timed(run_disarmed)
            armed_seconds, armed_results = timed(run_armed)

    n = len(payloads)
    return {
        "n_requests": n,
        "raw_us_per_request": raw_seconds / n * 1e6,
        "disarmed_us_per_request": disarmed_seconds / n * 1e6,
        "armed_us_per_request": armed_seconds / n * 1e6,
        "disarmed_overhead_us": (disarmed_seconds - raw_seconds) / n * 1e6,
        "armed_overhead_us": (armed_seconds - raw_seconds) / n * 1e6,
        "disarmed_ratio": disarmed_seconds / raw_seconds,
        "armed_ratio": armed_seconds / raw_seconds,
        "identical_results": raw_results == disarmed_results == armed_results,
    }


def bench_codec(rounds: int) -> dict:
    """decode(encode(request)) round-trips per second (no engine)."""
    request = QueryRequest(
        dataset="dblp",
        keywords=("Faloutsos",),
        options=QueryOptions(l=SIZE_L).normalized(),
        page_size=3,
    )
    start = time.perf_counter()
    for _ in range(rounds):
        decoded = decode_query_request(encode_request(request))
    seconds = time.perf_counter() - start
    return {
        "rounds": rounds,
        "roundtrips_per_second": rounds / seconds,
        "us_per_roundtrip": seconds / rounds * 1e6,
        "identity": decoded == request,
    }


def _post(url: str, body: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


def bench_http_smoke(quick: bool) -> dict:
    """Boot the real ``repro serve`` CLI and page a query through it."""
    scale = "0.2" if quick else "1.0"
    with tempfile.TemporaryDirectory(prefix="bench-service-") as workdir:
        ready = Path(workdir) / "ready.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "--scale", scale,
                "serve", "--port", "0", "--ready-file", str(ready),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 120
            while not ready.is_file():
                if process.poll() is not None:
                    raise RuntimeError(
                        "repro serve exited early: "
                        + process.stderr.read().decode("utf-8", "replace")
                    )
                if time.monotonic() > deadline:
                    raise RuntimeError("repro serve did not come up in time")
                time.sleep(0.05)
            url = ready.read_text(encoding="utf-8").strip()

            paged: list = []
            cursor = None
            latencies: list[float] = []
            requests = 0
            while True:
                body: dict = {
                    "dataset": "dblp",
                    "keywords": ["Faloutsos"],
                    "options": {"l": SIZE_L},
                    "page_size": 1,
                }
                if cursor is not None:
                    body["cursor"] = cursor
                start = time.perf_counter()
                payload = _post(url + "/v1/query", body)
                latencies.append(time.perf_counter() - start)
                requests += 1
                paged.extend(_wire_keys(payload))
                cursor = payload["next_cursor"]
                if cursor is None:
                    break
            whole = _post(
                url + "/v1/query",
                {"dataset": "dblp", "keywords": ["Faloutsos"],
                 "options": {"l": SIZE_L}},
            )
        finally:
            process.terminate()
            process.wait(timeout=30)
    return {
        "requests": requests,
        "paged_equals_unpaged": paged == _wire_keys(whole),
        "mean_latency_ms": sum(latencies) / len(latencies) * 1e3,
        "first_request_ms": latencies[0] * 1e3,
    }


def run_mode(quick: bool) -> dict:
    workload = build_workload(quick)
    session = workload["session"]

    dispatch = bench_dispatch(session, workload["stream"])
    middleware = bench_middleware(session, workload["stream"])
    codec = bench_codec(2_000 if quick else 20_000)
    smoke = bench_http_smoke(quick)

    print(
        f"  dispatch: direct {dispatch['direct_us_per_request']:.0f}us vs "
        f"service {dispatch['service_us_per_request']:.0f}us per request "
        f"(overhead {dispatch['overhead_us_per_request']:.0f}us, "
        f"ratio {dispatch['overhead_ratio']:.2f}x); identical results: "
        f"{'OK' if dispatch['identical_results'] else 'MISMATCH'}"
    )
    print(
        f"  middleware: raw {middleware['raw_us_per_request']:.0f}us, "
        f"disarmed +{middleware['disarmed_overhead_us']:.0f}us "
        f"({middleware['disarmed_ratio']:.2f}x), "
        f"armed +{middleware['armed_overhead_us']:.0f}us "
        f"({middleware['armed_ratio']:.2f}x); identical results: "
        f"{'OK' if middleware['identical_results'] else 'MISMATCH'}"
    )
    print(
        f"  codec: {codec['roundtrips_per_second']:.0f} request "
        f"round-trips/s ({codec['us_per_roundtrip']:.1f}us each)"
    )
    print(
        f"  http smoke: {smoke['requests']} paged requests over repro serve, "
        f"mean {smoke['mean_latency_ms']:.1f}ms; paged == unpaged: "
        f"{'OK' if smoke['paged_equals_unpaged'] else 'MISMATCH'}"
    )
    return {
        "fixture": workload["fixture"],
        "workload": workload["workload"],
        "dispatch": dispatch,
        "middleware": middleware,
        "codec": codec,
        "http_smoke": smoke,
        "verified": {
            "identical_results": dispatch["identical_results"],
            "middleware_identical_results": middleware["identical_results"],
            "codec_identity": codec["identity"],
            "paged_equals_unpaged": smoke["paged_equals_unpaged"],
            "paged_across_requests": smoke["requests"] >= 2,
        },
    }


def check_regression(baseline_path: Path, mode: str, result: dict) -> int:
    """Fail when the serve-path or middleware overhead regressed.

    The dispatch gate keeps its historical shape (ratio may at most
    double).  The middleware gates are absolute-slack ratios: the stack's
    share of a warm request may grow by at most half a raw request over
    the committed baseline — tight enough to catch a real per-request
    regression, loose enough for shared-runner noise.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    try:
        committed = baseline["modes"][mode]["dispatch"]["overhead_ratio"]
    except KeyError:
        print(f"CHECK SKIPPED: no '{mode}' baseline in {baseline_path}")
        return 0
    ceiling = committed * 2.0
    current = result["dispatch"]["overhead_ratio"]
    verdict = "OK" if current <= ceiling else "REGRESSION"
    print(
        f"CHECK [{mode}]: service/direct overhead ratio {current:.2f}x vs "
        f"committed {committed:.2f}x (ceiling {ceiling:.2f}x) -> {verdict}"
    )
    failed = current > ceiling

    committed_mw = baseline["modes"][mode].get("middleware")
    if committed_mw is None:
        print(f"CHECK [{mode}]: no middleware baseline committed yet -> SKIPPED")
    else:
        for tier in ("disarmed", "armed"):
            key = f"{tier}_ratio"
            mw_ceiling = committed_mw[key] + 0.5
            mw_current = result["middleware"][key]
            mw_verdict = "OK" if mw_current <= mw_ceiling else "REGRESSION"
            print(
                f"CHECK [{mode}]: middleware {tier} ratio {mw_current:.2f}x vs "
                f"committed {committed_mw[key]:.2f}x "
                f"(ceiling {mw_ceiling:.2f}x) -> {mw_verdict}"
            )
            failed = failed or mw_current > mw_ceiling
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fixture (CI smoke mode)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_service.json",
        help="JSON output path (merged per mode; default: repo-root "
        "BENCH_service.json)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline; exit 1 on a >2x regression",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    print(f"===== bench_service [{mode}] =====")
    result = run_mode(args.quick)

    payload: dict = {"schema_version": SCHEMA_VERSION, "modes": {}}
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text(encoding="utf-8"))
            if existing.get("schema_version") == SCHEMA_VERSION:
                payload = existing
        except json.JSONDecodeError:
            pass
    payload["modes"][mode] = result
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    verified = result["verified"]
    if not all(verified.values()):
        print(f"FAIL: verification failed: {verified}")
        return 1
    if args.check is not None:
        return check_regression(args.check, mode, result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
