"""Figure 10 — efficiency of the size-l algorithms.

Panels (a)-(d): size-l computation time against l (generation excluded),
for DP / Bottom-Up / Top-Path on complete and prelim-l OSs.
Panel (e): scalability against |OS| at l = 10.
Panel (f): cost breakdown — OS generation (data-graph vs database backend,
with I/O accounting) plus size-l computation, and prelim-l OS sizes.

Expected shape (paper): DP blows up with |OS| and l (the paper aborted it
at 30 minutes; we skip it above a cell budget); Bottom-Up is consistently
the fastest and gets *faster* with larger l on the complete OS (fewer
de-heaps); prelim-l OSs are ~10-20% of the complete size and cut algorithm
cost by several times; data-graph generation beats database generation by
well over an order of magnitude.
"""

from __future__ import annotations

import math

import pytest

from benchlib import L_EFFICIENCY, N_SAMPLE_OS, emit, mean_os_size, os_pairs, sample_subjects
from repro.evaluation.efficiency import (
    breakdown_experiment,
    efficiency_experiment,
    scalability_experiment,
)
from repro.evaluation.reporting import pivot_table

DP_BUDGET = 60_000  # |OS| * l cap for the optimal method


def _efficiency_panel(name: str, engine, rds_table: str, min_size: int, benchmark) -> None:
    subjects = sample_subjects(engine, rds_table, N_SAMPLE_OS, min_size)
    pairs = os_pairs(engine, rds_table, subjects, prelim_l=max(L_EFFICIENCY))

    def experiment():
        return efficiency_experiment(
            pairs, L_EFFICIENCY, dp_budget_nodes=DP_BUDGET
        )

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    tagged = [
        {
            "l": r.l,
            "series": f"{r.method}[{r.source}]",
            "ms": r.seconds * 1000 if not math.isnan(r.seconds) else float("nan"),
        }
        for r in rows
    ]
    emit(
        name,
        f"Aver|OS| = {mean_os_size(pairs):.0f} (times in ms; nan = over DP budget, "
        f"mirroring the paper's 30-min cut-off)\n"
        + pivot_table(tagged, index="l", columns="series", value="ms", float_format="{:.2f}"),
    )

    def mean_ms(method: str, source: str) -> float:
        values = [
            r.seconds for r in rows
            if r.method == method and r.source == source and not math.isnan(r.seconds)
        ]
        return 1000 * sum(values) / len(values) if values else float("nan")

    # Headline orderings: greedy beats DP; prelim beats complete.  Small
    # tolerances absorb timer noise on sub-millisecond runs (tiny OSs,
    # where prelim-50 is nearly the whole OS anyway).
    if not math.isnan(mean_ms("optimal", "complete")):
        assert mean_ms("bottom_up", "complete") <= mean_ms("optimal", "complete") * 1.2
        assert mean_ms("top_path", "complete") <= mean_ms("optimal", "complete") * 1.2
    assert mean_ms("bottom_up", "prelim") <= mean_ms("bottom_up", "complete") * 1.5 + 0.1
    assert mean_ms("top_path", "prelim") <= mean_ms("top_path", "complete") * 1.5 + 0.1


@pytest.mark.benchmark(group="fig10")
def test_fig10a_dblp_author(benchmark, dblp_engine_bench) -> None:
    _efficiency_panel("fig10a_dblp_author", dblp_engine_bench, "author", 150, benchmark)


@pytest.mark.benchmark(group="fig10")
def test_fig10b_dblp_paper(benchmark, dblp_engine_bench) -> None:
    _efficiency_panel("fig10b_dblp_paper", dblp_engine_bench, "paper", 40, benchmark)


@pytest.mark.benchmark(group="fig10")
def test_fig10c_tpch_customer(benchmark, tpch_engine_bench) -> None:
    _efficiency_panel("fig10c_tpch_customer", tpch_engine_bench, "customer", 80, benchmark)


@pytest.mark.benchmark(group="fig10")
def test_fig10d_tpch_supplier(benchmark, tpch_engine_bench) -> None:
    _efficiency_panel("fig10d_tpch_supplier", tpch_engine_bench, "supplier", 400, benchmark)


@pytest.mark.benchmark(group="fig10")
def test_fig10e_scalability(benchmark, dblp_engine_bench) -> None:
    """Figure 10(e): time vs |OS| at l = 10, over graded Author OS sizes."""
    engine = dblp_engine_bench
    scores = engine.store.array("author")
    order = scores.argsort()[::-1]
    buckets = [(40, 120), (120, 300), (300, 700), (700, 2000), (2000, 10_000)]
    trees = []
    for lo, hi in buckets:
        for row_id in order:
            tree = engine.complete_os("author", int(row_id))
            if lo <= tree.size < hi:
                trees.append(tree)
                break
    assert len(trees) >= 3, "not enough OS size diversity at bench scale"

    def experiment():
        return scalability_experiment(trees, l=10, dp_budget_nodes=DP_BUDGET)

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    tagged = [
        {
            "|OS|": int(r.mean_os_size),
            "method": r.method,
            "ms": r.seconds * 1000 if not math.isnan(r.seconds) else float("nan"),
        }
        for r in rows
    ]
    emit(
        "fig10e_scalability",
        pivot_table(tagged, index="|OS|", columns="method", value="ms", float_format="{:.2f}"),
    )
    # Greedy cost grows (roughly) with |OS|: the largest tree should cost
    # more than the smallest for bottom_up.
    bu = [r for r in rows if r.method == "bottom_up"]
    assert bu[-1].seconds >= bu[0].seconds * 0.5  # noisy but must not invert wildly


@pytest.mark.benchmark(group="fig10")
def test_fig10f_breakdown(benchmark, tpch_engine_bench) -> None:
    """Figure 10(f): generation + computation split for Supplier OSs at
    l = 10 and l = 50, including prelim-l sizes and I/O accesses."""
    engine = tpch_engine_bench
    subjects = sample_subjects(engine, "supplier", 3, 400)

    def experiment():
        return breakdown_experiment(engine, "supplier", subjects, [10, 50])

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "fig10f_breakdown",
        "\n".join(
            f"l={row.l:3d}  {row.label:35s} gen={row.generation_seconds*1000:9.2f}ms  "
            f"compute={row.computation_seconds*1000:8.2f}ms  "
            f"|initial OS|={row.initial_os_size:7.1f}  io={row.io_accesses:8.1f}"
            for row in rows
        ),
    )
    by_label = {(r.label, r.l): r for r in rows}
    dg = by_label[("bottom_up on complete[datagraph]", 10)]
    db = by_label[("bottom_up on complete[database]", 10)]
    # The paper's data-graph-vs-database gap (0.2 s vs 12.9 s) is a disk-I/O
    # story; both our backends are in-memory, so wall-clock is the same
    # order (asserted loosely) and the deterministic I/O counter carries the
    # real comparison: hundreds of join statements vs none.
    assert dg.io_accesses == 0
    assert db.io_accesses > 100
    assert dg.generation_seconds < db.generation_seconds * 10
    # Prelim OSs must be much smaller than complete OSs (paper: ~10-20%).
    prelim10 = by_label[("bottom_up on prelim[datagraph]", 10)]
    assert prelim10.initial_os_size < 0.5 * dg.initial_os_size
