"""Figure 8 — effectiveness of size-l OSs against (simulated) evaluators.

Four panels: DBLP Author, DBLP Paper, TPC-H Customer, TPC-H Supplier —
each plotting effectiveness (recall = precision, %) of the *optimal* size-l
OS against l for the four ranking settings (G_A1-d1/d2/d3, G_A2-d1).

Also covered here: the Section 6.1 in-text results (greedy-algorithm impact
on effectiveness; the Google-Desktop static-snippet comparison).

Expected shape (paper): G_A1-d1 and G_A1-d3 similar and dominant at
l >= 10 (75-90% on DBLP); G_A1-d2 relatively strong at l = 5 on Author
OSs; snippets recover ~0 gold tuples.
"""

from __future__ import annotations

import pytest

from benchlib import (
    DBLP_JUDGE_CONFIG,
    L_EFFECTIVENESS,
    N_DBLP_JUDGES,
    N_TPCH_JUDGES,
    TPCH_JUDGE_CONFIG,
    emit,
    sample_subjects,
)
from repro.core.bottom_up import bottom_up_size_l
from repro.core.dp import optimal_size_l
from repro.core.top_path import top_path_size_l
from repro.evaluation.effectiveness import (
    effectiveness_experiment,
    greedy_effectiveness_impact,
)
from repro.evaluation.evaluators import make_panel
from repro.evaluation.reporting import pivot_table
from repro.evaluation.snippet_baseline import snippet_overlap_experiment


def _run_panel(
    name: str,
    engine,
    settings,
    rds_table: str,
    n_judges: int,
    n_subjects: int,
    min_size: int,
    benchmark,
    judge_config=DBLP_JUDGE_CONFIG,
) -> None:
    subjects = sample_subjects(engine, rds_table, n_subjects, min_size)
    trees = [engine.complete_os(rds_table, row_id) for row_id in subjects]
    panel = make_panel(n_judges, settings["GA1-d1"], judge_config)

    def experiment():
        return effectiveness_experiment(
            trees, settings, panel, L_EFFECTIVENESS, algorithm=optimal_size_l
        )

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        name,
        pivot_table(rows, index="l", columns="setting", value="effectiveness"),
    )
    for row in rows:
        assert 0.0 <= row.effectiveness <= 100.0


@pytest.mark.benchmark(group="fig08")
def test_fig8a_dblp_author(benchmark, dblp_engine_bench, dblp_settings) -> None:
    _run_panel(
        "fig08a_dblp_author",
        dblp_engine_bench,
        dblp_settings,
        "author",
        N_DBLP_JUDGES,
        n_subjects=N_DBLP_JUDGES,
        min_size=120,
        benchmark=benchmark,
    )


@pytest.mark.benchmark(group="fig08")
def test_fig8b_dblp_paper(benchmark, dblp_engine_bench, dblp_settings) -> None:
    _run_panel(
        "fig08b_dblp_paper",
        dblp_engine_bench,
        dblp_settings,
        "paper",
        N_DBLP_JUDGES,
        n_subjects=N_DBLP_JUDGES,
        min_size=40,
        benchmark=benchmark,
    )


@pytest.mark.benchmark(group="fig08")
def test_fig8c_tpch_customer(benchmark, tpch_engine_bench, tpch_settings) -> None:
    _run_panel(
        "fig08c_tpch_customer",
        tpch_engine_bench,
        tpch_settings,
        "customer",
        N_TPCH_JUDGES,
        n_subjects=N_TPCH_JUDGES,
        min_size=80,
        benchmark=benchmark,
        judge_config=TPCH_JUDGE_CONFIG,
    )


@pytest.mark.benchmark(group="fig08")
def test_fig8d_tpch_supplier(benchmark, tpch_engine_bench, tpch_settings) -> None:
    _run_panel(
        "fig08d_tpch_supplier",
        tpch_engine_bench,
        tpch_settings,
        "supplier",
        N_TPCH_JUDGES,
        n_subjects=max(3, N_TPCH_JUDGES - 1),
        min_size=400,
        benchmark=benchmark,
        judge_config=TPCH_JUDGE_CONFIG,
    )


@pytest.mark.benchmark(group="fig08-intext")
def test_fig8_greedy_impact(benchmark, dblp_engine_bench, dblp_settings) -> None:
    """Section 6.1 in-text: Top-Path matches the optimal's effectiveness;
    Bottom-Up loses a few percent."""
    subjects = sample_subjects(dblp_engine_bench, "author", 4, min_size=120)
    trees = [dblp_engine_bench.complete_os("author", r) for r in subjects]
    panel = make_panel(N_DBLP_JUDGES, dblp_settings["GA1-d1"], DBLP_JUDGE_CONFIG)
    algorithms = {
        "optimal": optimal_size_l,
        "top_path": top_path_size_l,
        "bottom_up": bottom_up_size_l,
    }

    def experiment():
        return greedy_effectiveness_impact(
            trees, dblp_settings["GA1-d1"], panel, L_EFFECTIVENESS, algorithms
        )

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "fig08_greedy_impact",
        pivot_table(rows, index="l", columns="setting", value="effectiveness"),
    )
    by_key = {(r.setting, r.l): r.effectiveness for r in rows}
    for l in L_EFFECTIVENESS:  # noqa: E741
        # Top-Path should track the optimal closely (the paper: identical).
        assert by_key[("top_path", l)] >= by_key[("optimal", l)] - 15.0
        # Bottom-Up loses more; on our skewier synthetic data the loss at
        # small l exceeds the paper's 2-10% (see EXPERIMENTS.md).
        assert by_key[("bottom_up", l)] >= by_key[("optimal", l)] - 40.0


@pytest.mark.benchmark(group="fig08-intext")
def test_google_snippet_baseline(benchmark, dblp_engine_bench, dblp_settings) -> None:
    """Section 6.1 comparative evaluation: static snippets recover ~0-1 of
    the evaluators' size-5 tuples."""
    subjects = sample_subjects(dblp_engine_bench, "author", 5, min_size=100)
    trees = [dblp_engine_bench.complete_os("author", r) for r in subjects]
    panel = make_panel(N_DBLP_JUDGES, dblp_settings["GA1-d1"], DBLP_JUDGE_CONFIG)

    def experiment():
        return snippet_overlap_experiment(trees, panel, l=5, k=3)

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    mean_overlap = sum(r.overlap_tuples for r in rows) / len(rows)
    emit(
        "fig08_google_snippets",
        f"static snippet vs gold size-5 OS, {len(rows)} (OS, judge) pairs\n"
        f"mean overlapping tuples: {mean_overlap:.2f} (paper: ~0, exceptionally 1)",
    )
    assert mean_overlap <= 1.5
