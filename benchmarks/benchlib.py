"""Shared helpers for the benchmark drivers.

Every figure-level bench prints its series as a plain-text table (the same
rows/series the paper plots) and also writes it under
``benchmarks/results/`` so a full run leaves a reviewable artefact next to
pytest-benchmark's timing table.

Scale: ``REPRO_BENCH_SCALE=paper`` grows the datasets toward the paper's OS
sizes (slower, higher fidelity); the default ``small`` keeps a full
``pytest benchmarks/ --benchmark-only`` run in the ten-minute range.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.core.engine import SizeLEngine
from repro.core.os_tree import ObjectSummary
from repro.util.rng import derive_rng

# Git-ignored scratch area (see .gitignore): every emit() lands here, so
# full benchmark runs leave reviewable artefacts without dirtying the tree.
# Override with REPRO_BENCH_RESULTS to collect artefacts elsewhere (CI).
RESULTS_DIR = Path(
    os.environ.get("REPRO_BENCH_RESULTS", Path(__file__).parent / "results")
)

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

# Judge-panel calibration (see EXPERIMENTS.md "Evaluator simulation"):
# DBLP judges disagree with authority flow more (bibliographic taste);
# TPC-H judges were handed value statistics by the paper's authors and
# agreed closely with value-driven ranking — hence the lower noise.
from repro.evaluation.evaluators import EvaluatorConfig  # noqa: E402

DBLP_JUDGE_CONFIG = EvaluatorConfig(noise_sigma=0.25, depth1_bias=2.5)
TPCH_JUDGE_CONFIG = EvaluatorConfig(noise_sigma=0.08, depth1_bias=2.5)

#: l grids (the paper's x-axes).
L_EFFECTIVENESS = [5, 10, 15, 20, 25, 30]
L_QUALITY = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
L_EFFICIENCY = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50]

if BENCH_SCALE == "paper":
    N_SAMPLE_OS = 10
    N_DBLP_JUDGES = 11
    N_TPCH_JUDGES = 8
else:
    N_SAMPLE_OS = 6
    N_DBLP_JUDGES = 6
    N_TPCH_JUDGES = 4
    L_QUALITY = [5, 10, 20, 30, 40, 50]
    L_EFFICIENCY = [5, 10, 20, 30, 40, 50]


def emit(name: str, text: str) -> None:
    """Print a series table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def sample_subjects(
    engine: SizeLEngine,
    rds_table: str,
    count: int,
    min_size: int,
    seed: int = 7,
    candidate_pool: int = 200,
) -> list[int]:
    """Pick *count* Data Subjects whose complete OS has at least *min_size*
    tuples.

    Candidates are taken in descending global-importance order (prominent
    subjects — the kind the paper's evaluation uses, e.g. Aver|OS| ≈ 1116
    for DBLP authors) and then sampled uniformly, so runs are deterministic
    under the seed.
    """
    table = engine.db.table(rds_table)
    scores = engine.store.array(rds_table)
    order = np.argsort(scores)[::-1][:candidate_pool]
    qualifying: list[int] = []
    for row_id in order:
        size = engine.complete_os(rds_table, int(row_id)).size
        if size >= min_size:
            qualifying.append(int(row_id))
        if len(qualifying) >= count * 3:
            break
    if len(qualifying) < count:
        qualifying = [int(r) for r in order[: max(count, len(qualifying))]]
    rng = derive_rng(seed, "bench-sample", rds_table)
    chosen = rng.choice(len(qualifying), size=min(count, len(qualifying)), replace=False)
    return [qualifying[int(i)] for i in chosen]


def os_pairs(
    engine: SizeLEngine, rds_table: str, row_ids: list[int], prelim_l: int
) -> list[tuple[ObjectSummary, ObjectSummary]]:
    """(complete OS, prelim-l OS) pairs for the quality/efficiency drivers."""
    pairs = []
    for row_id in row_ids:
        complete = engine.complete_os(rds_table, row_id)
        prelim, _stats = engine.prelim_os(rds_table, row_id, prelim_l)
        pairs.append((complete, prelim))
    return pairs


def mean_os_size(pairs: list[tuple[ObjectSummary, ObjectSummary]]) -> float:
    return float(np.mean([complete.size for complete, _prelim in pairs]))
