"""Storage-tier benchmark: real-data loading, SQL serving, buffer pool.

Exercises the :mod:`repro.storage` pipeline end to end, the way the
README quickstart does — XML dump → SQLite file → served session — and
measures what each layer costs:

* ``load``: the streaming DBLP XML parser into SQLite (tuples/second,
  never materialising the XML in RAM);
* ``cold_start``: building a servable Session straight from the SQLite
  file (import + build + first query) vs. from the already-resident
  in-memory ``Database``;
* ``warm_qps``: steady-state keyword/size-l throughput with the
  in-memory ``datagraph`` backend vs. the ``sqlite`` backend executing
  every tuple fetch and FK join as SQL (per-statement IO accounting);
* ``buffer_pool``: hit rates and resident bytes serving the same
  workload through page pools sized at 10%/50%/100% of the mmap'd CSR
  arena.

The run self-verifies (any failure exits 1):

* sqlite-backend results are selection-identical to the in-memory
  backends across the workload;
* buffer-pool serving returns exactly the fully-resident results;
* the pool's resident bytes never exceed its capacity, and the 10%/50%
  pools stay bounded strictly below full-arena residency (the
  bounded-RSS guarantee: disk-resident graphs serve without full
  residency);
* full mode loads a >= 100k-tuple dataset through the real XML parser.

Usage::

    PYTHONPATH=src python benchmarks/bench_storage.py            # full
    PYTHONPATH=src python benchmarks/bench_storage.py --quick
    PYTHONPATH=src python benchmarks/bench_storage.py --quick \
        --check BENCH_storage.json --out /tmp/bench_storage_ci.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.builder import EngineBuilder  # noqa: E402
from repro.core.options import QueryOptions, Source  # noqa: E402
from repro.datasets.dblp import DBLPConfig, generate_dblp  # noqa: E402
from repro.persist.precompute import (  # noqa: E402
    precompute_snapshot,
    select_subjects,
)
from repro.storage import (  # noqa: E402
    load_dblp_xml,
    open_dataset,
    write_dblp_xml,
)

SCHEMA_VERSION = 1
SIZE_L = 10
KEYWORDS = "Faloutsos"
#: Pool capacities exercised, as fractions of the CSR arena.
POOL_FRACTIONS = (0.1, 0.5, 1.0)
REPEATS = 2

QUERY_OPTIONS = QueryOptions(
    l=SIZE_L, source=Source.PRELIM, max_results=5
).normalized()
#: full-mode floor pinned by the acceptance criteria
FULL_TUPLE_FLOOR = 100_000


def build_fixture(quick: bool) -> dict:
    """Synthesise a DBLP instance and render it as a DBLP XML dump.

    The loader is then exercised on the *real parser* over realistic
    record shapes; full mode sizes the instance past the 100k-tuple
    acceptance floor.
    """
    if quick:
        config = DBLPConfig(
            n_authors=120, n_papers=280, mean_citations_per_paper=5.0, seed=7
        )
    else:
        config = DBLPConfig(
            n_authors=9_000,
            n_papers=28_000,
            n_conferences=60,
            mean_citations_per_paper=2.5,
            seed=7,
        )
    dataset = generate_dblp(config)
    return {
        "dataset": dataset,
        "fixture": {
            "dataset": "synthetic-dblp-xml",
            "seed": config.seed,
            "n_authors": config.n_authors,
            "n_papers": config.n_papers,
        },
    }


def _results(session, options=QUERY_OPTIONS) -> list:
    return [
        (entry.match.table, entry.match.row_id, frozenset(entry.result.selected_uids))
        for entry in session.iter_keyword_query(KEYWORDS, options=options)
    ]


def _arena_bytes(session) -> int:
    return sum(adj.nbytes for adj in session.engine.data_graph.adjacencies())


def bench_load(dataset, workdir: Path) -> tuple[Path, dict]:
    xml_path = workdir / "dblp.xml"
    write_dblp_xml(dataset, xml_path)
    sqlite_path = workdir / "dblp.sqlite"
    start = time.perf_counter()
    report = load_dblp_xml(xml_path, sqlite_path)
    seconds = time.perf_counter() - start
    return sqlite_path, {
        "xml_bytes": xml_path.stat().st_size,
        "tuples": report.total_tuples,
        "papers": report.papers,
        "authors": report.authors,
        "cites": report.cites,
        "seconds": seconds,
        "tuples_per_second": report.total_tuples / max(seconds, 1e-9),
    }


def bench_cold_start(sqlite_path: Path) -> dict:
    """Servable from the SQLite file vs. from the resident Database."""

    def from_file() -> dict:
        start = time.perf_counter()
        session = EngineBuilder.from_dataset(
            open_dataset(sqlite_path)
        ).build_session()
        build = time.perf_counter() - start
        results = _results(session)
        return {
            "total_seconds": time.perf_counter() - start,
            "build_seconds": build,
            "results": results,
            "session": session,
        }

    file_runs = [from_file() for _ in range(REPEATS)]
    best_file = min(file_runs, key=lambda r: r["total_seconds"])
    dataset = open_dataset(sqlite_path)  # resident from here on

    def from_memory() -> dict:
        start = time.perf_counter()
        session = EngineBuilder.from_dataset(dataset).build_session()
        build = time.perf_counter() - start
        results = _results(session)
        return {
            "total_seconds": time.perf_counter() - start,
            "build_seconds": build,
            "results": results,
        }

    best_memory = min(
        (from_memory() for _ in range(REPEATS)), key=lambda r: r["total_seconds"]
    )
    identical = best_file["results"] == best_memory["results"]
    session = best_file.pop("session")
    best_file.pop("results")
    best_memory.pop("results")
    return {
        "session": session,
        "report": {
            "sqlite_file": best_file,
            "in_memory": best_memory,
            "import_overhead_seconds": best_file["total_seconds"]
            - best_memory["total_seconds"],
        },
        "identical": identical,
    }


def bench_warm_qps(session, subjects: int) -> tuple[dict, bool]:
    """Steady-state OS generations/second per backend.

    Generation runs at the engine level (the Session's summary cache
    would otherwise absorb every repeat), over *subjects* author rows
    spread across the table, so every backend executes its real tuple
    fetches and FK joins each iteration.
    """
    engine = session.engine
    authors = len(engine.db.table("author"))
    rows = sorted({int(i * authors / subjects) for i in range(subjects)})
    per_backend: dict[str, dict] = {}
    expected = None
    identical = True
    for backend in ("datagraph", "database", "sqlite"):
        renders = [
            engine.complete_os("author", row, backend=backend).render()
            for row in rows  # warm up + verify
        ]
        if expected is None:
            expected = renders
        elif renders != expected:
            identical = False
        qi = engine.query_interface
        qi.reset_counters()
        start = time.perf_counter()
        for row in rows:
            engine.complete_os("author", row, backend=backend)
        seconds = time.perf_counter() - start
        per_backend[backend] = {
            "qps": len(rows) / max(seconds, 1e-9),
            "io_accesses_per_query": qi.io_accesses / len(rows),
        }
    ratio = per_backend["sqlite"]["qps"] / per_backend["datagraph"]["qps"]
    return {"backends": per_backend, "sqlite_vs_datagraph": ratio}, identical


def bench_buffer_pool(
    sqlite_path: Path, resident_session, workdir: Path, quick: bool
) -> tuple[dict, dict]:
    """Hit rates serving through pools at 10%/50%/100% of the arena."""
    dataset = open_dataset(sqlite_path)
    snapshot_dir = workdir / "snapshot"
    engine = EngineBuilder.from_dataset(dataset).build()
    subjects = select_subjects(
        engine, top_keywords=40 if quick else 150
    )
    precompute_snapshot(engine, subjects, snapshot_dir, workers=4)

    arena = _arena_bytes(resident_session)
    expected = _results(resident_session)
    verified = {"pool_identical_results": True, "bounded_rss": True}
    rows = {}
    for fraction in POOL_FRACTIONS:
        capacity = max(4096, int(arena * fraction))
        session = (
            EngineBuilder.from_dataset(dataset)
            .with_snapshot(snapshot_dir)
            .with_buffer_pool(capacity)
            .build_session()
        )
        if _results(session) != expected:
            verified["pool_identical_results"] = False
        pool = session.engine.buffer_pool
        if pool.resident_bytes > capacity:
            verified["bounded_rss"] = False
        if fraction < 1.0 and capacity >= arena:
            # the bounded-RSS claim is vacuous if the "partial" pool
            # already covers the arena (only plausible on tiny fixtures)
            verified["bounded_rss"] = verified["bounded_rss"] and quick
        rows[f"{int(fraction * 100)}%"] = {
            "capacity_bytes": capacity,
            "resident_bytes": pool.resident_bytes,
            "hit_rate": pool.hit_rate(),
            "hits": pool.hits,
            "misses": pool.misses,
            "evictions": pool.evictions,
        }
    return {"arena_bytes": arena, "pools": rows}, verified


def run_mode(quick: bool) -> dict:
    fixture = build_fixture(quick)
    workdir = Path(tempfile.mkdtemp(prefix="bench-storage-"))
    try:
        sqlite_path, load = bench_load(fixture["dataset"], workdir)
        cold = bench_cold_start(sqlite_path)
        session = cold.pop("session")
        warm, backends_identical = bench_warm_qps(
            session, subjects=16 if quick else 24
        )
        pool_report, pool_verified = bench_buffer_pool(
            sqlite_path, session, workdir, quick
        )
        tuple_floor = load["tuples"] >= (1_000 if quick else FULL_TUPLE_FLOOR)

        print(
            f"  load: {load['tuples']} tuples from "
            f"{load['xml_bytes'] / 1024:.0f} KiB XML in {load['seconds']:.2f}s "
            f"({load['tuples_per_second']:.0f} tuples/s)"
        )
        report = cold["report"]
        print(
            f"  cold start: sqlite file "
            f"{report['sqlite_file']['total_seconds'] * 1e3:.1f}ms vs "
            f"in-memory {report['in_memory']['total_seconds'] * 1e3:.1f}ms"
        )
        for backend, row in warm["backends"].items():
            print(
                f"  warm [{backend}]: {row['qps']:.1f} qps, "
                f"{row['io_accesses_per_query']:.0f} IOs/query"
            )
        for label, row in pool_report["pools"].items():
            print(
                f"  pool {label} of {pool_report['arena_bytes']} B arena: "
                f"hit rate {row['hit_rate']:.3f}, "
                f"resident {row['resident_bytes']} / {row['capacity_bytes']} B, "
                f"{row['evictions']} evictions"
            )
        verified = {
            "cold_start_identical_results": cold["identical"],
            "backends_identical_results": backends_identical,
            "tuple_floor": tuple_floor,
            **pool_verified,
        }
        print(f"  verified: {verified}")
        return {
            "fixture": fixture["fixture"],
            "workload": {"keywords": KEYWORDS, "l": SIZE_L, "max_results": 5},
            "load": load,
            "cold_start": cold["report"],
            "warm_qps": warm,
            "buffer_pool": pool_report,
            "verified": verified,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def check_regression(baseline_path: Path, mode: str, result: dict) -> int:
    """Fail on a collapsed sqlite/datagraph QPS ratio or pool hit rate.

    Both pinned metrics are dimensionless, so the check is stable across
    machines: the sqlite backend may not fall below half its committed
    relative throughput, and the full-arena pool's hit rate may not drop
    more than 0.15 absolute.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    try:
        committed = baseline["modes"][mode]
        committed_ratio = committed["warm_qps"]["sqlite_vs_datagraph"]
        committed_hit = committed["buffer_pool"]["pools"]["100%"]["hit_rate"]
    except KeyError:
        print(f"CHECK SKIPPED: no '{mode}' baseline in {baseline_path}")
        return 0
    ratio = result["warm_qps"]["sqlite_vs_datagraph"]
    hit = result["buffer_pool"]["pools"]["100%"]["hit_rate"]
    ratio_ok = ratio >= committed_ratio / 2.0
    hit_ok = hit >= committed_hit - 0.15
    print(
        f"CHECK [{mode}]: sqlite/datagraph qps ratio {ratio:.4f} vs committed "
        f"{committed_ratio:.4f} (floor {committed_ratio / 2.0:.4f}) -> "
        f"{'OK' if ratio_ok else 'REGRESSION'}"
    )
    print(
        f"CHECK [{mode}]: 100% pool hit rate {hit:.3f} vs committed "
        f"{committed_hit:.3f} (floor {committed_hit - 0.15:.3f}) -> "
        f"{'OK' if hit_ok else 'REGRESSION'}"
    )
    return 0 if (ratio_ok and hit_ok) else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fixture (CI smoke mode)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_storage.json",
        help="JSON output path (merged per mode; default: repo-root "
        "BENCH_storage.json)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline; exit 1 on a regression",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    print(f"===== bench_storage [{mode}] =====")
    result = run_mode(args.quick)

    payload: dict = {"schema_version": SCHEMA_VERSION, "modes": {}}
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text(encoding="utf-8"))
            if existing.get("schema_version") == SCHEMA_VERSION:
                payload = existing
        except json.JSONDecodeError:
            pass
    payload["modes"][mode] = result
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    verified = result["verified"]
    if not all(verified.values()):
        print(f"FAIL: verification failed: {verified}")
        return 1
    if args.check is not None:
        return check_regression(args.check, mode, result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
