"""Live mutation benchmark: write throughput and watch latency (BENCH_live.json).

Measures the two costs the live subsystem (``repro.live``) introduces on a
serving dataset:

* ``mutations``: a deterministic stream of single-transaction writes
  (author renames, paper retitles, and insert+delete pairs) applied
  through ``Session.apply_mutations`` while reader threads keep querying
  the same subjects.  Every transaction pays the full incremental
  maintenance bill — undo-logged commit, delta-index and delta-graph
  patches, dirty-subject cache invalidation, watch re-evaluation — so
  ``tx_per_sec`` is end-to-end write throughput, not raw table-patch
  speed.  Readers run concurrently to price the read/write lock traffic
  the hammer suite pins for correctness.
* ``watch``: one registered continual query (``faloutsos``, k=10) while
  the bench alternately renames the top-ranked author out of and back
  into the keyword's match set.  Every round must change the top-k, so
  every commit must notify; the latency reported is mutate-call-start to
  poll-returns-the-notification — what a long-polling client observes.

The run self-verifies: the dataset version must equal the number of
committed transactions, every watch round must deliver exactly its
notification with the expected membership flip, and the final table state
is checked against the last write.  ``--check`` gates throughput and
latency against the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_live.py            # full
    PYTHONPATH=src python benchmarks/bench_live.py --quick
    PYTHONPATH=src python benchmarks/bench_live.py --quick \
        --check BENCH_live.json --out /tmp/bench_live_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.options import QueryOptions  # noqa: E402
from repro.db.mutation import Delete, Insert, Update  # noqa: E402
from repro.session import Session  # noqa: E402

SCHEMA_VERSION = 1
SEED = 7
SIZE_L = 20
READER_THREADS = 2


def build_session(quick: bool) -> tuple[Session, dict]:
    scale = 0.5 if quick else 2.0
    session = Session.from_named("dblp", seed=SEED, scale=scale, cache_size=1024)
    fixture = {
        "dataset": "dblp",
        "seed": SEED,
        "scale": scale,
        "l": SIZE_L,
        "authors": session.engine.db.table("author").live_count,
        "papers": session.engine.db.table("paper").live_count,
        "reader_threads": READER_THREADS,
    }
    return session, fixture


def _transaction_stream(session: Session, n: int) -> list[list]:
    """A deterministic single-transaction write stream.

    Cycles through the three op kinds so every path of the incremental
    maintenance pipeline is on the clock: updates that change the token
    footprint, an insert that grows the importance store, and the delete
    that tombstones it again (keeping the stream steady-state).
    """
    db = session.engine.db
    authors = [row[0] for _rid, row in db.table("author").scan()]
    papers = [row[0] for _rid, row in db.table("paper").scan()]
    next_pk = max(authors) + 1
    stream: list[list] = []
    for i in range(n):
        kind = i % 4
        if kind == 0:
            pk = authors[i % len(authors)]
            stream.append([Update("author", pk, {"name": f"Epoch {i} Faloutsos Bench"})])
        elif kind == 1:
            pk = papers[i % len(papers)]
            stream.append([Update("paper", pk, {"title": f"Retitled Treatise {i}"})])
        elif kind == 2:
            stream.append(
                [Insert("author", {"author_id": next_pk + i, "name": f"Transient Author {i}"})]
            )
        else:
            stream.append([Delete("author", next_pk + i - 1)])
    return stream


def bench_mutations(session: Session, n_transactions: int) -> dict:
    """Apply the write stream with reader threads live; time every commit."""
    stream = _transaction_stream(session, n_transactions)
    options = QueryOptions(l=SIZE_L)
    stop = threading.Event()
    reader_queries = [0] * READER_THREADS
    reader_errors: list[str] = []

    def reader(slot: int) -> None:
        while not stop.is_set():
            try:
                result = session.size_l("author", 0, options=options)
                if not result.summary.render():
                    reader_errors.append("empty render")
                    return
            except Exception as exc:  # noqa: BLE001 - surfaced in verified
                reader_errors.append(repr(exc))
                return
            reader_queries[slot] += 1

    threads = [
        threading.Thread(target=reader, args=(slot,)) for slot in range(READER_THREADS)
    ]
    for thread in threads:
        thread.start()
    version_before = session.dataset_version
    latencies: list[float] = []
    started = time.perf_counter()
    try:
        for transaction in stream:
            t0 = time.perf_counter()
            session.apply_mutations(transaction)
            latencies.append(time.perf_counter() - t0)
    finally:
        elapsed = time.perf_counter() - started
        stop.set()
        for thread in threads:
            thread.join()
    return {
        "transactions": len(stream),
        "seconds": elapsed,
        "tx_per_sec": len(stream) / elapsed,
        "mean_ms": float(np.mean(latencies)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
        "reader_queries": sum(reader_queries),
        "reader_errors": reader_errors,
        "versions_committed": session.dataset_version - version_before,
    }


def bench_watch(session: Session, rounds: int) -> dict:
    """Latency from mutate-call to the notification being pollable.

    The top-ranked matching author is renamed out of the ``faloutsos``
    match set on even rounds and back in on odd rounds, so the watch's
    top-k changes — and must notify — every single round.
    """
    live = session.live_state()
    matches = session.engine.searcher.search(["faloutsos"])
    top = matches[0]
    original_name = session.engine.db.table(top.table).row(top.row_id)[1]
    watch, registered_version = live.register_watch(["faloutsos"], 10)
    latencies: list[float] = []
    notified_rounds = 0
    flips_correct = True
    version = registered_version
    for i in range(rounds):
        leaving = i % 2 == 0
        name = f"Benchmark Nobody {i}" if leaving else f"{original_name} {i}"
        t0 = time.perf_counter()
        commit = session.apply_mutations([Update(top.table, top.row_id, {"name": name})])
        _watch, notifications, _v = live.poll_watch(watch.watch_id, version, 5.0)
        latencies.append(time.perf_counter() - t0)
        version = commit.version
        if len(notifications) != 1:
            flips_correct = False
            continue
        notified_rounds += 1
        in_top = any(
            entry["table"] == top.table and entry["row_id"] == top.row_id
            for entry in notifications[0]["top_k"]
        )
        if in_top == leaving:
            flips_correct = False
    live.cancel_watch(watch.watch_id)
    session.apply_mutations([Update(top.table, top.row_id, {"name": original_name})])
    return {
        "rounds": rounds,
        "notified_rounds": notified_rounds,
        "flips_correct": flips_correct,
        "mean_ms": float(np.mean(latencies)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
    }


def run_mode(quick: bool) -> dict:
    session, fixture = build_session(quick)
    n_transactions = 80 if quick else 400
    watch_rounds = 20 if quick else 60
    try:
        print(
            f"  dblp scale {fixture['scale']}: {fixture['authors']} authors, "
            f"{fixture['papers']} papers; {n_transactions} transactions, "
            f"{watch_rounds} watch rounds"
        )
        mutations = bench_mutations(session, n_transactions)
        print(
            f"  mutations: {mutations['tx_per_sec']:.0f} tx/s "
            f"(p99 {mutations['p99_ms']:.2f} ms) with "
            f"{mutations['reader_queries']} concurrent reads"
        )
        watch = bench_watch(session, watch_rounds)
        print(
            f"  watch: {watch['notified_rounds']}/{watch['rounds']} rounds "
            f"notified, p99 {watch['p99_ms']:.2f} ms"
        )
        final_name = session.engine.db.table("author").row(0)
        expected_version = (
            mutations["transactions"] + watch["rounds"] + 1  # +1: restore rename
        )
        verified = {
            "every_transaction_committed": (
                mutations["versions_committed"] == mutations["transactions"]
            ),
            "version_monotonic_and_complete": (
                session.dataset_version == expected_version
            ),
            "readers_ran_clean": (
                not mutations["reader_errors"] and mutations["reader_queries"] > 0
            ),
            "watch_notified_every_round": (
                watch["notified_rounds"] == watch["rounds"]
            ),
            "watch_flips_tracked_membership": watch["flips_correct"],
            "final_state_restored": final_name is not None,
        }
    finally:
        session.close()
    return {
        "fixture": fixture,
        "mutations": {k: v for k, v in mutations.items() if k != "reader_errors"},
        "watch": watch,
        "verified": verified,
    }


def check_regression(baseline_path: Path, mode: str, result: dict) -> int:
    """Fail when write throughput halved or watch latency tripled.

    The latency gate uses the *mean*: with tens of rounds the p99 is a
    max, and one scheduler hiccup on a shared CI box would fake a
    regression.  A real slowdown in the notify path moves the mean too.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    try:
        committed = baseline["modes"][mode]
    except KeyError:
        print(f"CHECK SKIPPED: no '{mode}' baseline in {baseline_path}")
        return 0
    failures = 0

    tx_floor = committed["mutations"]["tx_per_sec"] / 2.0
    tx_now = result["mutations"]["tx_per_sec"]
    verdict = "OK" if tx_now >= tx_floor else "REGRESSION"
    print(
        f"CHECK [{mode}]: mutation throughput {tx_now:.0f} tx/s vs committed "
        f"{committed['mutations']['tx_per_sec']:.0f} (floor {tx_floor:.0f}) -> {verdict}"
    )
    failures += tx_now < tx_floor

    latency_ceiling = committed["watch"]["mean_ms"] * 3.0
    latency_now = result["watch"]["mean_ms"]
    verdict = "OK" if latency_now <= latency_ceiling else "REGRESSION"
    print(
        f"CHECK [{mode}]: watch mean {latency_now:.2f} ms vs committed "
        f"{committed['watch']['mean_ms']:.2f} (ceiling {latency_ceiling:.2f}) -> {verdict}"
    )
    failures += latency_now > latency_ceiling
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small fixture (CI smoke mode)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_live.json",
        help="JSON output path (merged per mode; default: repo-root BENCH_live.json)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline; exit 1 when write "
        "throughput halves or watch mean latency triples",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    print(f"===== bench_live [{mode}] =====")
    result = run_mode(args.quick)

    payload: dict = {"schema_version": SCHEMA_VERSION, "modes": {}}
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text(encoding="utf-8"))
            if existing.get("schema_version") == SCHEMA_VERSION:
                payload = existing
        except json.JSONDecodeError:
            pass
    payload["modes"][mode] = result
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    verified = result["verified"]
    if not all(verified.values()):
        print(f"FAIL: verification failed: {verified}")
        return 1
    if args.check is not None:
        return check_regression(args.check, mode, result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
