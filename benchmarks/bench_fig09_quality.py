"""Figure 9 — approximation quality of the greedy algorithms.

Panels (a)-(e): quality (% of the DP optimum) against l for Bottom-Up and
Update Top-Path-l, each on the complete OS and on the prelim-l OS, over
sampled OSs per G_DS.  Panel (f): quality across the four ranking settings.

Expected shape (paper): Top-Path >= Bottom-Up (by up to ~10%); prelim-l
costs Bottom-Up ~nothing and Top-Path <= ~4%; Paper OSs near 100% for all
methods (near-monotone); small OSs reach 100% once l approaches |OS|.
"""

from __future__ import annotations

import pytest

from benchlib import L_QUALITY, N_SAMPLE_OS, emit, mean_os_size, os_pairs, sample_subjects
from repro.evaluation.quality import quality_experiment
from repro.evaluation.reporting import pivot_table


def _quality_panel(name: str, engine, rds_table: str, min_size: int, benchmark) -> None:
    subjects = sample_subjects(engine, rds_table, N_SAMPLE_OS, min_size)
    pairs = os_pairs(engine, rds_table, subjects, prelim_l=max(L_QUALITY))

    def experiment():
        return quality_experiment(pairs, L_QUALITY)

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for row in rows:
        assert row.quality <= 100.0 + 1e-6
    tagged = [
        {"l": r.l, "series": f"{r.method}[{r.source}]", "quality": r.quality}
        for r in rows
    ]
    emit(
        name,
        f"Aver|OS| = {mean_os_size(pairs):.0f}\n"
        + pivot_table(tagged, index="l", columns="series", value="quality"),
    )

    # The paper's headline orderings, checked on the averages across l.
    mean_of = lambda m, s: sum(  # noqa: E731
        r.quality for r in rows if r.method == m and r.source == s
    ) / len(L_QUALITY)
    assert mean_of("top_path", "complete") >= mean_of("bottom_up", "complete") - 2.0
    assert mean_of("bottom_up", "prelim") >= mean_of("bottom_up", "complete") - 3.0
    assert mean_of("top_path", "prelim") >= mean_of("top_path", "complete") - 10.0


@pytest.mark.benchmark(group="fig09")
def test_fig9a_dblp_author(benchmark, dblp_engine_bench) -> None:
    _quality_panel("fig09a_dblp_author", dblp_engine_bench, "author", 150, benchmark)


@pytest.mark.benchmark(group="fig09")
def test_fig9b_dblp_paper(benchmark, dblp_engine_bench) -> None:
    _quality_panel("fig09b_dblp_paper", dblp_engine_bench, "paper", 40, benchmark)


@pytest.mark.benchmark(group="fig09")
def test_fig9c_tpch_customer(benchmark, tpch_engine_bench) -> None:
    _quality_panel("fig09c_tpch_customer", tpch_engine_bench, "customer", 80, benchmark)


@pytest.mark.benchmark(group="fig09")
def test_fig9d_tpch_supplier(benchmark, tpch_engine_bench) -> None:
    _quality_panel("fig09d_tpch_supplier", tpch_engine_bench, "supplier", 400, benchmark)


@pytest.mark.benchmark(group="fig09")
def test_fig9e_small_author_os(benchmark, dblp_engine_bench) -> None:
    """Figure 9(e): a small Author OS (the paper's |OS| = 67) — all methods
    hit 100% once l gets close to |OS|."""
    engine = dblp_engine_bench
    # Find an author whose OS is small (60-90 tuples).
    chosen = None
    scores = engine.store.array("author")
    order = scores.argsort()[::-1]
    for row_id in order:
        size = engine.complete_os("author", int(row_id)).size
        if 55 <= size <= 95:
            chosen = int(row_id)
            break
    assert chosen is not None, "no small Author OS found at bench scale"
    pairs = os_pairs(engine, "author", [chosen], prelim_l=max(L_QUALITY))

    def experiment():
        return quality_experiment(pairs, L_QUALITY)

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    tagged = [
        {"l": r.l, "series": f"{r.method}[{r.source}]", "quality": r.quality}
        for r in rows
    ]
    emit(
        "fig09e_small_author_os",
        f"|OS| = {pairs[0][0].size}\n"
        + pivot_table(tagged, index="l", columns="series", value="quality"),
    )
    # By l >= 50 (close to |OS|) every method should be ~optimal.
    tail = [r for r in rows if r.l == max(L_QUALITY)]
    for row in tail:
        assert row.quality >= 95.0


@pytest.mark.benchmark(group="fig09")
def test_fig9f_settings(benchmark, dblp_bench, dblp_settings) -> None:
    """Figure 9(f): average Author-OS quality per ranking setting."""
    from repro.core.engine import SizeLEngine

    def experiment():
        results = []
        for setting_name, store in dblp_settings.items():
            # author-only G_DS: fig 9(f) samples only Author subjects, and
            # this loop is timed — don't build the unused Paper G_DS here
            engine = (
                SizeLEngine.builder()
                .with_database(dblp_bench.db)
                .with_gds("author", dblp_bench.author_gds())
                .with_store(store)
                .build()
            )
            subjects = sample_subjects(engine, "author", max(3, N_SAMPLE_OS // 2), 150)
            pairs = os_pairs(engine, "author", subjects, prelim_l=30)
            for row in quality_experiment(pairs, [10, 20, 30]):
                results.append(
                    {
                        "setting": setting_name,
                        "series": f"{row.method}[{row.source}]",
                        "quality": row.quality,
                        "l": row.l,
                    }
                )
        return results

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    # Average over l per (setting, series).
    merged: dict[tuple[str, str], list[float]] = {}
    for row in rows:
        merged.setdefault((row["setting"], row["series"]), []).append(row["quality"])
    summary = [
        {"setting": setting, "series": series, "quality": sum(v) / len(v)}
        for (setting, series), v in merged.items()
    ]
    emit(
        "fig09f_settings",
        pivot_table(summary, index="setting", columns="series", value="quality"),
    )
    for row in summary:
        assert row["quality"] >= 70.0
