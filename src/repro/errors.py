"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Subsystems raise the most specific subclass
available; error messages always name the offending object (table, column,
relation, node) to keep failures debuggable without a stack dive.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """Raised for invalid schema definitions (duplicate tables, bad columns)."""


class UnknownTableError(SchemaError):
    """Raised when a table name cannot be resolved in the catalog."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(SchemaError):
    """Raised when a column name cannot be resolved in a table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column {column!r} in table {table!r}")
        self.table = table
        self.column = column


class IntegrityError(ReproError):
    """Raised on constraint violations (duplicate PK, dangling FK, type)."""


class TypeMismatchError(IntegrityError):
    """Raised when a value does not match its column's declared type."""


class QueryError(ReproError):
    """Raised for malformed queries against the relational engine."""


class GraphError(ReproError):
    """Raised for invalid schema-graph or G_DS operations."""


class RankingError(ReproError):
    """Raised for invalid authority-transfer graphs or failed iterations."""


class ConvergenceError(RankingError):
    """Raised when power iteration fails to converge within max iterations."""

    def __init__(self, iterations: int, residual: float, tol: float) -> None:
        super().__init__(
            f"power iteration did not converge after {iterations} iterations "
            f"(residual {residual:.3e} > tol {tol:.3e})"
        )
        self.iterations = iterations
        self.residual = residual
        self.tol = tol


class SummaryError(ReproError):
    """Raised for invalid object-summary operations (bad l, missing root)."""


class InvalidSizeError(SummaryError):
    """Raised when a requested summary size l is not a positive integer."""

    def __init__(self, l: object) -> None:  # noqa: E741 - paper notation
        super().__init__(f"summary size l must be a positive integer, got {l!r}")
        self.l = l


class RegistryError(ReproError):
    """Raised for invalid registry operations (duplicate or bad names)."""


class SearchError(ReproError):
    """Raised for malformed keyword queries."""


class DatasetError(ReproError):
    """Raised when a synthetic dataset generator is misconfigured."""


class PersistError(ReproError):
    """Raised for invalid snapshot-store operations (see :mod:`repro.persist`)."""


class SnapshotFormatError(PersistError):
    """Raised when a snapshot directory is corrupt, unreadable, or from an
    unsupported format version (bad manifest, checksum failure, missing
    arena files)."""


class SnapshotMismatchError(PersistError):
    """Raised when a structurally valid snapshot does not belong to the
    attaching engine (dataset/schema fingerprint or importance-store digest
    differs) — serving from it could silently return wrong trees."""


class BackendIOError(ReproError):
    """Raised when a backend IO operation fails transiently (a flaky disk,
    a dropped DBMS connection, an injected fault).  The request was not
    completed but left no partial state behind; transports map this to
    503 — clients may safely retry."""


class StorageError(ReproError):
    """Raised for invalid storage-tier operations (see :mod:`repro.storage`):
    missing or corrupt SQLite files, unsupported format versions, malformed
    DBLP XML records.  The CLI maps this — like every :class:`ReproError` —
    to the pinned usage-error exit code 2."""


class ServiceError(ReproError):
    """Raised for invalid service-layer operations (see :mod:`repro.service`)."""


class DeadlineExceededError(ServiceError):
    """Raised when a request's end-to-end time budget (``deadline_ms``)
    expires before the work completes.  Transports map this to 504.

    The message is deliberately a constant: the same budget blown on a
    single-process server, inside a shard worker, or in the cluster
    router must produce byte-identical error bodies, so nothing
    process-specific (elapsed time, shard index, remaining budget) may
    leak into it.  ``budget_ms`` stays available as an attribute for
    in-process callers."""

    def __init__(self, budget_ms: "int | None" = None) -> None:
        super().__init__(
            "request deadline exceeded before completion; the request was "
            "cancelled and not fully served (safe to retry with a larger "
            "budget)"
        )
        self.budget_ms = budget_ms


class AuthenticationError(ServiceError):
    """Raised when a request presents no credential, or one matching no
    registered token, on a deployment serving with ``--auth-token-file``.
    Transports map this to 401 with a ``WWW-Authenticate: Bearer`` header.

    The message is deliberately a constant: it must not leak whether a
    token was close, expired, or absent, and the 401 body must be
    byte-identical on every topology."""

    def __init__(self) -> None:
        super().__init__(
            "missing or invalid bearer token; authenticate with an "
            "'Authorization: Bearer <token>' header"
        )


class RateLimitedError(ServiceError):
    """Raised when per-client admission control (token-bucket rate or
    concurrency quota) rejects a request.  Transports map this to 429
    with a ``Retry-After`` header.

    The message is deliberately a constant (no client key, no remaining
    budget) so the 429 body is byte-identical on every topology."""

    def __init__(self) -> None:
        super().__init__(
            "rate limit exceeded; the request was not served (safe to "
            "retry after the Retry-After delay)"
        )


class PayloadTooLargeError(ServiceError):
    """Raised when a request body exceeds the transport's size cap
    before it is read.  The HTTP front end maps this to status 413; the
    request body was never parsed."""

    def __init__(self, length: int, limit: int) -> None:
        super().__init__(
            f"request body of {length} bytes exceeds the maximum of "
            f"{limit} bytes"
        )
        self.length = length
        self.limit = limit


class FaultInjectionError(ReproError):
    """The default error an armed fault-injection site raises when its
    :class:`~repro.reliability.FaultPlan` rule fires without a
    site-specific exception factory (see :mod:`repro.reliability.faults`)."""


class RequestValidationError(ServiceError):
    """Raised when a wire-level request fails strict validation (unknown or
    missing fields, bad types, undecodable cursors).  The HTTP front end
    maps this to status 400; the message always names the offending field."""


class ClusterError(ServiceError):
    """Raised for invalid multi-process cluster operations (see
    :mod:`repro.cluster`): bad shard specs, malformed transport frames,
    workers that never come up."""


class WorkerStartupError(ClusterError):
    """Raised when a shard worker process exits or stays silent during its
    startup handshake.  Carries the shard index and (when the process died)
    its captured stderr tail, so a misconfigured dataset spec is debuggable
    from the supervisor side."""

    def __init__(self, shard: int, detail: str) -> None:
        super().__init__(f"shard {shard} worker failed to start: {detail}")
        self.shard = shard


class ShardUnavailableError(ClusterError):
    """Raised when a shard worker cannot serve a request within its timeout
    budget (dead, restarting, or overloaded).  The cluster router maps this
    to the pinned HTTP 503 error body — the request was *not* half-served;
    clients may safely retry."""

    def __init__(self, shard: int, detail: str) -> None:
        super().__init__(
            f"shard {shard} is unavailable: {detail}; the request was not "
            "served (safe to retry)"
        )
        self.shard = shard


class UnknownDatasetError(ServiceError):
    """Raised when a request names a dataset the :class:`~repro.service.Deployment`
    does not host.  The HTTP front end maps this to status 404."""

    def __init__(self, name: str, available: "list[str] | None" = None) -> None:
        hint = f"; hosted datasets: {sorted(available)}" if available else ""
        super().__init__(f"unknown dataset {name!r}{hint}")


class UnknownWatchError(ServiceError):
    """Raised when a ``/v1/watch`` poll or cancel names a watch id the
    dataset's live state does not hold (never registered, cancelled, or a
    different dataset's).  The HTTP front end maps this to status 404."""

    def __init__(self, watch_id: str) -> None:
        super().__init__(f"unknown watch id {watch_id!r}")
        self.watch_id = watch_id
