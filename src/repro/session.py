"""Session — the high-level facade of the public API.

A :class:`Session` owns a :class:`~repro.core.engine.SizeLEngine` and an
integrated :class:`~repro.core.cache.SummaryCache` (caching is a
first-class engine concern here, not an external wrapper) and exposes the
paper's end-to-end paradigm — keyword → t_DS matches → one size-l OS per
match — in three shapes:

* :meth:`keyword_query` — the batch list (Example 5);
* :meth:`iter_keyword_query` — a streaming generator that yields each
  :class:`~repro.core.engine.KeywordResult` as soon as its size-l OS is
  computed (the first result is available while later OSs are still being
  generated — the incremental delivery a production service needs);
* :meth:`size_l_many` — batched subjects under one set of options.

Quickstart::

    from repro import QueryOptions, Session
    from repro.datasets.dblp import small_dblp

    session = Session.from_dataset(small_dblp())
    for entry in session.iter_keyword_query("Faloutsos", options=QueryOptions(l=15)):
        print(entry.result.render())
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.core.cache import SummaryCache
from repro.core.engine import KeywordResult, SizeLEngine
from repro.core.options import QueryOptions, resolve_options
from repro.core.os_tree import ObjectSummary, SizeLResult
from repro.core.prelim import PrelimStats
from repro.ranking.store import ImportanceStore


class Session:
    """Engine + cache + default options, behind one façade.

    ``defaults`` seeds every query's :class:`QueryOptions` (the stock
    defaults follow the paper's end-to-end pipeline: Top-Path over a
    prelim-l OS); per-call options/kwargs override it.
    """

    def __init__(
        self,
        engine: SizeLEngine,
        *,
        cache_size: int = 64,
        defaults: QueryOptions | None = None,
    ) -> None:
        self.engine = engine
        self.cache = SummaryCache(engine, max_subjects=cache_size)
        self.defaults = (
            defaults if defaults is not None else QueryOptions()
        ).normalized()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dataset(
        cls,
        dataset: Any,
        *,
        store: ImportanceStore | None = None,
        theta: float = 0.7,
        cache_size: int = 64,
        defaults: QueryOptions | None = None,
    ) -> "Session":
        """Build from a dataset exposing ``db`` / ``default_gds()`` /
        ``default_store()`` (the synthetic DBLP and TPC-H datasets do)."""
        from repro.core.builder import EngineBuilder

        return EngineBuilder.from_dataset(
            dataset, store=store, theta=theta
        ).build_session(cache_size=cache_size, defaults=defaults)

    @classmethod
    def from_named(
        cls,
        name: str,
        *,
        seed: int = 7,
        scale: float = 1.0,
        cache_size: int = 64,
        defaults: QueryOptions | None = None,
    ) -> "Session":
        """Build over one of the on-the-fly demo databases ("dblp"/"tpch")."""
        from repro.core.builder import EngineBuilder

        return EngineBuilder.named(name, seed=seed, scale=scale).build_session(
            cache_size=cache_size, defaults=defaults
        )

    # ------------------------------------------------------------------ #
    # Options
    # ------------------------------------------------------------------ #
    def _options(
        self,
        l: int | None,  # noqa: E741
        options: QueryOptions | None,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
        max_results: int | None = None,
    ) -> QueryOptions:
        return resolve_options(
            options,
            defaults=self.defaults,
            l=l,
            algorithm=algorithm,
            source=source,
            backend=backend,
            max_results=max_results,
            stacklevel=4,  # user -> Session method -> _options -> resolve
        )

    # ------------------------------------------------------------------ #
    # Size-l computation (cached)
    # ------------------------------------------------------------------ #
    def size_l(
        self,
        rds_table: str,
        row_id: int,
        l: int | None = None,  # noqa: E741
        options: QueryOptions | None = None,
        *,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
    ) -> SizeLResult:
        """The cached generate+summarise pipeline for one Data Subject."""
        opts = self._options(l, options, algorithm, source, backend)
        return self.cache.run(rds_table, row_id, opts)

    def size_l_many(
        self,
        subjects: Iterable[tuple[str, int]],
        l: int | None = None,  # noqa: E741
        options: QueryOptions | None = None,
        *,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
    ) -> list[SizeLResult]:
        """Batched :meth:`size_l` over ``(rds_table, row_id)`` subjects."""
        opts = self._options(l, options, algorithm, source, backend)
        return [
            self.cache.run(rds_table, row_id, opts)
            for rds_table, row_id in subjects
        ]

    # ------------------------------------------------------------------ #
    # Keyword queries
    # ------------------------------------------------------------------ #
    def iter_keyword_query(
        self,
        keywords: list[str] | str,
        l: int | None = None,  # noqa: E741
        options: QueryOptions | None = None,
        *,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
        max_results: int | None = None,
    ) -> Iterator[KeywordResult]:
        """Stream keyword-query results as each size-l OS is computed.

        Options are validated eagerly; computation is lazy and cached."""
        opts = self._options(l, options, algorithm, source, backend, max_results)
        return self._iter_keyword_query(keywords, opts)

    def _iter_keyword_query(
        self, keywords: list[str] | str, options: QueryOptions
    ) -> Iterator[KeywordResult]:
        # the engine's loop, with the cached pipeline substituted in
        return self.engine._iter_keyword_query(
            keywords, options, run=self.cache.run
        )

    def keyword_query(
        self,
        keywords: list[str] | str,
        l: int | None = None,  # noqa: E741
        options: QueryOptions | None = None,
        *,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
        max_results: int | None = None,
    ) -> list[KeywordResult]:
        """The batch form of :meth:`iter_keyword_query`."""
        opts = self._options(l, options, algorithm, source, backend, max_results)
        return list(self._iter_keyword_query(keywords, opts))

    # ------------------------------------------------------------------ #
    # Pass-throughs and management
    # ------------------------------------------------------------------ #
    def complete_os(self, rds_table: str, row_id: int) -> ObjectSummary:
        """The (cached) complete OS of a Data Subject."""
        return self.cache.complete_os(rds_table, row_id)

    def prelim_os(
        self,
        rds_table: str,
        row_id: int,
        l: int,  # noqa: E741
        backend: object = None,
    ) -> tuple[ObjectSummary, PrelimStats]:
        if backend is None:
            return self.engine.prelim_os(rds_table, row_id, l)
        return self.engine.prelim_os(rds_table, row_id, l, backend=backend)

    def invalidate(
        self, rds_table: str | None = None, row_id: int | None = None
    ) -> None:
        self.cache.invalidate(rds_table, row_id)

    def cache_stats(self) -> dict[str, int]:
        return self.cache.stats()

    def describe(self) -> dict[str, Any]:
        """The engine snapshot plus cache statistics."""
        info = self.engine.describe()
        info["cache"] = self.cache.stats()
        info["defaults"] = {
            "l": self.defaults.l,
            "algorithm": self.defaults.algorithm_name,
            "source": self.defaults.source_name,
            "backend": self.defaults.backend_name,
        }
        return info
