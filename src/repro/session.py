"""Session — the high-level facade of the public API.

A :class:`Session` owns a :class:`~repro.core.engine.SizeLEngine` and an
integrated :class:`~repro.core.cache.SummaryCache` (caching is a
first-class engine concern here, not an external wrapper) and exposes the
paper's end-to-end paradigm — keyword → t_DS matches → one size-l OS per
match — in three shapes:

* :meth:`keyword_query` — the batch list (Example 5);
* :meth:`iter_keyword_query` — a streaming generator that yields each
  :class:`~repro.core.engine.KeywordResult` as soon as its size-l OS is
  computed (the first result is available while later OSs are still being
  generated — the incremental delivery a production service needs);
* :meth:`size_l_many` — batched subjects under one set of options.

The Session is also the **serving layer**: pass ``workers=N`` (or a
:class:`~repro.core.options.ParallelConfig` default) and the per-subject
size-l pipelines fan out over a thread pool, all funnelled through the
thread-safe, single-flight :class:`~repro.core.cache.SummaryCache` so
concurrent queries for the same subject share one generation.

Quickstart::

    from repro import QueryOptions, Session
    from repro.datasets.dblp import small_dblp

    session = Session.from_dataset(small_dblp())
    for entry in session.iter_keyword_query("Faloutsos", options=QueryOptions(l=15)):
        print(entry.result.render())
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Iterable, Iterator

from repro.core.cache import CacheStats, SummaryCache
from repro.core.engine import KeywordResult, SizeLEngine
from repro.core.options import ParallelConfig, QueryOptions, resolve_options
from repro.core.os_tree import ObjectSummary, SizeLResult
from repro.core.prelim import PrelimStats
from repro.ranking.store import ImportanceStore
from repro.reliability.deadline import bind_deadline, current_deadline


class Session:
    """Engine + cache + default options, behind one façade.

    ``defaults`` seeds every query's :class:`QueryOptions` (the stock
    defaults follow the paper's end-to-end pipeline: Top-Path over a
    prelim-l OS); per-call options/kwargs override it.  ``parallel`` seeds
    the fan-out policy the same way: per-call ``workers=`` / ``ordered=``
    override ``options.parallel``, which overrides the Session default.
    """

    def __init__(
        self,
        engine: SizeLEngine,
        *,
        cache_size: int = 64,
        defaults: QueryOptions | None = None,
        parallel: ParallelConfig | None = None,
        snapshot: "Any | None" = None,
    ) -> None:
        self.engine = engine
        self.cache = SummaryCache(engine, max_subjects=cache_size)
        if snapshot is not None:
            # A precomputed repro.persist snapshot (or its directory
            # path): becomes the cache's disk tier.  Imported lazily —
            # persist depends on this module for its fan-out.
            from repro.persist.snapshot import Snapshot

            if not isinstance(snapshot, Snapshot):
                snapshot = Snapshot.open(snapshot)
            self.cache.attach_snapshot(snapshot)
        self.defaults = (
            defaults if defaults is not None else QueryOptions()
        ).normalized()
        self.parallel = (
            parallel if parallel is not None else ParallelConfig()
        ).normalized()
        # One executor per Session, created lazily and reused across
        # queries — a serving path must not pay N thread spawns + joins
        # per request.  Grown (never shrunk) when a call asks for more
        # workers than the current pool holds.
        self._pool: ThreadPoolExecutor | None = None
        self._pool_workers = 0
        self._pool_lock = threading.Lock()
        # Live mutation state: created on first write / watch (lazily, so
        # frozen read-only Sessions keep their zero-overhead null guard).
        self._live: "Any | None" = None
        self._live_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dataset(
        cls,
        dataset: Any,
        *,
        store: ImportanceStore | None = None,
        theta: float = 0.7,
        cache_size: int = 64,
        defaults: QueryOptions | None = None,
        parallel: ParallelConfig | None = None,
        snapshot: "Any | None" = None,
    ) -> "Session":
        """Build from a dataset exposing ``db`` / ``default_gds()`` /
        ``default_store()`` (the synthetic DBLP and TPC-H datasets do).

        ``snapshot`` (a :mod:`repro.persist` snapshot or its path) warm-
        starts the whole stack: data graph, inverted index, importance
        store, and precomputed complete OSs come off disk."""
        from repro.core.builder import EngineBuilder

        builder = EngineBuilder.from_dataset(dataset, store=store, theta=theta)
        if snapshot is not None:
            builder.with_snapshot(snapshot)
        return builder.build_session(
            cache_size=cache_size, defaults=defaults, parallel=parallel
        )

    @classmethod
    def from_named(
        cls,
        name: str,
        *,
        seed: int = 7,
        scale: float = 1.0,
        cache_size: int = 64,
        defaults: QueryOptions | None = None,
        parallel: ParallelConfig | None = None,
        snapshot: "Any | None" = None,
    ) -> "Session":
        """Build over one of the on-the-fly demo databases ("dblp"/"tpch")."""
        from repro.core.builder import EngineBuilder

        builder = EngineBuilder.named(name, seed=seed, scale=scale)
        if snapshot is not None:
            builder.with_snapshot(snapshot)
        return builder.build_session(
            cache_size=cache_size, defaults=defaults, parallel=parallel
        )

    # ------------------------------------------------------------------ #
    # Options
    # ------------------------------------------------------------------ #
    def _options(
        self,
        l: int | None,  # noqa: E741
        options: QueryOptions | None,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
        max_results: int | None = None,
    ) -> QueryOptions:
        return resolve_options(
            options,
            defaults=self.defaults,
            l=l,
            algorithm=algorithm,
            source=source,
            backend=backend,
            max_results=max_results,
            stacklevel=4,  # user -> Session method -> _options -> resolve
        )

    # ------------------------------------------------------------------ #
    # Size-l computation (cached)
    # ------------------------------------------------------------------ #
    def size_l(
        self,
        rds_table: str,
        row_id: int,
        l: int | None = None,  # noqa: E741
        options: QueryOptions | None = None,
        *,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
    ) -> SizeLResult:
        """The cached generate+summarise pipeline for one Data Subject."""
        opts = self._options(l, options, algorithm, source, backend)
        return self.cache.run(rds_table, row_id, opts)

    def size_l_many(
        self,
        subjects: Iterable[tuple[str, int]],
        l: int | None = None,  # noqa: E741
        options: QueryOptions | None = None,
        *,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
        workers: int | None = None,
    ) -> list[SizeLResult]:
        """Batched :meth:`size_l` over ``(rds_table, row_id)`` subjects.

        With ``workers > 1`` the subjects fan out over a thread pool
        (duplicates coalesce on the cache's single-flight table); the
        returned list always follows the input order.
        """
        opts = self._options(l, options, algorithm, source, backend)
        subject_list = list(subjects)
        config = self._parallel_config(opts, workers, None)
        if config.workers == 1 or len(subject_list) <= 1:
            return [
                self.cache.run(rds_table, row_id, opts)
                for rds_table, row_id in subject_list
            ]
        calls = [
            (self.cache.run, rds_table, row_id, opts)
            for rds_table, row_id in subject_list
        ]
        results: list[SizeLResult | None] = [None] * len(calls)
        for index, result in self._windowed_results(config.workers, calls):
            results[index] = result
        return results  # type: ignore[return-value]  # every slot is filled

    # ------------------------------------------------------------------ #
    # Keyword queries
    # ------------------------------------------------------------------ #
    def _submit(self, workers: int, fn, *args: object) -> Future:
        """Submit one task to the shared pool, growing it to *workers*.

        Growing swaps in a bigger executor and retires the old one; every
        submission takes ``_pool_lock`` and reads ``self._pool`` under it,
        so no submission can ever target a just-retired pool (futures
        already submitted are unaffected — ``shutdown(wait=False)``
        drains them).

        A fan-out racing a :meth:`close` **drains instead of raising**: if
        the executor refuses the task (its shutdown flag was set between
        our lock release and the submit — possible at interpreter exit,
        where a fresh pool cannot be grown either), the call runs inline
        on this thread and the returned future carries its outcome, so a
        mid-stream ``iter_keyword_query`` consumer sees every result
        rather than a ``RuntimeError``.

        The submitting thread's request deadline (if any) is re-installed
        around the task: pool threads are long-lived and shared across
        requests, so the budget must travel with the work, not the thread.
        """
        fn = bind_deadline(fn, current_deadline())
        with self._pool_lock:
            if self._pool is None or self._pool_workers < workers:
                old = self._pool
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-serve"
                )
                self._pool_workers = workers
                if old is not None:
                    old.shutdown(wait=False)
            try:
                return self._pool.submit(fn, *args)
            except RuntimeError:
                pass  # executor shut down underneath us: degrade to inline
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - future carries the outcome
            future.set_exception(exc)
        return future

    def close(self) -> None:
        """Drain and shut the Session's worker pool down (idempotent).

        Safe while requests are in flight: the pool is detached under the
        lock, then drained *outside* it (``shutdown(wait=True)``), so
        concurrent fan-outs are never blocked on the lock for the length
        of the drain — they either finish on the detached pool's threads
        or grow a fresh pool for their remaining tasks.  A second
        ``close()`` finds no pool and is a no-op.  Only needed for prompt
        thread teardown — pools are also reaped at interpreter exit.
        """
        with self._pool_lock:
            pool, self._pool, self._pool_workers = self._pool, None, 0
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _windowed_results(
        self, workers: int, calls: "list[tuple]"
    ) -> Iterator[tuple[int, SizeLResult]]:
        """Run ``(fn, *args)`` calls with at most *workers* in flight.

        Yields ``(input index, result)`` in **completion** order; the
        window refills on ANY completion, so one slow head-of-line item
        never drains the call's parallelism.  The window is the per-call
        concurrency contract — deliberately independent of how large the
        shared pool has grown for other callers.  Exiting early (or on
        error) cancels whatever has not started.
        """
        index_of: dict[Future, int] = {}
        submitted = 0

        def submit_next() -> Future | None:
            nonlocal submitted
            if submitted >= len(calls):
                return None
            fn, *args = calls[submitted]
            future = self._submit(workers, fn, *args)
            index_of[future] = submitted
            submitted += 1
            return future

        for _ in range(min(workers, len(calls))):
            submit_next()
        try:
            pending = set(index_of)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    refill = submit_next()
                    if refill is not None:
                        pending.add(refill)
                    # pop so a long stream holds O(window) futures/results,
                    # not every result computed so far
                    yield index_of.pop(future), future.result()
        finally:
            for future in index_of:  # only the not-yet-yielded remain
                future.cancel()

    def _parallel_config(
        self,
        options: QueryOptions,
        workers: int | None,
        ordered: bool | None,
    ) -> ParallelConfig:
        """Per-call kwargs > ``options.parallel`` > the Session default."""
        config = options.parallel if options.parallel is not None else self.parallel
        changes: dict[str, Any] = {}
        if workers is not None:
            changes["workers"] = workers
        if ordered is not None:
            changes["ordered"] = ordered
        if changes:
            config = config.replace(**changes)
        return config.normalized()

    def iter_keyword_query(
        self,
        keywords: list[str] | str,
        l: int | None = None,  # noqa: E741
        options: QueryOptions | None = None,
        *,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
        max_results: int | None = None,
        workers: int | None = None,
        ordered: bool | None = None,
    ) -> Iterator[KeywordResult]:
        """Stream keyword-query results as each size-l OS is computed.

        Options are validated eagerly; computation is lazy and cached.
        With an effective worker count above one the per-subject pipelines
        run on a thread pool: ``ordered=True`` (the default) preserves the
        match ranking, ``ordered=False`` yields each result the moment it
        completes.  Serial execution (``workers=1``) computes nothing
        until the stream is consumed."""
        opts = self._options(l, options, algorithm, source, backend, max_results)
        config = self._parallel_config(opts, workers, ordered)
        if config.workers == 1:
            return self._iter_keyword_query(keywords, opts)
        return self._iter_keyword_query_parallel(keywords, opts, config)

    def _iter_keyword_query(
        self, keywords: list[str] | str, options: QueryOptions
    ) -> Iterator[KeywordResult]:
        # the engine's loop, with the cached pipeline substituted in
        return self.engine._iter_keyword_query(
            keywords, options, run=self.cache.run
        )

    def _iter_keyword_query_parallel(
        self,
        keywords: list[str] | str,
        options: QueryOptions,
        config: ParallelConfig,
    ) -> Iterator[KeywordResult]:
        """The fan-out loop: one cache.run task per matching Data Subject.

        Submission is windowed via :meth:`_windowed_results` (at most
        ``config.workers`` matches in flight for this call, refilled on
        any completion).  Duplicate subjects coalesce on the cache's
        single-flight table, costing one generation (though a waiting
        duplicate does hold its window slot while it blocks).  Abandoning
        the stream cancels whatever has not started.
        """
        matches = self.engine.search_matches(keywords, options)
        if len(matches) <= 1:
            yield from (
                KeywordResult(match=m, result=self.cache.run(m.table, m.row_id, options))
                for m in matches
            )
            return
        calls = [
            (self.cache.run, match.table, match.row_id, options) for match in matches
        ]
        completions = self._windowed_results(config.workers, calls)
        try:
            if config.ordered:
                # re-sequence completion order into match-ranking order
                buffered: dict[int, SizeLResult] = {}
                next_index = 0
                for index, result in completions:
                    buffered[index] = result
                    while next_index in buffered:
                        yield KeywordResult(
                            match=matches[next_index],
                            result=buffered.pop(next_index),
                        )
                        next_index += 1
            else:
                for index, result in completions:
                    yield KeywordResult(match=matches[index], result=result)
        finally:
            completions.close()  # abandoning the stream cancels unstarted work

    def keyword_query(
        self,
        keywords: list[str] | str,
        l: int | None = None,  # noqa: E741
        options: QueryOptions | None = None,
        *,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
        max_results: int | None = None,
        workers: int | None = None,
        ordered: bool | None = None,
    ) -> list[KeywordResult]:
        """The batch form of :meth:`iter_keyword_query`."""
        # resolved here (not via iter_keyword_query) so the legacy-kwarg
        # DeprecationWarning's stacklevel still lands on the caller's frame
        opts = self._options(l, options, algorithm, source, backend, max_results)
        config = self._parallel_config(opts, workers, ordered)
        if config.workers == 1:
            return list(self._iter_keyword_query(keywords, opts))
        return list(self._iter_keyword_query_parallel(keywords, opts, config))

    # ------------------------------------------------------------------ #
    # Live mutation state
    # ------------------------------------------------------------------ #
    @property
    def live(self) -> "Any | None":
        """The session's :class:`~repro.live.LiveState`, if activated."""
        return self._live

    def live_state(self) -> "Any":
        """The session's live mutation state, activating it on first use.

        Activation swaps the engine's derived structures for their
        delta-overlaid counterparts and installs the read/write guard;
        until then reads pay nothing for mutability they never use."""
        if self._live is None:
            with self._live_lock:
                if self._live is None:
                    from repro.live.state import LiveState

                    self._live = LiveState(self)
        return self._live

    def guard(self) -> "Any":
        """The read/write guard consistent reads must run under.

        The live state's :class:`~repro.live.ReadWriteLock` once writes
        are possible; before that, the engine's counting
        :class:`~repro.live.FrozenReadGuard`, whose readers the first
        mutation drains before committing."""
        if self._live is not None:
            return self._live.lock
        return self.engine.live_guard

    @property
    def dataset_version(self) -> int:
        """Monotonic count of committed transactions (0 = as built)."""
        return self.engine.db.data_version

    def apply_mutations(self, operations: "Iterable[Any]") -> "Any":
        """Commit a transaction and incrementally maintain every derived
        structure; returns the :class:`~repro.live.LiveCommit`."""
        return self.live_state().apply(list(operations))

    # ------------------------------------------------------------------ #
    # Pass-throughs and management
    # ------------------------------------------------------------------ #
    def complete_os(self, rds_table: str, row_id: int) -> ObjectSummary:
        """The (cached) complete OS of a Data Subject."""
        return self.cache.complete_os(rds_table, row_id)

    def prelim_os(
        self,
        rds_table: str,
        row_id: int,
        l: int,  # noqa: E741
        backend: object = None,
    ) -> tuple[ObjectSummary, PrelimStats]:
        if backend is None:
            return self.engine.prelim_os(rds_table, row_id, l)
        return self.engine.prelim_os(rds_table, row_id, l, backend=backend)

    def invalidate(
        self, rds_table: str | None = None, row_id: int | None = None
    ) -> None:
        self.cache.invalidate(rds_table, row_id)

    def cache_stats(self) -> CacheStats:
        """A typed, atomic reading of the cache counters."""
        return self.cache.stats()

    def describe(self) -> dict[str, Any]:
        """The engine snapshot plus cache statistics (JSON-shaped)."""
        info = self.engine.describe()
        info["cache"] = self.cache.stats().as_dict()
        info["dataset_version"] = self.dataset_version
        info["watch_active"] = (
            self._live.watches.active_count if self._live is not None else 0
        )
        info["defaults"] = {
            "l": self.defaults.l,
            "algorithm": self.defaults.algorithm_name,
            "source": self.defaults.source_name,
            "backend": self.defaults.backend_name,
        }
        info["parallel"] = {
            "workers": self.parallel.workers,
            "ordered": self.parallel.ordered,
        }
        snapshot = self.cache.snapshot
        info["snapshot"] = (
            None
            if snapshot is None
            else {"path": str(snapshot.path), "subjects": len(snapshot)}
        )
        return info
