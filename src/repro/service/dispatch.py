"""The transport-agnostic request dispatcher.

One :class:`ServiceDispatcher` sits between a :class:`~repro.service.Deployment`
and any transport.  It has two layers:

* a **typed** layer (:meth:`query`, :meth:`size_l`, :meth:`batch`, ...) —
  typed request in, typed response out; this is what in-process callers
  and tests use;
* a **dict** layer (:meth:`dispatch` / :meth:`dispatch_safe`) — endpoint
  name + JSON-shaped dict in, JSON-shaped dict out, with the library's
  typed errors mapped onto the pinned status codes.  The HTTP front end
  and the codec-overhead benchmark both speak this layer, so measured
  dispatch overhead is exactly what a served request pays minus the
  socket.

Pinned status mapping (also carried inside the error body):

======  =================================================================
status  errors
======  =================================================================
400     :class:`~repro.errors.RequestValidationError` and every other
        :class:`~repro.errors.ReproError` a request provokes (bad
        options, unknown tables, ...)
401     :class:`~repro.errors.AuthenticationError` — rejected bearer
        credential (auth middleware; the dispatcher never raises it)
404     :class:`~repro.errors.UnknownDatasetError`,
        :class:`~repro.errors.UnknownWatchError`, unknown endpoints
413     :class:`~repro.errors.PayloadTooLargeError` — request body over
        the transport cap; the body was never read
429     :class:`~repro.errors.RateLimitedError` — per-client admission
        control rejected the request (rate-limit middleware)
409     :class:`~repro.errors.PersistError` (mismatch/corruption) on
        ``/v1/admin/reload`` only — the deployment keeps serving its
        previous state
500     anything else, including a :class:`PersistError` outside reload
        (e.g. a corrupt snapshot path hit by a lazy first build) — a
        server-side problem, not a client error
503     :class:`~repro.errors.BackendIOError` — a transient backend IO
        failure; no partial state was left behind, retrying is safe
        (the cluster router's :class:`~repro.errors.ShardUnavailableError`
        maps here too)
504     :class:`~repro.errors.DeadlineExceededError` — the request's
        ``deadline_ms`` budget expired mid-flight and the work was
        cancelled; the body is pinned and identical on every topology
======  =================================================================

Deadlines: a request carrying ``deadline_ms`` (or the HTTP
``X-Repro-Deadline-Ms`` header) runs inside a
:func:`~repro.reliability.deadline.deadline_scope` — generation loops,
selection kernels, and backend IO all checkpoint against it.
"""

from __future__ import annotations

from typing import Any

from repro.core.options import QueryOptions
from repro.errors import (
    AuthenticationError,
    BackendIOError,
    DeadlineExceededError,
    PayloadTooLargeError,
    PersistError,
    RateLimitedError,
    ReproError,
    RequestValidationError,
    UnknownDatasetError,
    UnknownWatchError,
)
from repro.reliability.deadline import deadline_scope
from repro.service.middleware.context import current_context
from repro.service.deployment import Deployment
from repro.service.protocol import (
    PROTOCOL_VERSION,
    BatchRequest,
    BatchResponse,
    Cursor,
    MutateRequest,
    QueryRequest,
    QueryResponse,
    SizeLRequest,
    SizeLResponse,
    WatchCancelRequest,
    WatchPollRequest,
    WatchRequest,
    decode_batch_request,
    decode_mutate_request,
    decode_query_request,
    decode_size_l_request,
    decode_watch_cancel_request,
    decode_watch_poll_request,
    decode_watch_request,
    encode_error,
    encode_response,
    request_deadline,
    result_entry,
)

#: The service's endpoint table (paths as the HTTP front end mounts them).
ENDPOINTS = (
    "/v1/query",
    "/v1/size-l",
    "/v1/batch",
    "/v1/mutate",
    "/v1/watch",
    "/v1/watch/poll",
    "/v1/watch/cancel",
    "/v1/datasets",
    "/v1/stats",
    "/v1/admin/invalidate",
    "/v1/admin/reload",
)


def status_for(exc: BaseException, endpoint: str | None = None) -> int:
    """The pinned HTTP status of a dispatch failure on *endpoint*."""
    if isinstance(exc, DeadlineExceededError):
        return 504
    if isinstance(exc, BackendIOError):
        # transient server-side IO: the request left no partial state —
        # 503 tells clients to retry, unlike the 500 bug bucket
        return 503
    if isinstance(exc, AuthenticationError):
        return 401
    if isinstance(exc, RateLimitedError):
        return 429
    if isinstance(exc, PayloadTooLargeError):
        return 413
    if isinstance(exc, (UnknownDatasetError, UnknownWatchError)):
        return 404
    if isinstance(exc, PersistError):
        # 409 is the reload contract ("replacement rejected, still
        # serving"); a persist failure anywhere else is the server's
        # problem (broken snapshot config), not the client's
        return 409 if endpoint == "/v1/admin/reload" else 500
    if isinstance(exc, (RequestValidationError, ReproError)):
        return 400
    return 500


class ServiceDispatcher:
    """Typed + dict request handling over one :class:`Deployment`."""

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment

    # ------------------------------------------------------------------ #
    # Typed layer
    # ------------------------------------------------------------------ #
    def _cache_counters(self, session: Any) -> dict[str, int]:
        return session.cache.stats().as_dict()

    def _computations_before(self, session: Any) -> "int | None":
        """Pre-work computation count, only when a request context wants it.

        The access-log ``cache_hit`` flag means "the cache computed
        nothing new for this request" — observable as an unchanged
        ``result_computations`` counter.  Outside a middleware pipeline
        (no installed context) the snapshot is skipped entirely, so the
        typed layer's behavior and cost are unchanged for embedders.
        """
        if current_context() is None:
            return None
        return session.cache.stats().result_computations

    def _note_cache_hit(self, session: Any, before: "int | None") -> None:
        if before is None:
            return
        ctx = current_context()
        if ctx is not None:
            after = session.cache.stats().result_computations
            ctx.note("cache_hit", after == before)

    def query(self, request: QueryRequest) -> QueryResponse:
        """One page of a keyword query (the whole query without a cursor).

        The ranked match list is recomputed (keyword search is the cheap
        half of the pipeline); the expensive size-l OSs are computed only
        for this page.  A cursor resumes *after* its ``(rank, table,
        row_id)`` — and is first verified against the current ranking, so
        a dataset change between pages surfaces as a 400 instead of
        silently skipped or repeated results.
        """
        session = self.deployment.session(request.dataset)
        before = self._computations_before(session)
        keywords = list(request.keywords)
        options = request.options
        # the session guard pins one dataset version for the whole answer:
        # search, generation, AND rendering (render() reads db rows too) —
        # a concurrent commit waits rather than tearing the response
        with session.guard().read():
            matches = session.engine.search_matches(keywords, options)
            start = 0
            if request.cursor is not None:
                cursor = request.cursor
                stable = cursor.rank < len(matches) and (
                    matches[cursor.rank].table == cursor.table
                    and matches[cursor.rank].row_id == cursor.row_id
                )
                if not stable:
                    raise RequestValidationError(
                        f"stale cursor: rank {cursor.rank} is no longer "
                        f"{cursor.table}#{cursor.row_id} in the current ranking; "
                        "restart the query without a cursor"
                    )
                start = cursor.rank + 1
            page = matches[start:]
            if request.page_size is not None:
                page = page[: request.page_size]
            results = session.size_l_many(
                [(match.table, match.row_id) for match in page], options=options
            )
            entries = tuple(
                result_entry(
                    start + i, match.table, match.row_id, match.importance, result
                )
                for i, (match, result) in enumerate(zip(page, results))
            )
            version = session.dataset_version
        next_cursor = None
        if page and start + len(page) < len(matches):
            last = page[-1]
            next_cursor = Cursor(
                rank=start + len(page) - 1, table=last.table, row_id=last.row_id
            )
        self._note_cache_hit(session, before)
        return QueryResponse(
            dataset=request.dataset,
            keywords=tuple(keywords),
            results=entries,
            total_matches=len(matches),
            next_cursor=next_cursor,
            cache=self._cache_counters(session),
            dataset_version=version,
        )

    def size_l(self, request: SizeLRequest) -> SizeLResponse:
        session = self.deployment.session(request.dataset)
        before = self._computations_before(session)
        with session.guard().read():
            result = session.size_l(
                request.table, request.row_id, options=request.options
            )
            importance = session.engine.store.importance(
                request.table, request.row_id
            )
            entry = result_entry(0, request.table, request.row_id, importance, result)
            version = session.dataset_version
        self._note_cache_hit(session, before)
        return SizeLResponse(
            dataset=request.dataset,
            result=entry,
            cache=self._cache_counters(session),
            dataset_version=version,
        )

    def batch(self, request: BatchRequest) -> BatchResponse:
        session = self.deployment.session(request.dataset)
        before = self._computations_before(session)
        with session.guard().read():
            results = session.size_l_many(
                list(request.subjects), options=request.options
            )
            store = session.engine.store
            entries = tuple(
                result_entry(i, table, row_id, store.importance(table, row_id), result)
                for i, ((table, row_id), result) in enumerate(
                    zip(request.subjects, results)
                )
            )
            version = session.dataset_version
        self._note_cache_hit(session, before)
        return BatchResponse(
            dataset=request.dataset,
            results=entries,
            cache=self._cache_counters(session),
            dataset_version=version,
        )

    # ------------------------------------------------------------------ #
    # Mutations and continual queries
    # ------------------------------------------------------------------ #
    def mutate(self, request: MutateRequest) -> dict[str, Any]:
        """Apply one transaction; the response names every dirty subject."""
        session = self.deployment.session(request.dataset)
        commit = session.apply_mutations(request.operations)
        return {
            "protocol_version": PROTOCOL_VERSION,
            "dataset": request.dataset,
            "dataset_version": commit.version,
            "applied": commit.commit.applied,
            "dirty_subjects": commit.dirty_by_table(),
            "watch_notifications": commit.notified,
        }

    def watch(self, request: WatchRequest) -> dict[str, Any]:
        """Register a continual query; the body carries its baseline top-k."""
        session = self.deployment.session(request.dataset)
        live = session.live_state()
        watch, version = live.register_watch(
            list(request.keywords), request.k, watch_id=request.watch_id
        )
        return {
            "protocol_version": PROTOCOL_VERSION,
            "dataset": request.dataset,
            "watch_id": watch.watch_id,
            "dataset_version": version,
            "top_k": list(watch.last_top),
        }

    def watch_poll(self, request: WatchPollRequest) -> dict[str, Any]:
        session = self.deployment.session(request.dataset)
        live = session.live_state()
        watch, notifications, version = live.poll_watch(
            request.watch_id, request.after_version, request.timeout_ms / 1000.0
        )
        return {
            "protocol_version": PROTOCOL_VERSION,
            "dataset": request.dataset,
            "watch_id": watch.watch_id,
            "dataset_version": version,
            "notifications": notifications,
        }

    def watch_cancel(self, request: WatchCancelRequest) -> dict[str, Any]:
        session = self.deployment.session(request.dataset)
        live = session.live
        cancelled = live.cancel_watch(request.watch_id) if live else False
        return {
            "protocol_version": PROTOCOL_VERSION,
            "dataset": request.dataset,
            "watch_id": request.watch_id,
            "cancelled": cancelled,
        }

    def datasets(self) -> dict[str, Any]:
        return {"datasets": self.deployment.describe()}

    def stats(self, dataset: str | None = None) -> dict[str, Any]:
        """Serving statistics: one dataset (built on demand) or all.

        The aggregate form is **non-building** — a monitoring probe on a
        freshly booted multi-dataset server must not synthesize every
        hosted dataset; unbuilt entries report their registry metadata
        (``built: false``) instead.  Naming a dataset explicitly is the
        opt-in to building it.
        """
        if dataset is not None:
            return self.deployment.stats(dataset)
        return {
            name: (
                self.deployment.stats(name)
                if self.deployment.describe(name)["built"]
                else self.deployment.describe(name)
            )
            for name in self.deployment.names()
        }

    def cache_stats_by_dataset(self) -> dict[str, Any]:
        """Typed per-dataset cache counters for the metrics endpoint.

        Non-building, like the aggregate :meth:`stats` form: a metrics
        scrape must never synthesize a dataset, so only built sessions
        report (an unbuilt dataset has no cache to count anyway).
        """
        return {
            name: self.deployment.session(name).cache.stats()
            for name in self.deployment.names()
            if self.deployment.describe(name)["built"]
        }

    def live_stats_by_dataset(self) -> dict[str, dict[str, int]]:
        """Per-dataset live-mutation gauges for the metrics endpoint.

        Non-building, like :meth:`cache_stats_by_dataset`.  A dataset that
        never activated live state reports version 0 / zero watches — the
        gauges exist from boot, they don't appear on first write.
        """
        stats: dict[str, dict[str, int]] = {}
        for name in self.deployment.names():
            if not self.deployment.describe(name)["built"]:
                continue
            session = self.deployment.session(name)
            live = session.live
            stats[name] = {
                "dataset_version": session.dataset_version,
                "watch_active": live.watches.active_count if live else 0,
            }
        return stats

    def invalidate(
        self,
        dataset: str,
        rds_table: str | None = None,
        row_id: int | None = None,
    ) -> dict[str, Any]:
        try:
            self.deployment.invalidate(dataset, rds_table, row_id)
        except ValueError as exc:  # row_id without table — a client error
            raise RequestValidationError(str(exc)) from exc
        return {
            "dataset": dataset,
            "invalidated": {"table": rds_table, "row_id": row_id},
        }

    def reload(self, dataset: str) -> dict[str, Any]:
        return self.deployment.reload(dataset)

    # ------------------------------------------------------------------ #
    # Dict layer
    # ------------------------------------------------------------------ #
    def _session_defaults(self, payload: object) -> QueryOptions | None:
        """The target dataset's default options seed the request decode.

        A wire request that omits ``options.l`` must mean "this dataset's
        default l", not the library's stock default — the same resolution
        order every in-process Session call gets.
        """
        if isinstance(payload, dict):
            dataset = payload.get("dataset")
            if isinstance(dataset, str) and dataset in self.deployment:
                return self.deployment.session(dataset).defaults
        return None

    def dispatch(self, endpoint: str, payload: object = None) -> dict[str, Any]:
        """Handle one request by endpoint path; raises on failure.

        (:meth:`dispatch_safe` is the catching variant transports use.)
        A ``deadline_ms`` field arms the request's end-to-end budget for
        the whole dispatch — decode, search, generation, selection.
        """
        deadline = request_deadline(payload)
        if deadline is None:
            return self._dispatch(endpoint, payload)
        with deadline_scope(deadline):
            return self._dispatch(endpoint, payload)

    def _dispatch(self, endpoint: str, payload: object = None) -> dict[str, Any]:
        if endpoint == "/v1/query":
            request = decode_query_request(
                payload, defaults=self._session_defaults(payload)
            )
            return encode_response(self.query(request))
        if endpoint == "/v1/size-l":
            request = decode_size_l_request(
                payload, defaults=self._session_defaults(payload)
            )
            return encode_response(self.size_l(request))
        if endpoint == "/v1/batch":
            request = decode_batch_request(
                payload, defaults=self._session_defaults(payload)
            )
            return encode_response(self.batch(request))
        if endpoint == "/v1/mutate":
            return self.mutate(decode_mutate_request(payload))
        if endpoint == "/v1/watch":
            return self.watch(decode_watch_request(payload))
        if endpoint == "/v1/watch/poll":
            return self.watch_poll(decode_watch_poll_request(payload))
        if endpoint == "/v1/watch/cancel":
            return self.watch_cancel(decode_watch_cancel_request(payload))
        if endpoint == "/v1/datasets":
            return self.datasets()
        if endpoint == "/v1/stats":
            dataset = None
            if payload is not None and isinstance(payload, dict):
                dataset = payload.get("dataset")
            return self.stats(dataset)
        if endpoint == "/v1/admin/invalidate":
            if not isinstance(payload, dict) or "dataset" not in payload:
                raise RequestValidationError(
                    "invalidate requires a JSON object with a 'dataset' field"
                )
            unknown = set(payload) - {"dataset", "table", "row_id"}
            if unknown:
                raise RequestValidationError(
                    f"unknown field(s) {sorted(unknown)} in invalidate request"
                )
            return self.invalidate(
                payload["dataset"], payload.get("table"), payload.get("row_id")
            )
        if endpoint == "/v1/admin/reload":
            if not isinstance(payload, dict) or "dataset" not in payload:
                raise RequestValidationError(
                    "reload requires a JSON object with a 'dataset' field"
                )
            return self.reload(payload["dataset"])
        raise UnknownEndpointError(endpoint)

    def dispatch_safe(
        self, endpoint: str, payload: object = None
    ) -> tuple[int, dict[str, Any]]:
        """:meth:`dispatch` with the error contract applied: always returns
        ``(status, body)`` — the pinned error body on failure — and never
        raises, so one bad request (or one bad reload) can never take the
        serving loop down."""
        try:
            return 200, self.dispatch(endpoint, payload)
        except UnknownEndpointError as exc:
            return 404, encode_error(exc, 404)
        except Exception as exc:  # noqa: BLE001 - the contract: errors become bodies
            status = status_for(exc, endpoint)
            return status, encode_error(exc, status)


class UnknownEndpointError(ReproError):
    """Raised when a request names a path outside :data:`ENDPOINTS`."""

    def __init__(self, endpoint: str) -> None:
        super().__init__(
            f"unknown endpoint {endpoint!r}; available: {list(ENDPOINTS)}"
        )
        self.endpoint = endpoint
