"""The composable middleware pipeline both topologies serve through.

A :class:`MiddlewarePipeline` wraps anything dispatcher-shaped
(``dispatch_safe(endpoint, payload) -> (status, body)`` — the
single-process :class:`~repro.service.dispatch.ServiceDispatcher` or the
cluster's :class:`~repro.cluster.router.ClusterRouter`) and threads every
request through an ordered middleware stack under one
:class:`~repro.service.middleware.context.RequestContext`:

.. code-block:: text

    edge (HTTP handler / CLI / test)
      └─ access log          (outermost: logs the FINAL status, 401/429 included)
           └─ metrics        (always on: counters + latency histograms)
                └─ auth      (armed by --auth-token-file; pinned 401)
                     └─ rate limit  (armed by --rate-limit/--max-concurrent; pinned 429)
                          └─ dispatcher.dispatch_safe(...)   (bodies unchanged)

The **disarmed** configuration (no auth, no limits, no log) is just
metrics + context — it never touches a body, which is what keeps every
response byte-identical to the pre-middleware service and lets the
benchmark gate its overhead in microseconds.

The pipeline is itself dispatcher-shaped (:meth:`dispatch_safe` mints a
context), so it can be stacked wherever a dispatcher is expected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Protocol, TextIO

from repro.service.middleware.accesslog import AccessLog, AccessLogMiddleware
from repro.service.middleware.auth import AuthMiddleware, TokenAuthenticator
from repro.service.middleware.context import (
    RequestContext,
    context_scope,
)
from repro.service.middleware.metrics import MetricsRegistry
from repro.service.middleware.ratelimit import RateLimiter, RateLimitMiddleware


class Middleware(Protocol):  # pragma: no cover - typing only
    def handle(
        self,
        ctx: RequestContext,
        endpoint: str,
        payload: object,
        forward: Callable[[], tuple[int, dict]],
    ) -> tuple[int, dict]: ...


@dataclass(frozen=True)
class MiddlewareConfig:
    """The serve-time recipe for a pipeline (all gates off by default).

    The default config arms nothing: requests flow through context +
    metrics only and every body stays byte-identical to a bare
    dispatcher.  ``access_log`` accepts a path, ``"-"`` for stderr, or an
    open text stream.
    """

    auth_token_file: "str | Path | None" = None
    #: per-client admission rate, requests/second (None = unlimited)
    rate_limit: "float | None" = None
    #: bucket capacity; defaults to 2x the (ceiled) rate
    rate_burst: "int | None" = None
    #: per-client in-flight request cap (None = unlimited)
    max_concurrent: "int | None" = None
    access_log: "str | Path | TextIO | None" = None

    @property
    def armed(self) -> bool:
        """Whether any admission gate (auth / limits) is configured."""
        return (
            self.auth_token_file is not None
            or self.rate_limit is not None
            or self.max_concurrent is not None
        )


class MiddlewarePipeline:
    """An ordered middleware stack over one dispatcher."""

    def __init__(
        self,
        dispatcher: Any,
        middlewares: "tuple[Middleware, ...] | list[Middleware]" = (),
        *,
        metrics: "MetricsRegistry | None" = None,
        access_log: "AccessLog | None" = None,
    ) -> None:
        self.dispatcher = dispatcher
        self.middlewares = tuple(middlewares)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: kept so :meth:`close` can release an owned log file
        self._access_log = access_log

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def handle(
        self, ctx: RequestContext, endpoint: str, payload: object = None
    ) -> tuple[int, dict[str, Any]]:
        """Run one request through the stack; never raises.

        The context is installed thread-locally for the duration, so the
        dispatcher (and the cluster router's forwarding) can read it
        without threading it through every signature.
        """
        ctx.endpoint = endpoint
        if isinstance(payload, dict):
            dataset = payload.get("dataset")
            if isinstance(dataset, str):
                ctx.dataset = dataset
            deadline = payload.get("deadline_ms")
            if isinstance(deadline, int) and not isinstance(deadline, bool):
                ctx.deadline_ms = deadline

        def terminal() -> tuple[int, dict[str, Any]]:
            start = time.monotonic()
            status, body = self.dispatcher.dispatch_safe(endpoint, payload)
            ctx.note("dispatch_ms", (time.monotonic() - start) * 1000.0)
            return status, body

        handler: Callable[[], tuple[int, dict[str, Any]]] = terminal
        for middleware in reversed(self.middlewares):
            handler = self._bind(middleware, ctx, endpoint, payload, handler)
        with context_scope(ctx):
            status, body = handler()
        # observed here, above the whole stack, so rejected requests
        # (401/429) land in the counters and histograms too
        self.metrics.observe(endpoint, status, time.monotonic() - ctx.start)
        return status, body

    @staticmethod
    def _bind(
        middleware: Middleware,
        ctx: RequestContext,
        endpoint: str,
        payload: object,
        forward: Callable[[], tuple[int, dict[str, Any]]],
    ) -> Callable[[], tuple[int, dict[str, Any]]]:
        def step() -> tuple[int, dict[str, Any]]:
            return middleware.handle(ctx, endpoint, payload, forward)

        return step

    def dispatch_safe(
        self, endpoint: str, payload: object = None
    ) -> tuple[int, dict[str, Any]]:
        """Dispatcher-shaped entry: mints an anonymous edge context."""
        return self.handle(RequestContext(), endpoint, payload)

    # ------------------------------------------------------------------ #
    # Observability surface
    # ------------------------------------------------------------------ #
    def metrics_text(self) -> str:
        """The ``GET /v1/metrics`` Prometheus text body.

        Cache counters come from the wrapped dispatcher's
        ``cache_stats_by_dataset()`` hook when it has one (the
        single-process dispatcher reads built sessions; the router merges
        across shards).  A failing hook degrades to request metrics only —
        a scrape must never 500 because one shard is restarting.
        """
        cache_stats = None
        hook = getattr(self.dispatcher, "cache_stats_by_dataset", None)
        if callable(hook):
            try:
                cache_stats = hook()
            except Exception:  # noqa: BLE001 - scrapes must not fail
                cache_stats = None
        live_stats = None
        live_hook = getattr(self.dispatcher, "live_stats_by_dataset", None)
        if callable(live_hook):
            try:
                live_stats = live_hook()
            except Exception:  # noqa: BLE001 - scrapes must not fail
                live_stats = None
        return self.metrics.render(cache_stats=cache_stats, live_stats=live_stats)

    def healthz(self) -> "dict[str, Any] | None":
        """Delegate liveness to the dispatcher's hook, if it has one."""
        hook = getattr(self.dispatcher, "healthz", None)
        if callable(hook):
            return hook()
        return None

    def close(self) -> None:
        if self._access_log is not None:
            self._access_log.close()


def build_pipeline(
    dispatcher: Any,
    config: "MiddlewareConfig | None" = None,
    *,
    metrics: "MetricsRegistry | None" = None,
) -> MiddlewarePipeline:
    """Assemble the pinned-order stack for *config* over *dispatcher*."""
    config = config if config is not None else MiddlewareConfig()
    registry = metrics if metrics is not None else MetricsRegistry()
    stack: list[Middleware] = []
    access_log: AccessLog | None = None
    if config.access_log is not None:
        access_log = AccessLog(config.access_log)
        stack.append(AccessLogMiddleware(access_log))
    if config.auth_token_file is not None:
        stack.append(
            AuthMiddleware(
                TokenAuthenticator.from_file(config.auth_token_file),
                metrics=registry,
            )
        )
    if config.rate_limit is not None or config.max_concurrent is not None:
        limiter = RateLimiter(
            rate=config.rate_limit,
            burst=config.rate_burst,
            max_concurrent=config.max_concurrent,
        )
        stack.append(RateLimitMiddleware(limiter, metrics=registry))
    return MiddlewarePipeline(
        dispatcher, stack, metrics=registry, access_log=access_log
    )
