"""Composable request middleware shared by both serving topologies.

The package is organized around one spine and four riders:

* :mod:`~repro.service.middleware.context` — the per-request
  :class:`RequestContext` (id, principal, deadline, timings) created at
  the edge and carried across router→worker hops;
* :mod:`~repro.service.middleware.pipeline` — the ordered stack and the
  :func:`build_pipeline` recipe that assembles it from a
  :class:`MiddlewareConfig`;
* :mod:`~repro.service.middleware.auth` — constant-time bearer tokens;
* :mod:`~repro.service.middleware.ratelimit` — token buckets and
  concurrency quotas;
* :mod:`~repro.service.middleware.accesslog` — one JSON line per request;
* :mod:`~repro.service.middleware.metrics` — Prometheus counters and
  latency histograms behind ``GET /v1/metrics``.
"""

from repro.service.middleware.accesslog import AccessLog, AccessLogMiddleware
from repro.service.middleware.auth import (
    AUTH_FAILURES_METRIC,
    AuthMiddleware,
    TokenAuthenticator,
)
from repro.service.middleware.context import (
    MAX_REQUEST_ID_LENGTH,
    REQUEST_ID_HEADER,
    RequestContext,
    context_scope,
    current_context,
    new_request_id,
    validate_request_id,
)
from repro.service.middleware.metrics import DURATION_BUCKETS, MetricsRegistry
from repro.service.middleware.pipeline import (
    MiddlewareConfig,
    MiddlewarePipeline,
    build_pipeline,
)
from repro.service.middleware.ratelimit import (
    MAX_TRACKED_CLIENTS,
    THROTTLED_METRIC,
    RateLimiter,
    RateLimitMiddleware,
    client_key,
)

__all__ = [
    "AccessLog",
    "AccessLogMiddleware",
    "AUTH_FAILURES_METRIC",
    "AuthMiddleware",
    "TokenAuthenticator",
    "MAX_REQUEST_ID_LENGTH",
    "REQUEST_ID_HEADER",
    "RequestContext",
    "context_scope",
    "current_context",
    "new_request_id",
    "validate_request_id",
    "DURATION_BUCKETS",
    "MetricsRegistry",
    "MiddlewareConfig",
    "MiddlewarePipeline",
    "build_pipeline",
    "MAX_TRACKED_CLIENTS",
    "THROTTLED_METRIC",
    "RateLimiter",
    "RateLimitMiddleware",
    "client_key",
]
