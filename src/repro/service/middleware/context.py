"""The request context: one identity for a request across every tier.

A :class:`RequestContext` is created **once at the edge** (the HTTP
handler, the CLI, a bare ``dispatch_safe`` call) and carried through the
whole serving stack: the middleware pipeline installs it in a
thread-local slot (:func:`context_scope`), the dispatcher annotates it
(cache-hit flags), and the cluster router serializes its identity onto
every forwarded worker frame — so one request keeps **one id** across
router→worker hops and every access-log line it produces, on any
process, carries that id.

Request ids are client-suppliable (``X-Repro-Request-Id``): a valid
client id is honored verbatim (idempotency keys, trace correlation), an
absent one is generated, and an invalid one is the pinned 400 — ids
land in logs and response headers, so the charset and length are capped.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import RequestValidationError

#: Request/response header carrying the request id.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: Client-supplied ids above this length are rejected (they are echoed
#: into headers and logged verbatim; unbounded ids are a log-injection
#: and memory vector).
MAX_REQUEST_ID_LENGTH = 128

_ID_ALPHABET = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def new_request_id() -> str:
    """A fresh server-generated request id (32 hex chars)."""
    return uuid.uuid4().hex


def validate_request_id(raw: object) -> str:
    """A client-supplied request id, validated or rejected with the 400.

    Accepted ids are 1–:data:`MAX_REQUEST_ID_LENGTH` chars drawn from
    ``[A-Za-z0-9._-]`` — safe to echo into headers and JSON logs.
    """
    if not isinstance(raw, str) or not raw:
        raise RequestValidationError(
            f"invalid {REQUEST_ID_HEADER}: expected a non-empty string"
        )
    if len(raw) > MAX_REQUEST_ID_LENGTH:
        raise RequestValidationError(
            f"invalid {REQUEST_ID_HEADER}: {len(raw)} chars exceeds the "
            f"{MAX_REQUEST_ID_LENGTH}-char cap"
        )
    if not set(raw) <= _ID_ALPHABET:
        raise RequestValidationError(
            f"invalid {REQUEST_ID_HEADER}: ids may contain only letters, "
            "digits, '.', '_', and '-'"
        )
    return raw


@dataclass
class RequestContext:
    """Everything the middleware stack knows about one in-flight request.

    ``start`` is monotonic — every duration derived from a context is
    immune to wall-clock steps.  ``annotations`` is the side channel the
    dispatcher writes observability facts into (``cache_hit``) without
    touching response bodies; ``response_headers`` is how middlewares ask
    the transport to add headers (``Retry-After``, ``WWW-Authenticate``)
    without the body-shaping layers knowing about HTTP.
    """

    request_id: str = field(default_factory=new_request_id)
    endpoint: str = ""
    dataset: str | None = None
    #: the authenticated principal (set by the auth middleware) — ``None``
    #: on an unauthenticated stack
    principal: str | None = None
    #: the transport-level peer (HTTP remote address), rate-limit fallback key
    client: str | None = None
    #: the raw bearer credential presented at the edge (pre-authentication)
    credential: str | None = None
    deadline_ms: int | None = None
    start: float = field(default_factory=time.monotonic)
    annotations: dict[str, Any] = field(default_factory=dict)
    response_headers: dict[str, str] = field(default_factory=dict)

    def elapsed_ms(self) -> float:
        return (time.monotonic() - self.start) * 1000.0

    def note(self, key: str, value: Any) -> None:
        """Record an observability fact (access logs read these)."""
        self.annotations[key] = value

    def wire_identity(self) -> dict[str, Any]:
        """The hop-forwardable half of the context (router → worker frames)."""
        identity: dict[str, Any] = {"request_id": self.request_id}
        if self.principal is not None:
            identity["principal"] = self.principal
        return identity

    @classmethod
    def from_wire(cls, raw: object, *, endpoint: str = "") -> "RequestContext":
        """Rebuild a hop's context from a forwarded frame field.

        Deliberately tolerant: the fabric is trusted (it is this
        library's own router), but a malformed field must degrade to a
        fresh id, never take the worker down.
        """
        request_id: str | None = None
        principal: str | None = None
        if isinstance(raw, dict):
            candidate = raw.get("request_id")
            if isinstance(candidate, str) and candidate:
                try:
                    request_id = validate_request_id(candidate)
                except RequestValidationError:
                    request_id = None
            name = raw.get("principal")
            if isinstance(name, str) and name:
                principal = name
        return cls(
            request_id=request_id if request_id is not None else new_request_id(),
            endpoint=endpoint,
            principal=principal,
        )


_local = threading.local()


def current_context() -> RequestContext | None:
    """The context installed on this thread (``None`` outside a pipeline)."""
    return getattr(_local, "context", None)


@contextmanager
def context_scope(ctx: RequestContext) -> Iterator[RequestContext]:
    """Install *ctx* as this thread's current context for the block."""
    previous = getattr(_local, "context", None)
    _local.context = ctx
    try:
        yield ctx
    finally:
        _local.context = previous
