"""Structured JSON access logs: one line per request, on any topology.

:class:`AccessLog` is the writer — it owns a text stream (a path opened
append-mode, ``sys.stderr`` for ``--access-log -``, or any file-like
object) and serializes one compact JSON object per request under a lock,
flushing per line so ``tail -f`` and crash post-mortems see every
completed request.  Writing each record as a **single** ``write()`` of
one newline-terminated line keeps concurrent writers (worker processes
appending to a shared file) from tearing lines.

Record fields::

    ts           ISO-8601 UTC completion time
    id           the request id (one id across router→worker hops)
    principal    authenticated principal (null on unauthenticated stacks)
    client       transport peer (HTTP remote address), when known
    endpoint     "/v1/query", ...
    dataset      the request's dataset field, when present
    status       the pinned HTTP status the transport sent
    duration_ms  monotonic admission→response time
    cache_hit    true when the dispatcher served the request without
                 computing anything new (null on endpoints with no cache)

plus any constant ``extra`` fields the writer was created with (shard
workers stamp ``shard`` so hop lines are attributable in a shared file).

:class:`AccessLogMiddleware` is the pipeline adapter: it logs after the
rest of the stack answered, so the line carries the final status —
including 401s and 429s produced by inner middlewares.
"""

from __future__ import annotations

import json
import sys
import threading
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Mapping, TextIO

from repro.service.middleware.context import RequestContext


class AccessLog:
    """A thread-safe one-JSON-line-per-request writer."""

    def __init__(
        self,
        stream: "TextIO | str | Path",
        *,
        extra: "Mapping[str, Any] | None" = None,
    ) -> None:
        self._owns_stream = False
        if stream == "-":
            self._stream: TextIO = sys.stderr
        elif isinstance(stream, (str, Path)):
            self._stream = open(stream, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = stream
        self._extra = dict(extra or {})
        self._lock = threading.Lock()

    def write(self, ctx: RequestContext, endpoint: str, status: int) -> None:
        """Emit the record for one finished request."""
        record: dict[str, Any] = {
            "ts": datetime.now(timezone.utc).isoformat(timespec="milliseconds"),
            "id": ctx.request_id,
            "principal": ctx.principal,
            "client": ctx.client,
            "endpoint": endpoint,
            "dataset": ctx.dataset,
            "status": int(status),
            "duration_ms": round(ctx.elapsed_ms(), 3),
            "cache_hit": ctx.annotations.get("cache_hit"),
        }
        record.update(self._extra)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            try:
                self._stream.write(line)
                self._stream.flush()
            except ValueError:  # closed stream: logging must never 500 a request
                pass

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


class AccessLogMiddleware:
    """Logs every request after the rest of the pipeline answered."""

    def __init__(self, log: AccessLog) -> None:
        self.log = log

    def handle(
        self,
        ctx: RequestContext,
        endpoint: str,
        payload: object,
        forward: Callable[[], tuple[int, dict]],
    ) -> tuple[int, dict]:
        status, body = forward()
        self.log.write(ctx, endpoint, status)
        return status, body
