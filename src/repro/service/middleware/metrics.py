"""Prometheus-style serving metrics (``GET /v1/metrics``).

A :class:`MetricsRegistry` is a lock-protected set of per-endpoint/status
request counters, per-endpoint latency histograms (fixed buckets), and
named event counters (auth failures, throttles).  :meth:`render` emits
the text exposition format Prometheus scrapes, folding in the typed
per-dataset :class:`~repro.core.cache.CacheStats` the serving tier
already maintains — merged across shards on the cluster topology via
:meth:`CacheStats.merge`, so one scrape sees the whole cache.

The registry is always on: recording a request is two dict increments
under one lock, cheap enough that the disarmed middleware stack stays
within the benchmarked overhead gate (``benchmarks/bench_service.py``).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cache import CacheStats

#: Histogram bucket upper bounds, seconds.  Spanning 1ms..10s covers a
#: warm cache hit (~100us rides the first bucket) through a cold
#: multi-generation scatter.
DURATION_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class MetricsRegistry:
    """Thread-safe counters + histograms with a Prometheus text renderer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (endpoint, status) -> count
        self._requests: dict[tuple[str, int], int] = {}
        #: endpoint -> (per-bucket cumulative-style raw counts, sum, count)
        self._buckets: dict[str, list[int]] = {}
        self._sums: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        #: free-form named event counters (auth failures, throttles, ...)
        self._events: dict[str, int] = {}

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one finished request."""
        with self._lock:
            key = (endpoint, int(status))
            self._requests[key] = self._requests.get(key, 0) + 1
            buckets = self._buckets.get(endpoint)
            if buckets is None:
                buckets = self._buckets[endpoint] = [0] * (len(DURATION_BUCKETS) + 1)
                self._sums[endpoint] = 0.0
                self._counts[endpoint] = 0
            for i, bound in enumerate(DURATION_BUCKETS):
                if seconds <= bound:
                    buckets[i] += 1
                    break
            else:
                buckets[-1] += 1
            self._sums[endpoint] += seconds
            self._counts[endpoint] += 1

    def inc(self, event: str, amount: int = 1) -> None:
        """Bump a named event counter (rendered as its own metric)."""
        with self._lock:
            self._events[event] = self._events.get(event, 0) + amount

    def snapshot(self) -> dict[str, object]:
        """The raw counters (tests and JSON consumers)."""
        with self._lock:
            return {
                "requests": dict(self._requests),
                "events": dict(self._events),
                "counts": dict(self._counts),
            }

    def render(
        self,
        cache_stats: "Mapping[str, CacheStats] | None" = None,
        live_stats: "Mapping[str, Mapping[str, int]] | None" = None,
    ) -> str:
        """The Prometheus text exposition of everything this registry saw.

        *cache_stats* maps dataset name → merged typed
        :class:`CacheStats`; each counter becomes a
        ``repro_cache_<counter>{dataset=...}`` sample.  *live_stats* maps
        dataset name → live-mutation gauges, rendered as
        ``repro_dataset_version{dataset=...}`` (committed-transaction
        count; max over shards) and ``repro_watch_active{dataset=...}``
        (registered continual queries).
        """
        with self._lock:
            requests = dict(self._requests)
            buckets = {k: list(v) for k, v in self._buckets.items()}
            sums = dict(self._sums)
            counts = dict(self._counts)
            events = dict(self._events)
        lines: list[str] = []
        lines.append(
            "# HELP repro_requests_total Requests handled, by endpoint and status."
        )
        lines.append("# TYPE repro_requests_total counter")
        for (endpoint, status), count in sorted(requests.items()):
            lines.append(
                f'repro_requests_total{{endpoint="{_escape_label(endpoint)}",'
                f'status="{status}"}} {count}'
            )
        lines.append(
            "# HELP repro_request_duration_seconds Request latency, by endpoint."
        )
        lines.append("# TYPE repro_request_duration_seconds histogram")
        for endpoint in sorted(buckets):
            label = _escape_label(endpoint)
            cumulative = 0
            for bound, raw in zip(DURATION_BUCKETS, buckets[endpoint]):
                cumulative += raw
                lines.append(
                    f'repro_request_duration_seconds_bucket{{endpoint="{label}",'
                    f'le="{bound}"}} {cumulative}'
                )
            cumulative += buckets[endpoint][-1]
            lines.append(
                f'repro_request_duration_seconds_bucket{{endpoint="{label}",'
                f'le="+Inf"}} {cumulative}'
            )
            lines.append(
                f'repro_request_duration_seconds_sum{{endpoint="{label}"}} '
                f"{sums[endpoint]:.6f}"
            )
            lines.append(
                f'repro_request_duration_seconds_count{{endpoint="{label}"}} '
                f"{counts[endpoint]}"
            )
        for event in sorted(events):
            lines.append(f"# TYPE {event} counter")
            lines.append(f"{event} {events[event]}")
        if cache_stats:
            first = next(iter(cache_stats.values()))
            counter_names = list(first.as_dict())
            lines.append(
                "# HELP repro_cache Summary-cache counters, by dataset "
                "(merged across shards)."
            )
            for counter in counter_names:
                lines.append(f"# TYPE repro_cache_{counter} counter")
                for dataset in sorted(cache_stats):
                    value = cache_stats[dataset].as_dict()[counter]
                    lines.append(
                        f'repro_cache_{counter}{{dataset="{_escape_label(dataset)}"}} '
                        f"{value}"
                    )
        if live_stats:
            lines.append(
                "# HELP repro_dataset_version Committed-transaction count "
                "per dataset (0 = as built; max over shards)."
            )
            lines.append("# TYPE repro_dataset_version gauge")
            for dataset in sorted(live_stats):
                version = live_stats[dataset].get("dataset_version", 0)
                lines.append(
                    f'repro_dataset_version{{dataset="{_escape_label(dataset)}"}} '
                    f"{version}"
                )
            lines.append(
                "# HELP repro_watch_active Registered continual queries "
                "per dataset."
            )
            lines.append("# TYPE repro_watch_active gauge")
            for dataset in sorted(live_stats):
                active = live_stats[dataset].get("watch_active", 0)
                lines.append(
                    f'repro_watch_active{{dataset="{_escape_label(dataset)}"}} '
                    f"{active}"
                )
        return "\n".join(lines) + "\n"
