"""Bearer-token authentication middleware.

Tokens live in a flat file (``repro serve --auth-token-file``), one per
line::

    # comments and blank lines are skipped
    alice:3f9c4b2d8e...        # principal "alice"
    8a1d0c9e7f...              # bare token -> principal "client"

The principal (the part before the first ``:``) becomes
:attr:`RequestContext.principal` — the identity access logs record and
the rate limiter keys on.  Verification is **constant-time**: every
registered token is compared with :func:`hmac.compare_digest` and the
loop never exits early, so response timing leaks neither which token
prefix matched nor how many tokens exist.

The 401 body is pinned (:class:`~repro.errors.AuthenticationError` has a
constant message) and identical on every topology — auth runs once, at
the edge pipeline, never inside shard workers.
"""

from __future__ import annotations

import hmac
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping

from repro.errors import AuthenticationError, ServiceError
from repro.service.middleware.context import RequestContext
from repro.service.protocol import encode_error

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.middleware.metrics import MetricsRegistry

#: Metric bumped on every rejected credential.
AUTH_FAILURES_METRIC = "repro_auth_failures_total"


class TokenAuthenticator:
    """A fixed token → principal table with constant-time lookup."""

    def __init__(self, tokens: Mapping[str, str]) -> None:
        if not tokens:
            raise ServiceError("an authenticator needs at least one token")
        self._tokens = {
            token.encode("utf-8"): principal for token, principal in tokens.items()
        }

    def __len__(self) -> int:
        return len(self._tokens)

    @classmethod
    def from_file(cls, path: "str | Path") -> "TokenAuthenticator":
        """Parse a token file (``principal:token`` or bare ``token`` lines)."""
        try:
            raw = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ServiceError(f"cannot read auth token file {path}: {exc}") from exc
        tokens: dict[str, str] = {}
        for lineno, line in enumerate(raw.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            principal, sep, token = line.partition(":")
            if not sep:
                principal, token = "client", line
            if not token or not principal:
                raise ServiceError(
                    f"auth token file {path} line {lineno}: expected "
                    "'principal:token' or a bare token"
                )
            tokens[token] = principal
        return cls(tokens)

    def authenticate(self, credential: "str | None") -> "str | None":
        """The credential's principal, or ``None`` — in constant time."""
        presented = (credential or "").encode("utf-8")
        principal: str | None = None
        # no early exit: every token is compared even after a match
        for token, name in self._tokens.items():
            if hmac.compare_digest(token, presented):
                principal = name
        return principal


class AuthMiddleware:
    """Rejects requests whose bearer credential matches no token."""

    def __init__(
        self,
        authenticator: TokenAuthenticator,
        *,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.authenticator = authenticator
        self.metrics = metrics

    def handle(
        self,
        ctx: RequestContext,
        endpoint: str,
        payload: object,
        forward: Callable[[], tuple[int, dict]],
    ) -> tuple[int, dict]:
        principal = self.authenticator.authenticate(ctx.credential)
        if principal is None:
            ctx.response_headers.setdefault("WWW-Authenticate", "Bearer")
            if self.metrics is not None:
                self.metrics.inc(AUTH_FAILURES_METRIC)
            return 401, encode_error(AuthenticationError(), 401)
        ctx.principal = principal
        return forward()
