"""Per-client token-bucket rate limiting and concurrency quotas.

Two independent admission gates, both keyed on the request's client
identity (the authenticated principal when auth is armed, else the
transport peer address, else ``"anonymous"``):

* **rate** — a token bucket per client (``rate`` tokens/second refill,
  ``burst`` capacity).  A request with no token available is the pinned
  429 with a ``Retry-After`` header naming when the next token lands;
* **concurrency** — at most ``max_concurrent`` requests of one client
  in flight at once.  The 430-shaped failure does not exist in HTTP;
  quota exhaustion is also 429, with ``Retry-After: 1`` (an in-flight
  request finishing is what frees the slot, not the clock).

The 429 body is pinned (:class:`~repro.errors.RateLimitedError` has a
constant message) and identical on every topology — throttling runs at
the edge pipeline only, so a scattered sub-request can never be
throttled into a half-answered page.

Bucket state is bounded: at most :data:`MAX_TRACKED_CLIENTS` clients are
tracked, evicting least-recently-seen — an attacker cycling principals
cannot grow the process.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from repro.errors import RateLimitedError, ServiceError
from repro.service.middleware.context import RequestContext
from repro.service.protocol import encode_error

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.middleware.metrics import MetricsRegistry

#: Metric bumped on every throttled request (rate or concurrency).
THROTTLED_METRIC = "repro_ratelimit_throttled_total"

#: Distinct client keys tracked before least-recently-seen eviction.
MAX_TRACKED_CLIENTS = 4096


class _Bucket:
    __slots__ = ("tokens", "stamp", "inflight")

    def __init__(self, burst: float, now: float) -> None:
        self.tokens = burst
        self.stamp = now
        self.inflight = 0


class RateLimiter:
    """Token buckets + in-flight counters for every active client key."""

    def __init__(
        self,
        *,
        rate: "float | None" = None,
        burst: "int | None" = None,
        max_concurrent: "int | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ServiceError(f"rate limit must be > 0 requests/second, got {rate}")
        if burst is not None and burst < 1:
            raise ServiceError(f"rate burst must be >= 1, got {burst}")
        if max_concurrent is not None and max_concurrent < 1:
            raise ServiceError(f"max concurrent must be >= 1, got {max_concurrent}")
        self.rate = rate
        self.burst = (
            burst
            if burst is not None
            else (max(1, math.ceil(rate)) * 2 if rate is not None else 1)
        )
        self.max_concurrent = max_concurrent
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: "OrderedDict[str, _Bucket]" = OrderedDict()

    def _bucket(self, key: str, now: float) -> _Bucket:
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket(float(self.burst), now)
            while len(self._buckets) > MAX_TRACKED_CLIENTS:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(key)
        return bucket

    def admit(self, key: str) -> "float | None":
        """Admit one request for *key* (claiming an in-flight slot).

        Returns ``None`` on admission, else the suggested retry delay in
        seconds.  Every admitted request must be paired with one
        :meth:`release`.
        """
        now = self._clock()
        with self._lock:
            bucket = self._bucket(key, now)
            if (
                self.max_concurrent is not None
                and bucket.inflight >= self.max_concurrent
            ):
                return 1.0
            if self.rate is not None:
                elapsed = max(0.0, now - bucket.stamp)
                bucket.tokens = min(
                    float(self.burst), bucket.tokens + elapsed * self.rate
                )
                bucket.stamp = now
                if bucket.tokens < 1.0:
                    return (1.0 - bucket.tokens) / self.rate
                bucket.tokens -= 1.0
            bucket.inflight += 1
            return None

    def release(self, key: str) -> None:
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is not None and bucket.inflight > 0:
                bucket.inflight -= 1


def client_key(ctx: RequestContext) -> str:
    """The identity quota accounting keys on."""
    return ctx.principal or ctx.client or "anonymous"


class RateLimitMiddleware:
    """Applies a :class:`RateLimiter` to the pipeline."""

    def __init__(
        self,
        limiter: RateLimiter,
        *,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.limiter = limiter
        self.metrics = metrics

    def handle(
        self,
        ctx: RequestContext,
        endpoint: str,
        payload: object,
        forward: Callable[[], tuple[int, dict]],
    ) -> tuple[int, dict]:
        key = client_key(ctx)
        retry_after = self.limiter.admit(key)
        if retry_after is not None:
            ctx.response_headers["Retry-After"] = str(
                max(1, math.ceil(retry_after))
            )
            if self.metrics is not None:
                self.metrics.inc(THROTTLED_METRIC)
            return 429, encode_error(RateLimitedError(), 429)
        try:
            return forward()
        finally:
            self.limiter.release(key)
