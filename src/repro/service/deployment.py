"""Deployment — many named datasets served from one process.

A :class:`Deployment` is the registry the CLI's ``repro serve`` and the
HTTP front end share, and the recommended multi-dataset entry point for
library users (one :class:`~repro.session.Session` per dataset was the
only option before):

* each entry is a *recipe* — an :class:`~repro.core.builder.EngineBuilder`
  (or a prebuilt Session) plus an optional snapshot path — built
  **lazily** on first use, under a per-entry lock so concurrent first
  requests share one build;
* entries are independent: invalidating or reloading ``"dblp"`` never
  touches ``"tpch"``'s cache or in-flight work;
* :meth:`reload` hot-swaps an entry's snapshot tier: the directory is
  re-opened (checksums re-verified) and re-attached through PR 4's
  fingerprint validation — a mismatched or corrupt replacement raises the
  typed persist error and the entry **keeps serving** its previous state.

Quickstart::

    from repro.service import Deployment

    deployment = Deployment()
    deployment.add("dblp", named="dblp", scale=0.5, snapshot="snap.d")
    deployment.add("tpch", named="tpch")
    session = deployment.session("dblp")      # built on first use
    deployment.reload("dblp")                 # hot snapshot swap
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.builder import EngineBuilder
from repro.core.options import ParallelConfig, QueryOptions
from repro.errors import ServiceError, UnknownDatasetError

if TYPE_CHECKING:  # pragma: no cover
    from repro.persist.snapshot import Snapshot
    from repro.session import Session


@dataclass
class _Entry:
    """One hosted dataset: the recipe, the lazily built Session, a lock."""

    name: str
    builder: EngineBuilder | None = None
    session: "Session | None" = None
    snapshot_path: Path | None = None
    verify: bool = True
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: generation counter, bumped by reload() — exposed via describe()
    reloads: int = 0


class Deployment:
    """A registry of named datasets, each lazily built and independently
    managed.  Thread-safe: the registry map has its own lock, each entry
    builds and reloads under a per-entry lock, and everything downstream
    of :meth:`session` is the PR 3 thread-safe serving stack."""

    def __init__(self) -> None:
        self._entries: dict[str, _Entry] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def _register(self, entry: _Entry) -> "Deployment":
        with self._lock:
            if entry.name in self._entries:
                raise ServiceError(
                    f"dataset {entry.name!r} is already registered; "
                    "remove() it first to replace the recipe"
                )
            self._entries[entry.name] = entry
        return self

    def add(
        self,
        name: str,
        *,
        named: str | None = None,
        dataset: Any | None = None,
        builder: EngineBuilder | None = None,
        seed: int = 7,
        scale: float = 1.0,
        theta: float = 0.7,
        snapshot: "str | Path | None" = None,
        verify: bool = True,
        cache_size: int | None = None,
        defaults: QueryOptions | None = None,
        parallel: ParallelConfig | None = None,
    ) -> "Deployment":
        """Register a dataset recipe under *name* (fluent; lazy build).

        Exactly one source: ``named=`` (an on-the-fly demo database),
        ``dataset=`` (any object exposing ``db``/``default_gds()``/
        ``default_store()``), or ``builder=`` (a fully configured
        :class:`EngineBuilder`, treated as an immutable recipe — the
        entry works on a private copy, so registering one builder under
        several names never cross-contaminates their cache sizes or
        snapshots).  ``snapshot`` attaches a precomputed directory —
        kept as a *path* so :meth:`reload` can re-open it.
        """
        sources = [s for s in (named, dataset, builder) if s is not None]
        if len(sources) != 1:
            raise ServiceError(
                f"dataset {name!r}: pass exactly one of named=/dataset=/builder= "
                f"(got {len(sources)})"
            )
        if builder is None:
            if named is not None:
                builder = EngineBuilder.named(named, seed=seed, scale=scale, theta=theta)
            else:
                builder = EngineBuilder.from_dataset(dataset, theta=theta)
        else:
            # entry-private copy: the with_* calls below (and the lazy
            # with_snapshot in session()) must not leak into a builder
            # the caller may reuse for another entry
            shared = builder
            builder = copy.copy(shared)
            builder._gds = dict(shared._gds)
        if cache_size is not None:
            builder.with_cache_size(cache_size)
        if defaults is not None:
            builder.with_defaults(defaults)
        if parallel is not None:
            builder.with_parallel(parallel)
        snapshot_path = None if snapshot is None else Path(snapshot)
        return self._register(
            _Entry(
                name=name,
                builder=builder,
                snapshot_path=snapshot_path,
                verify=verify,
            )
        )

    def add_session(
        self,
        name: str,
        session: "Session",
        *,
        snapshot: "str | Path | None" = None,
    ) -> "Deployment":
        """Register an already built Session (e.g. the CLI's loader output).

        ``snapshot`` records the directory backing the session's disk
        tier so :meth:`reload` works; it defaults to the path of the
        snapshot already attached to the session's cache, if any.
        """
        snapshot_path: Path | None = None
        if snapshot is not None:
            snapshot_path = Path(snapshot)
        elif session.cache.snapshot is not None:
            snapshot_path = Path(session.cache.snapshot.path)
        return self._register(
            _Entry(name=name, session=session, snapshot_path=snapshot_path)
        )

    def remove(self, name: str) -> None:
        """Drop an entry, closing its Session if it was ever built."""
        entry = self._entry(name)
        with self._lock:
            self._entries.pop(name, None)
        with entry.lock:
            if entry.session is not None:
                entry.session.close()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def _entry(self, name: str) -> _Entry:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise UnknownDatasetError(name, list(self._entries)) from None

    def names(self) -> list[str]:
        """Hosted dataset names, registration order."""
        with self._lock:
            return list(self._entries)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def session(self, name: str) -> "Session":
        """The dataset's Session, built (and snapshot-attached) on first use.

        The per-entry lock makes the build single-flight: concurrent first
        requests for one dataset pay one synthesis + one engine build;
        requests for *other* datasets are never blocked by it.  Once
        built, the lock-free fast path below means serving is never
        stalled behind slow entry-lock holders (a reload verifying
        checksums, a build in flight on a *re-added* entry).
        """
        entry = self._entry(name)
        session = entry.session
        if session is not None:
            return session
        with entry.lock:
            if entry.session is None:
                builder = entry.builder
                assert builder is not None  # add() guarantees one source
                if entry.snapshot_path is not None:
                    builder.with_snapshot(entry.snapshot_path, verify=entry.verify)
                entry.session = builder.build_session()
            return entry.session

    # ------------------------------------------------------------------ #
    # Management
    # ------------------------------------------------------------------ #
    def invalidate(
        self, name: str, rds_table: str | None = None, row_id: int | None = None
    ) -> None:
        """Scoped cache invalidation of one dataset (others untouched)."""
        self.session(name).invalidate(rds_table, row_id)

    def reload(self, name: str) -> dict[str, Any]:
        """Hot-swap a dataset's snapshot tier from its directory.

        Re-opens the snapshot path (checksum verification per the entry's
        ``verify`` policy) and re-attaches it, which re-runs the
        fingerprint + store-digest validation of PR 4.  On *any* failure —
        missing directory, corrupt arena, mismatched fingerprint — the
        typed persist error propagates and the entry keeps serving its
        current snapshot and caches: a bad reload must never take the
        deployment down.
        """
        entry = self._entry(name)
        session = self.session(name)
        if entry.snapshot_path is None:
            raise ServiceError(
                f"dataset {name!r} has no snapshot path to reload; "
                "register it with snapshot=... to enable hot reload"
            )
        from repro.persist.snapshot import Snapshot

        # Opened (and checksum-verified) OUTSIDE the entry lock: "hot"
        # means requests keep flowing while the replacement's arenas are
        # hashed — only the O(ms) attach below is serialized.
        snapshot: "Snapshot" = Snapshot.open(entry.snapshot_path, verify=entry.verify)
        with entry.lock:
            # validates the fingerprint against the live engine; raises
            # (leaving the old tier attached) on mismatch
            session.cache.attach_snapshot(snapshot)
            entry.reloads += 1
            return {
                "dataset": name,
                "path": str(snapshot.path),
                "subjects": len(snapshot),
                "reloads": entry.reloads,
            }

    def describe(self, name: str | None = None) -> dict[str, Any]:
        """Registry metadata (one dataset, or all of them).

        Describing is **non-building**: unbuilt entries report
        ``built: False`` instead of paying dataset synthesis — ``GET
        /v1/datasets`` must stay cheap on a freshly booted server.
        """
        if name is not None:
            entry = self._entry(name)
            with entry.lock:
                info: dict[str, Any] = {
                    "dataset": name,
                    "built": entry.session is not None,
                    "snapshot": (
                        None
                        if entry.snapshot_path is None
                        else str(entry.snapshot_path)
                    ),
                    "reloads": entry.reloads,
                }
                if entry.session is not None:
                    info["engine"] = entry.session.engine.describe()
            return info
        return {n: self.describe(n) for n in self.names()}

    def stats(self, name: str) -> dict[str, Any]:
        """One dataset's serving statistics (cache + defaults + engine)."""
        session = self.session(name)
        info = session.describe()
        info["dataset"] = name
        return info

    def close(self) -> None:
        """Close every built Session (idempotent; entries stay registered)."""
        for name in self.names():
            with self._lock:
                entry = self._entries.get(name)
            if entry is None:
                continue
            with entry.lock:
                if entry.session is not None:
                    entry.session.close()

    def __enter__(self) -> "Deployment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
