"""AsyncSession — asyncio adapters over the Session's thread fan-out.

The :class:`~repro.session.Session` serving layer is thread-based (PR 3:
windowed thread-pool fan-out funnelled through the single-flight cache).
:class:`AsyncSession` puts an asyncio face on it without re-implementing
anything: batch calls hop onto the event loop's default executor, and the
streaming generator is bridged through an :class:`asyncio.Queue`, one
item per computed OS — so ``async for`` consumers see results exactly as
incrementally as threaded consumers do, while the event loop stays free.

Quickstart::

    import asyncio
    from repro import Session
    from repro.service import AsyncSession

    async def main():
        asession = AsyncSession(Session.from_named("dblp", scale=0.5))
        async for entry in asession.iter_keyword_query("Faloutsos", l=8):
            print(entry.result.render())
        results = await asession.keyword_query("Faloutsos", l=8)
        await asession.close()

    asyncio.run(main())
"""

from __future__ import annotations

import asyncio
import functools
import threading
from typing import Any, AsyncIterator, Iterable

from repro.core.engine import KeywordResult
from repro.core.os_tree import SizeLResult
from repro.session import Session

#: queue sentinel: the producer thread finished (payload = its error or None)
_DONE = object()


class AsyncSession:
    """An awaitable facade over one :class:`Session`.

    All methods accept the Session's signatures (``options=``, ``l=``,
    ``workers=``...).  The wrapped Session stays fully usable directly —
    an HTTP thread and an asyncio task can share one instance; every code
    path lands in the same thread-safe cache.
    """

    def __init__(self, session: Session) -> None:
        self.session = session

    # ------------------------------------------------------------------ #
    # Awaitable batch calls
    # ------------------------------------------------------------------ #
    async def _call(self, fn: Any, *args: Any, **kwargs: Any) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(fn, *args, **kwargs)
        )

    async def size_l(self, rds_table: str, row_id: int, *args: Any, **kwargs: Any) -> SizeLResult:
        return await self._call(self.session.size_l, rds_table, row_id, *args, **kwargs)

    async def size_l_many(
        self, subjects: Iterable[tuple[str, int]], *args: Any, **kwargs: Any
    ) -> list[SizeLResult]:
        return await self._call(
            self.session.size_l_many, list(subjects), *args, **kwargs
        )

    async def keyword_query(
        self, keywords: list[str] | str, *args: Any, **kwargs: Any
    ) -> list[KeywordResult]:
        return await self._call(self.session.keyword_query, keywords, *args, **kwargs)

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #
    async def iter_keyword_query(
        self, keywords: list[str] | str, *args: Any, **kwargs: Any
    ) -> AsyncIterator[KeywordResult]:
        """``async for`` over a streamed keyword query.

        The Session's (possibly parallel) generator runs on a worker
        thread and hands each :class:`KeywordResult` to the event loop as
        soon as its size-l OS is computed.  Abandoning the async iterator
        stops the producer at its next item (which also cancels the
        fan-out's unstarted work, per the Session's windowed contract).
        """
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        abandoned = threading.Event()

        def produce() -> None:
            error: BaseException | None = None
            try:
                for item in self.session.iter_keyword_query(keywords, *args, **kwargs):
                    if abandoned.is_set():
                        return  # closes the generator -> cancels unstarted work
                    loop.call_soon_threadsafe(queue.put_nowait, (item, None))
            except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
                error = exc
            finally:
                if not abandoned.is_set():
                    loop.call_soon_threadsafe(queue.put_nowait, (_DONE, error))

        producer = loop.run_in_executor(None, produce)
        try:
            while True:
                item, error = await queue.get()
                if item is _DONE:
                    if error is not None:
                        raise error
                    break
                yield item
        finally:
            abandoned.set()
            await producer

    # ------------------------------------------------------------------ #
    # Pass-throughs and lifecycle
    # ------------------------------------------------------------------ #
    async def invalidate(
        self, rds_table: str | None = None, row_id: int | None = None
    ) -> None:
        await self._call(self.session.invalidate, rds_table, row_id)

    def cache_stats(self) -> Any:
        """Non-blocking: one lock-protected counter read."""
        return self.session.cache_stats()

    async def close(self) -> None:
        """Drain and shut the wrapped Session's pool (idempotent)."""
        await self._call(self.session.close)

    async def __aenter__(self) -> "AsyncSession":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
