"""The service layer: a transport-agnostic surface over the library.

PRs 1–4 built a fast, concurrent, snapshot-backed *in-process* engine whose
only entry point was a Python :class:`~repro.session.Session` bound to one
dataset.  This package turns that into a *service*:

* :mod:`repro.service.protocol` — versioned, typed request/response DTOs
  (:class:`QueryRequest`, :class:`SizeLRequest`, :class:`BatchRequest`,
  :class:`QueryResponse`, ...) with pure-dict/JSON codecs, strict
  validation (:class:`~repro.errors.RequestValidationError`), and stable
  ``(rank, table, row_id)`` pagination cursors;
* :mod:`repro.service.deployment` — a :class:`Deployment` registry hosting
  many named datasets (each a lazily built Session + optional snapshot) in
  one process, with independent invalidation and hot snapshot reload;
* :mod:`repro.service.dispatch` — the transport-agnostic request
  dispatcher the HTTP front end, the CLI, and the benchmarks share;
* :mod:`repro.service.asession` — :class:`AsyncSession`, asyncio wrappers
  over the Session's thread-pool fan-out (``await`` / ``async for``);
* :mod:`repro.service.http` — a stdlib-only ``ThreadingHTTPServer`` front
  end (``repro serve``) exposing ``/v1/query``, ``/v1/size-l``,
  ``/v1/batch``, ``/v1/datasets``, ``/v1/stats``, ``/v1/metrics``, and
  ``/v1/admin/invalidate|reload`` with pinned JSON error bodies;
* :mod:`repro.service.middleware` — the composable request pipeline both
  topologies serve through: per-request :class:`RequestContext` (one id
  across router→worker hops), bearer-token auth, per-client rate limits,
  structured JSON access logs, and Prometheus metrics.

Every future scaling PR (sharding, replicas, rate limiting) plugs into
this layer rather than into Session internals.
"""

from repro.service.asession import AsyncSession
from repro.service.deployment import Deployment
from repro.service.dispatch import ServiceDispatcher
from repro.service.http import create_server, serve
from repro.service.middleware import (
    MiddlewareConfig,
    MiddlewarePipeline,
    RequestContext,
    build_pipeline,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    BatchRequest,
    BatchResponse,
    Cursor,
    QueryRequest,
    QueryResponse,
    ResultEntry,
    SizeLRequest,
    SizeLResponse,
    decode_options,
    decode_request,
    encode_error,
    encode_response,
)

__all__ = [
    "PROTOCOL_VERSION",
    "AsyncSession",
    "BatchRequest",
    "BatchResponse",
    "Cursor",
    "Deployment",
    "MiddlewareConfig",
    "MiddlewarePipeline",
    "QueryRequest",
    "QueryResponse",
    "RequestContext",
    "ResultEntry",
    "ServiceDispatcher",
    "build_pipeline",
    "SizeLRequest",
    "SizeLResponse",
    "create_server",
    "decode_options",
    "decode_request",
    "encode_error",
    "encode_response",
    "serve",
]
