"""The versioned wire protocol: typed request/response DTOs and codecs.

Requests and responses are frozen dataclasses with **pure-dict codecs**:
``decode_request`` turns a JSON-shaped dict into a typed request
(rejecting unknown fields, missing fields, and bad types with the pinned
:class:`~repro.errors.RequestValidationError` — the HTTP layer's 400),
and ``encode_response`` flattens a typed response back into JSON types
only.  The codec is the *whole* contract: every transport (HTTP today,
anything else tomorrow) speaks exactly these dicts.

Pagination is cursor-based and **stable**: a :class:`Cursor` pins the
``(rank, table, row_id)`` of the last entry a client saw.  Resuming
re-runs only the cheap keyword search, verifies the match at that rank is
still the same subject (a changed ranking would silently skip or repeat
results otherwise), and computes size-l OSs for the next page only — the
earlier OSs are never recomputed.

The protocol is versioned (:data:`PROTOCOL_VERSION`); responses carry the
version, and a request carrying a different ``protocol_version`` is
rejected up front rather than half-interpreted.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.options import ParallelConfig, QueryOptions, ResultStats
from repro.errors import RequestValidationError, SummaryError
from repro.reliability.deadline import Deadline

#: Version of the request/response shapes defined in this module.
PROTOCOL_VERSION = 1

#: Hard caps on wire-controlled resource knobs.  In-process callers can
#: configure whatever their process tolerates; a *request* must not be
#: able to inflate the serving Session's thread pool (the pool grows to
#: the largest workers= ever seen and never shrinks) or fan out an
#: unbounded batch.
MAX_WIRE_WORKERS = 64
MAX_BATCH_SUBJECTS = 10_000
MAX_MUTATE_OPERATIONS = 1_000
#: Longest server-side long-poll hold on ``/v1/watch/poll``; clients that
#: want to wait longer re-poll with the same cursor.
MAX_WATCH_TIMEOUT_MS = 30_000


# --------------------------------------------------------------------- #
# Strict field extraction
# --------------------------------------------------------------------- #
def _require_mapping(payload: object, what: str) -> dict[str, Any]:
    if not isinstance(payload, Mapping):
        raise RequestValidationError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return dict(payload)


def _reject_unknown(payload: dict[str, Any], allowed: tuple[str, ...], what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise RequestValidationError(
            f"unknown field(s) {unknown} in {what}; allowed: {sorted(allowed)}"
        )


def _require(payload: dict[str, Any], key: str, what: str) -> Any:
    if key not in payload:
        raise RequestValidationError(f"missing required field {key!r} in {what}")
    return payload[key]


def _check_version(payload: dict[str, Any], what: str) -> None:
    version = payload.get("protocol_version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise RequestValidationError(
            f"unsupported protocol_version {version!r} in {what}; "
            f"this server speaks {PROTOCOL_VERSION}"
        )


def _int_field(value: object, key: str, *, minimum: int | None = None) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise RequestValidationError(
            f"field {key!r} must be an integer, got {value!r}"
        )
    if minimum is not None and value < minimum:
        raise RequestValidationError(
            f"field {key!r} must be >= {minimum}, got {value}"
        )
    return value


# --------------------------------------------------------------------- #
# Options codec
# --------------------------------------------------------------------- #
_OPTION_FIELDS = (
    "l",
    "algorithm",
    "source",
    "backend",
    "max_results",
    "depth_limit",
    "flat",
    "snapshot",
    "parallel",
)


def decode_options(payload: object, *, defaults: QueryOptions | None = None) -> QueryOptions:
    """A validated :class:`QueryOptions` from its wire dict.

    Fields not present fall back to *defaults* (the hosting Session's);
    unknown fields are rejected.  Library-level validation failures
    (unknown algorithm, ``l < 1``, ...) surface as
    :class:`RequestValidationError` so the transport maps them to 400 —
    the message is the library's own, so nothing is lost.
    """
    base = defaults if defaults is not None else QueryOptions()
    if payload is None:
        return base.normalized()
    payload = _require_mapping(payload, "options")
    _reject_unknown(payload, _OPTION_FIELDS, "options")
    changes: dict[str, Any] = {
        key: payload[key] for key in _OPTION_FIELDS[:-1] if key in payload
    }
    if "flat" not in payload and any(
        key in payload for key in ("source", "backend", "algorithm")
    ):
        # *defaults* went through normalized(), which canonicalizes
        # flat=True down to False when ITS source/backend/algorithm combo
        # cannot run columnar (e.g. a prelim-source default).  A request
        # that changes that combo must re-opt into the hot path (and the
        # snapshot disk tier behind it) rather than inherit the stale
        # canonicalization; normalized() below re-canonicalizes for the
        # requested combo.  Pinning "flat": false in the request still
        # forces the legacy path.
        changes["flat"] = True
    if "parallel" in payload and payload["parallel"] is not None:
        parallel = _require_mapping(payload["parallel"], "options.parallel")
        _reject_unknown(parallel, ("workers", "ordered"), "options.parallel")
        workers = parallel.get("workers", 1)
        if isinstance(workers, int) and workers > MAX_WIRE_WORKERS:
            raise RequestValidationError(
                f"options.parallel.workers {workers} exceeds the wire "
                f"limit of {MAX_WIRE_WORKERS}"
            )
        changes["parallel"] = ParallelConfig(
            workers=workers,
            ordered=parallel.get("ordered", True),
        )
    try:
        return base.replace(**changes).normalized()
    except SummaryError as exc:
        raise RequestValidationError(f"invalid options: {exc}") from exc


# --------------------------------------------------------------------- #
# Cursor
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Cursor:
    """A stable pagination cursor: the last entry the client received.

    ``rank`` is that entry's zero-based position in the keyword match
    ranking; ``table``/``row_id`` pin the subject so a resumed query can
    *verify* the ranking below the cursor is unchanged instead of
    trusting an offset blindly.
    """

    rank: int
    table: str
    row_id: int

    def encode(self) -> str:
        """The opaque wire token (URL-safe, no padding ambiguity)."""
        raw = json.dumps(
            {"rank": self.rank, "table": self.table, "row_id": self.row_id},
            separators=(",", ":"),
        ).encode("utf-8")
        return base64.urlsafe_b64encode(raw).decode("ascii")

    @classmethod
    def decode(cls, token: object) -> "Cursor":
        if not isinstance(token, str):
            raise RequestValidationError(
                f"cursor must be a string token, got {token!r}"
            )
        try:
            payload = json.loads(base64.urlsafe_b64decode(token.encode("ascii")))
        except (binascii.Error, ValueError, UnicodeDecodeError) as exc:
            raise RequestValidationError(f"undecodable cursor {token!r}") from exc
        payload = _require_mapping(payload, "cursor")
        _reject_unknown(payload, ("rank", "table", "row_id"), "cursor")
        rank = _int_field(_require(payload, "rank", "cursor"), "rank", minimum=0)
        table = _require(payload, "table", "cursor")
        if not isinstance(table, str):
            raise RequestValidationError(f"cursor table must be a string, got {table!r}")
        row_id = _int_field(_require(payload, "row_id", "cursor"), "row_id", minimum=0)
        return cls(rank=rank, table=table, row_id=row_id)


# --------------------------------------------------------------------- #
# Requests
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryRequest:
    """One keyword query (optionally one *page* of one).

    ``deadline_ms`` is the request's end-to-end time budget (expiry is
    the pinned 504, :class:`~repro.errors.DeadlineExceededError`);
    ``allow_partial`` opts into degraded cluster answers — results from
    healthy shards plus ``degraded: true`` and the missing-shard list
    instead of a 503.  Both are no-ops on a single-process deployment's
    healthy path, so opted-in requests stay byte-compatible across
    topologies.
    """

    dataset: str
    keywords: tuple[str, ...]
    options: QueryOptions
    cursor: Cursor | None = None
    page_size: int | None = None
    deadline_ms: int | None = None
    allow_partial: bool = False


@dataclass(frozen=True)
class SizeLRequest:
    """The size-l OS of one explicit Data Subject."""

    dataset: str
    table: str
    row_id: int
    options: QueryOptions
    deadline_ms: int | None = None


@dataclass(frozen=True)
class BatchRequest:
    """Batched size-l OSs over explicit subjects, one option set."""

    dataset: str
    subjects: tuple[tuple[str, int], ...]
    options: QueryOptions
    deadline_ms: int | None = None


_QUERY_FIELDS = (
    "protocol_version",
    "dataset",
    "keywords",
    "options",
    "cursor",
    "page_size",
    "deadline_ms",
    "allow_partial",
)
_SIZE_L_FIELDS = (
    "protocol_version", "dataset", "table", "row_id", "options", "deadline_ms",
)
_BATCH_FIELDS = ("protocol_version", "dataset", "subjects", "options", "deadline_ms")


def _decode_deadline_ms(payload: dict[str, Any]) -> int | None:
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is None:
        return None
    return _int_field(deadline_ms, "deadline_ms", minimum=1)


def request_deadline(payload: object) -> Deadline | None:
    """The :class:`~repro.reliability.Deadline` a wire payload asks for.

    Transports call this *before* dispatching so the budget clock starts
    at request admission (decode and validation time count against it).
    An invalid ``deadline_ms`` raises the pinned 400 here — the request
    decoders re-validate identically, but a deadline must be enforceable
    on endpoints (stats, admin) that have no typed decoder.
    """
    if not isinstance(payload, Mapping):
        return None
    deadline_ms = _decode_deadline_ms(dict(payload))
    return None if deadline_ms is None else Deadline(deadline_ms)


def _decode_dataset(payload: dict[str, Any], what: str) -> str:
    dataset = _require(payload, "dataset", what)
    if not isinstance(dataset, str) or not dataset:
        raise RequestValidationError(
            f"field 'dataset' must be a non-empty string, got {dataset!r}"
        )
    return dataset


def decode_query_request(
    payload: object, *, defaults: QueryOptions | None = None
) -> QueryRequest:
    payload = _require_mapping(payload, "query request")
    _check_version(payload, "query request")
    _reject_unknown(payload, _QUERY_FIELDS, "query request")
    dataset = _decode_dataset(payload, "query request")
    keywords = _require(payload, "keywords", "query request")
    if isinstance(keywords, str):
        keywords = (keywords,)
    elif isinstance(keywords, (list, tuple)) and all(
        isinstance(k, str) for k in keywords
    ):
        keywords = tuple(keywords)
    else:
        raise RequestValidationError(
            f"field 'keywords' must be a string or a list of strings, got {keywords!r}"
        )
    if not keywords:
        raise RequestValidationError("field 'keywords' must not be empty")
    cursor = payload.get("cursor")
    page_size = payload.get("page_size")
    if page_size is not None:
        page_size = _int_field(page_size, "page_size", minimum=1)
    allow_partial = payload.get("allow_partial", False)
    if not isinstance(allow_partial, bool):
        raise RequestValidationError(
            f"field 'allow_partial' must be a boolean, got {allow_partial!r}"
        )
    return QueryRequest(
        dataset=dataset,
        keywords=keywords,
        options=decode_options(payload.get("options"), defaults=defaults),
        cursor=None if cursor is None else Cursor.decode(cursor),
        page_size=page_size,
        deadline_ms=_decode_deadline_ms(payload),
        allow_partial=allow_partial,
    )


def decode_size_l_request(
    payload: object, *, defaults: QueryOptions | None = None
) -> SizeLRequest:
    payload = _require_mapping(payload, "size-l request")
    _check_version(payload, "size-l request")
    _reject_unknown(payload, _SIZE_L_FIELDS, "size-l request")
    table = _require(payload, "table", "size-l request")
    if not isinstance(table, str):
        raise RequestValidationError(f"field 'table' must be a string, got {table!r}")
    return SizeLRequest(
        dataset=_decode_dataset(payload, "size-l request"),
        table=table,
        row_id=_int_field(_require(payload, "row_id", "size-l request"), "row_id"),
        options=decode_options(payload.get("options"), defaults=defaults),
        deadline_ms=_decode_deadline_ms(payload),
    )


def decode_batch_request(
    payload: object, *, defaults: QueryOptions | None = None
) -> BatchRequest:
    payload = _require_mapping(payload, "batch request")
    _check_version(payload, "batch request")
    _reject_unknown(payload, _BATCH_FIELDS, "batch request")
    raw_subjects = _require(payload, "subjects", "batch request")
    if not isinstance(raw_subjects, (list, tuple)) or not raw_subjects:
        raise RequestValidationError(
            "field 'subjects' must be a non-empty list of [table, row_id] pairs"
        )
    if len(raw_subjects) > MAX_BATCH_SUBJECTS:
        raise RequestValidationError(
            f"{len(raw_subjects)} subjects exceed the batch limit of "
            f"{MAX_BATCH_SUBJECTS}; split the request"
        )
    subjects: list[tuple[str, int]] = []
    for i, item in enumerate(raw_subjects):
        ok = (
            isinstance(item, (list, tuple))
            and len(item) == 2
            and isinstance(item[0], str)
            and isinstance(item[1], int)
            and not isinstance(item[1], bool)
        )
        if not ok:
            raise RequestValidationError(
                f"subjects[{i}] must be a [table, row_id] pair, got {item!r}"
            )
        subjects.append((item[0], item[1]))
    return BatchRequest(
        dataset=_decode_dataset(payload, "batch request"),
        subjects=tuple(subjects),
        options=decode_options(payload.get("options"), defaults=defaults),
        deadline_ms=_decode_deadline_ms(payload),
    )


# --------------------------------------------------------------------- #
# Mutations and continual queries
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MutateRequest:
    """One transaction: insert/update/delete operations applied atomically.

    Operations are typed :mod:`repro.db.mutation` objects after decode;
    the whole list commits or none of it does.
    """

    dataset: str
    operations: tuple[Any, ...]
    deadline_ms: int | None = None


@dataclass(frozen=True)
class WatchRequest:
    """Register a continual keyword query (top-``k`` change notifications)."""

    dataset: str
    keywords: tuple[str, ...]
    k: int
    watch_id: str | None = None
    deadline_ms: int | None = None


@dataclass(frozen=True)
class WatchPollRequest:
    """Long-poll a watch for notifications newer than ``after_version``."""

    dataset: str
    watch_id: str
    after_version: int = 0
    timeout_ms: int = 0
    deadline_ms: int | None = None


@dataclass(frozen=True)
class WatchCancelRequest:
    dataset: str
    watch_id: str


_MUTATE_FIELDS = ("protocol_version", "dataset", "operations", "deadline_ms")
_WATCH_FIELDS = (
    "protocol_version", "dataset", "keywords", "k", "watch_id", "deadline_ms",
)
_WATCH_POLL_FIELDS = (
    "protocol_version",
    "dataset",
    "watch_id",
    "after_version",
    "timeout_ms",
    "deadline_ms",
)
_WATCH_CANCEL_FIELDS = ("protocol_version", "dataset", "watch_id")


def decode_mutate_request(payload: object) -> MutateRequest:
    from repro.db.mutation import decode_operation

    payload = _require_mapping(payload, "mutate request")
    _check_version(payload, "mutate request")
    _reject_unknown(payload, _MUTATE_FIELDS, "mutate request")
    raw_ops = _require(payload, "operations", "mutate request")
    if not isinstance(raw_ops, (list, tuple)) or not raw_ops:
        raise RequestValidationError(
            "field 'operations' must be a non-empty list of operation objects"
        )
    if len(raw_ops) > MAX_MUTATE_OPERATIONS:
        raise RequestValidationError(
            f"{len(raw_ops)} operations exceed the transaction limit of "
            f"{MAX_MUTATE_OPERATIONS}; split the transaction"
        )
    operations = tuple(
        decode_operation(entry, index=i) for i, entry in enumerate(raw_ops)
    )
    return MutateRequest(
        dataset=_decode_dataset(payload, "mutate request"),
        operations=operations,
        deadline_ms=_decode_deadline_ms(payload),
    )


def _decode_watch_id(payload: dict[str, Any], what: str, *, required: bool) -> str | None:
    watch_id = payload.get("watch_id")
    if watch_id is None:
        if required:
            raise RequestValidationError(f"missing required field 'watch_id' in {what}")
        return None
    if not isinstance(watch_id, str) or not watch_id:
        raise RequestValidationError(
            f"field 'watch_id' must be a non-empty string, got {watch_id!r}"
        )
    return watch_id


def decode_watch_request(payload: object) -> WatchRequest:
    payload = _require_mapping(payload, "watch request")
    _check_version(payload, "watch request")
    _reject_unknown(payload, _WATCH_FIELDS, "watch request")
    keywords = _require(payload, "keywords", "watch request")
    if isinstance(keywords, str):
        keywords = (keywords,)
    elif isinstance(keywords, (list, tuple)) and all(
        isinstance(k, str) for k in keywords
    ):
        keywords = tuple(keywords)
    else:
        raise RequestValidationError(
            f"field 'keywords' must be a string or a list of strings, got {keywords!r}"
        )
    if not keywords:
        raise RequestValidationError("field 'keywords' must not be empty")
    return WatchRequest(
        dataset=_decode_dataset(payload, "watch request"),
        keywords=keywords,
        k=_int_field(_require(payload, "k", "watch request"), "k", minimum=1),
        watch_id=_decode_watch_id(payload, "watch request", required=False),
        deadline_ms=_decode_deadline_ms(payload),
    )


def decode_watch_poll_request(payload: object) -> WatchPollRequest:
    payload = _require_mapping(payload, "watch poll request")
    _check_version(payload, "watch poll request")
    _reject_unknown(payload, _WATCH_POLL_FIELDS, "watch poll request")
    timeout_ms = payload.get("timeout_ms", 0)
    timeout_ms = _int_field(timeout_ms, "timeout_ms", minimum=0)
    if timeout_ms > MAX_WATCH_TIMEOUT_MS:
        raise RequestValidationError(
            f"field 'timeout_ms' must be <= {MAX_WATCH_TIMEOUT_MS}, "
            f"got {timeout_ms}; re-poll to wait longer"
        )
    return WatchPollRequest(
        dataset=_decode_dataset(payload, "watch poll request"),
        watch_id=_decode_watch_id(payload, "watch poll request", required=True),
        after_version=_int_field(
            payload.get("after_version", 0), "after_version", minimum=0
        ),
        timeout_ms=timeout_ms,
        deadline_ms=_decode_deadline_ms(payload),
    )


def decode_watch_cancel_request(payload: object) -> WatchCancelRequest:
    payload = _require_mapping(payload, "watch cancel request")
    _check_version(payload, "watch cancel request")
    _reject_unknown(payload, _WATCH_CANCEL_FIELDS, "watch cancel request")
    return WatchCancelRequest(
        dataset=_decode_dataset(payload, "watch cancel request"),
        watch_id=_decode_watch_id(payload, "watch cancel request", required=True),
    )


_REQUEST_DECODERS = {
    "query": decode_query_request,
    "size_l": decode_size_l_request,
    "batch": decode_batch_request,
}


def decode_request(
    kind: str, payload: object, *, defaults: QueryOptions | None = None
) -> QueryRequest | SizeLRequest | BatchRequest:
    """Decode *payload* as a ``kind`` request ("query" | "size_l" | "batch")."""
    try:
        decoder = _REQUEST_DECODERS[kind]
    except KeyError:
        raise RequestValidationError(
            f"unknown request kind {kind!r}; use one of {sorted(_REQUEST_DECODERS)}"
        ) from None
    return decoder(payload, defaults=defaults)


def encode_request(request: QueryRequest | SizeLRequest | BatchRequest) -> dict[str, Any]:
    """The wire dict of a typed request (the client side of the codec)."""
    body: dict[str, Any] = {
        "protocol_version": PROTOCOL_VERSION,
        "dataset": request.dataset,
        "options": request.options.as_dict(),
    }
    if getattr(request, "deadline_ms", None) is not None:
        body["deadline_ms"] = request.deadline_ms
    if isinstance(request, QueryRequest):
        body["keywords"] = list(request.keywords)
        if request.cursor is not None:
            body["cursor"] = request.cursor.encode()
        if request.page_size is not None:
            body["page_size"] = request.page_size
        if request.allow_partial:
            body["allow_partial"] = True
    elif isinstance(request, SizeLRequest):
        body["table"] = request.table
        body["row_id"] = request.row_id
    elif isinstance(request, BatchRequest):
        body["subjects"] = [[table, row_id] for table, row_id in request.subjects]
    else:
        raise RequestValidationError(
            f"cannot encode {type(request).__name__} as a request"
        )
    return body


# --------------------------------------------------------------------- #
# Responses
# --------------------------------------------------------------------- #
def _encode_stats(stats: object) -> dict[str, Any]:
    """A result's :class:`ResultStats` (or legacy dict) as JSON types."""
    if isinstance(stats, ResultStats):
        encoded: dict[str, Any] = {
            key: getattr(stats, key) for key in ResultStats._TYPED
        }
        encoded["counters"] = {
            key: value
            for key, value in stats.counters.items()
            if isinstance(value, (int, float, str, bool))
        }
        return encoded
    return {
        key: value
        for key, value in dict(stats).items()
        if isinstance(value, (int, float, str, bool))
    }


@dataclass(frozen=True)
class ResultEntry:
    """One size-l OS in a response: identity, scores, payload, stats."""

    rank: int
    table: str
    row_id: int
    match_importance: float
    importance: float
    l: int  # noqa: E741 - paper notation
    algorithm: str
    selected_uids: tuple[int, ...]
    rendered: str
    stats: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "table": self.table,
            "row_id": self.row_id,
            "match_importance": self.match_importance,
            "importance": self.importance,
            "l": self.l,
            "algorithm": self.algorithm,
            "selected_uids": list(self.selected_uids),
            "rendered": self.rendered,
            "stats": dict(self.stats),
        }


def result_entry(
    rank: int, table: str, row_id: int, match_importance: float, result: Any
) -> ResultEntry:
    """Build a :class:`ResultEntry` from a ``SizeLResult``."""
    return ResultEntry(
        rank=rank,
        table=table,
        row_id=row_id,
        match_importance=float(match_importance),
        importance=float(result.importance),
        l=result.l,
        algorithm=result.algorithm,
        selected_uids=tuple(sorted(result.selected_uids)),
        rendered=result.render(),
        stats=_encode_stats(result.stats),
    )


@dataclass(frozen=True)
class QueryResponse:
    """One page of a keyword query.

    ``next_cursor`` is ``None`` on the last page; ``total_matches`` counts
    the full (post-``max_results``) match list so clients can size
    progress bars without paging to the end.  ``cache`` carries the
    hosting cache's counters (:class:`~repro.core.cache.CacheStats`)
    *after* this request — the serving observability `/v1/stats` also
    exposes.
    """

    dataset: str
    keywords: tuple[str, ...]
    results: tuple[ResultEntry, ...]
    total_matches: int
    next_cursor: Cursor | None
    cache: dict[str, int] = field(default_factory=dict)
    #: The dataset's committed-transaction count when this answer was
    #: computed (0 = as built).  On a sharded topology: the max over the
    #: answering shards.
    dataset_version: int = 0
    #: Degraded-mode marker (cluster only): ``True`` means some shards
    #: were unavailable and their entries are missing from ``results``.
    degraded: bool = False
    missing_shards: tuple[int, ...] = ()


@dataclass(frozen=True)
class SizeLResponse:
    dataset: str
    result: ResultEntry
    cache: dict[str, int] = field(default_factory=dict)
    dataset_version: int = 0


@dataclass(frozen=True)
class BatchResponse:
    dataset: str
    results: tuple[ResultEntry, ...]
    cache: dict[str, int] = field(default_factory=dict)
    dataset_version: int = 0


def encode_response(
    response: QueryResponse | SizeLResponse | BatchResponse,
) -> dict[str, Any]:
    """The wire dict of a typed response (always carries the version)."""
    body: dict[str, Any] = {
        "protocol_version": PROTOCOL_VERSION,
        "dataset": response.dataset,
        "cache": dict(response.cache),
        "dataset_version": response.dataset_version,
    }
    if isinstance(response, QueryResponse):
        body["keywords"] = list(response.keywords)
        body["results"] = [entry.as_dict() for entry in response.results]
        body["total_matches"] = response.total_matches
        body["next_cursor"] = (
            None if response.next_cursor is None else response.next_cursor.encode()
        )
        # only degraded answers carry the marker: healthy bodies must stay
        # byte-identical to pre-reliability servers (and across topologies)
        if response.degraded:
            body["degraded"] = True
            body["missing_shards"] = list(response.missing_shards)
    elif isinstance(response, SizeLResponse):
        body["result"] = response.result.as_dict()
    elif isinstance(response, BatchResponse):
        body["results"] = [entry.as_dict() for entry in response.results]
    else:
        raise RequestValidationError(
            f"cannot encode {type(response).__name__} as a response"
        )
    return body


def _decode_entry(payload: object) -> ResultEntry:
    payload = _require_mapping(payload, "result entry")
    entry_fields = (
        "rank",
        "table",
        "row_id",
        "match_importance",
        "importance",
        "l",
        "algorithm",
        "selected_uids",
        "rendered",
        "stats",
    )
    _reject_unknown(payload, entry_fields, "result entry")
    for key in entry_fields:
        _require(payload, key, "result entry")
    return ResultEntry(
        rank=payload["rank"],
        table=payload["table"],
        row_id=payload["row_id"],
        match_importance=payload["match_importance"],
        importance=payload["importance"],
        l=payload["l"],
        algorithm=payload["algorithm"],
        selected_uids=tuple(payload["selected_uids"]),
        rendered=payload["rendered"],
        stats=dict(payload["stats"]),
    )


def decode_query_response(payload: object) -> QueryResponse:
    """A typed :class:`QueryResponse` from its wire dict (the client side)."""
    payload = _require_mapping(payload, "query response")
    _check_version(payload, "query response")
    _reject_unknown(
        payload,
        (
            "protocol_version",
            "dataset",
            "keywords",
            "results",
            "total_matches",
            "next_cursor",
            "cache",
            "dataset_version",
            "degraded",
            "missing_shards",
        ),
        "query response",
    )
    cursor = payload.get("next_cursor")
    return QueryResponse(
        dataset=_require(payload, "dataset", "query response"),
        keywords=tuple(_require(payload, "keywords", "query response")),
        results=tuple(
            _decode_entry(entry)
            for entry in _require(payload, "results", "query response")
        ),
        total_matches=_require(payload, "total_matches", "query response"),
        next_cursor=None if cursor is None else Cursor.decode(cursor),
        cache=dict(payload.get("cache", {})),
        dataset_version=int(payload.get("dataset_version", 0)),
        degraded=bool(payload.get("degraded", False)),
        missing_shards=tuple(payload.get("missing_shards", ())),
    )


# --------------------------------------------------------------------- #
# Errors
# --------------------------------------------------------------------- #
def encode_error(exc: BaseException, status: int) -> dict[str, Any]:
    """The pinned JSON error body every transport returns.

    ``type`` is the exception class name (stable across the typed
    hierarchy — clients can switch on it), ``status`` repeats the HTTP
    status so non-HTTP transports carry the same information.
    """
    return {
        "protocol_version": PROTOCOL_VERSION,
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "status": status,
        },
    }
