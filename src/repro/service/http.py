"""The stdlib-only HTTP front end (``repro serve``).

A ``ThreadingHTTPServer`` (one thread per connection — the per-request
work then fans out over each Session's own pool) serving the
:class:`~repro.service.dispatch.ServiceDispatcher` endpoint table:

=========================  ======  =====================================
path                       method  body
=========================  ======  =====================================
``/v1/query``              POST    query request (keywords, options,
                                   cursor, page_size)
``/v1/size-l``             POST    size-l request (table, row_id, options)
``/v1/batch``              POST    batch request (subjects, options)
``/v1/mutate``             POST    transactional writes (operations)
``/v1/watch``              POST    register a continual query (keywords, k)
``/v1/watch/poll``         POST    long-poll a watch (after_version)
``/v1/watch/cancel``       POST    cancel a watch
``/v1/datasets``           GET     —
``/v1/stats``              GET     optional ``?dataset=name``
``/v1/metrics``            GET     Prometheus text exposition
``/v1/admin/invalidate``   POST    ``{dataset, table?, row_id?}``
``/v1/admin/reload``       POST    ``{dataset}``
=========================  ======  =====================================

Every API response is JSON.  Failures use the pinned error body
(:func:`~repro.service.protocol.encode_error`) and status codes
(:func:`~repro.service.dispatch.status_for`): 400 validation, 401
rejected credential (when serving with an auth token file), 404 unknown
dataset/endpoint, 405 wrong method, 409 rejected snapshot reload, 413
oversized body, 429 throttled (when serving with rate limits), 500 bugs,
503 transient unavailability (with a ``Retry-After`` header when a shard
is down — the request was not served and retrying is safe), 504 deadline
exhaustion.  A failed request — including a mismatched
``/v1/admin/reload`` — never takes the server down.

Requests flow through the server's
:class:`~repro.service.middleware.MiddlewarePipeline` (built from the
``middleware=`` config; the default config arms nothing and leaves every
body byte-identical to a bare dispatcher).  The handler's own job is
edge work only: minting the :class:`RequestContext`, parsing headers,
and serializing the pipeline's answer.

Reliability and observability hooks:

* every response (success, error, 405, health) echoes
  ``X-Repro-Request-Id`` — the client's validated id when supplied, a
  generated one otherwise — and the same id follows the request across
  router→worker hops;
* an ``X-Repro-Deadline-Ms`` header on any POST sets the request's
  end-to-end budget (equivalent to a ``deadline_ms`` body field, which
  wins when both are present);
* ``GET /v1/stats?allow_partial=1`` opts into a degraded partial merge
  when the deployment is a cluster with unavailable shards;
* ``GET /v1/healthz`` and ``GET /v1/metrics`` answer before the pipeline
  (no auth, no throttling, no self-counting): liveness probes and
  scrapes must keep working while clients are being rejected.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.service.deployment import Deployment
from repro.service.dispatch import ServiceDispatcher, status_for
from repro.service.middleware import (
    REQUEST_ID_HEADER,
    MiddlewareConfig,
    MiddlewarePipeline,
    RequestContext,
    build_pipeline,
    new_request_id,
    validate_request_id,
)
from repro.service.protocol import encode_error
from repro.errors import (
    PayloadTooLargeError,
    RequestValidationError,
    ServiceError,
)

#: Request bodies above this are rejected up front (64 MiB — far above any
#: legitimate batch, small enough to keep a stray client from ballooning RSS).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: POST header carrying the end-to-end budget (milliseconds, >= 1).
DEADLINE_HEADER = "X-Repro-Deadline-Ms"

#: The Prometheus text exposition content type.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_GET_ENDPOINTS = ("/v1/datasets", "/v1/stats", "/v1/healthz", "/v1/metrics")
_POST_ENDPOINTS = (
    "/v1/query",
    "/v1/size-l",
    "/v1/batch",
    "/v1/mutate",
    "/v1/watch",
    "/v1/watch/poll",
    "/v1/watch/cancel",
    "/v1/admin/invalidate",
    "/v1/admin/reload",
)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the middleware pipeline; owns no state of its own."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # quiet by default; the serving loop is not a place for per-request prints
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # Edge context
    # ------------------------------------------------------------------ #
    def _begin(self) -> "RequestContext | None":
        """Mint this request's context from transport headers.

        An invalid client-supplied ``X-Repro-Request-Id`` is a 400 (sent
        here, echoing a *fresh* id — the bad one is never reflected);
        ``None`` tells the caller the response is already on the wire.
        """
        client = self.client_address[0] if self.client_address else None
        credential = None
        authorization = self.headers.get("Authorization")
        if authorization is not None:
            scheme, _, rest = authorization.partition(" ")
            if scheme.lower() == "bearer":
                credential = rest.strip()
        raw_id = self.headers.get(REQUEST_ID_HEADER)
        ctx = RequestContext(client=client, credential=credential)
        if raw_id is not None:
            try:
                ctx.request_id = validate_request_id(raw_id)
            except RequestValidationError as exc:
                ctx.request_id = new_request_id()
                self._send_json(400, encode_error(exc, 400), ctx=ctx)
                return None
        return ctx

    # ------------------------------------------------------------------ #
    # Response plumbing
    # ------------------------------------------------------------------ #
    def _send_json(
        self,
        status: int,
        body: dict[str, Any],
        extra_headers: "dict[str, str] | None" = None,
        *,
        ctx: "RequestContext | None" = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self._send_context_headers(ctx)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(
        self, status: int, text: str, content_type: str, ctx: "RequestContext | None"
    ) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self._send_context_headers(ctx)
        self.end_headers()
        self.wfile.write(payload)

    def _send_context_headers(self, ctx: "RequestContext | None") -> None:
        if ctx is None:
            return
        self.send_header(REQUEST_ID_HEADER, ctx.request_id)
        for name, value in ctx.response_headers.items():
            self.send_header(name, value)

    def _send_dispatch(
        self, ctx: RequestContext, status: int, body: dict[str, Any]
    ) -> None:
        """Send a pipeline reply, decorating transient failures.

        A 503 whose body is the pinned ``ShardUnavailableError`` means
        the request was never served (a shard is down or restarting) —
        exactly the case HTTP's ``Retry-After`` exists for.  (Throttled
        429s carry their own ``Retry-After`` via the context's response
        headers.)
        """
        extra = None
        if status == 503 and isinstance(body, dict):
            error = body.get("error")
            if isinstance(error, dict) and error.get("type") == "ShardUnavailableError":
                extra = {"Retry-After": "1"}
        self._send_json(status, body, extra, ctx=ctx)

    def _send_edge_error(self, ctx: RequestContext, path: str, exc: Exception) -> None:
        """A transport-level reject (bad length, oversized body).

        These never reach the pipeline, but they still count: the metrics
        registry records them so a client flooding 413s is visible on
        ``/v1/metrics``.
        """
        status = status_for(exc, path)
        self.server.pipeline.metrics.observe(
            path, status, max(0.0, ctx.elapsed_ms() / 1000.0)
        )
        self._send_json(status, encode_error(exc, status), ctx=ctx)

    # ------------------------------------------------------------------ #
    # Request reading
    # ------------------------------------------------------------------ #
    def _read_body(self) -> object:
        raw_length = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise RequestValidationError(
                f"invalid Content-Length header {raw_length!r}"
            ) from None
        if length > MAX_BODY_BYTES:
            # the declared size alone rejects the request: the body is
            # never read, so a 64 GiB Content-Length costs nothing
            raise PayloadTooLargeError(length, MAX_BODY_BYTES)
        if length < 0:
            # negative lengths matter: rfile.read(-1) would block on the
            # open socket until client EOF, pinning this handler thread
            raise RequestValidationError(
                f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]"
            )
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RequestValidationError(f"request body is not valid JSON: {exc}") from exc

    # ------------------------------------------------------------------ #
    # Methods
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        ctx = self._begin()
        if ctx is None:
            return
        split = urlsplit(self.path)
        if split.path in _POST_ENDPOINTS:
            self._method_not_allowed("POST", ctx)
            return
        if split.path == "/v1/healthz":
            # liveness must stay allocation-cheap and session-build-free:
            # it answers before (and instead of) the pipeline machinery
            self._send_json(200, self.server.healthz(), ctx=ctx)
            return
        if split.path == "/v1/metrics":
            # scrapes bypass auth/throttling and do not count themselves
            self._send_text(
                200, self.server.pipeline.metrics_text(), METRICS_CONTENT_TYPE, ctx
            )
            return
        payload: dict[str, Any] | None = None
        query = parse_qs(split.query)
        if "dataset" in query:
            payload = {"dataset": query["dataset"][0]}
        if split.path == "/v1/stats" and query.get("allow_partial", [""])[0] in (
            "1",
            "true",
        ):
            payload = dict(payload or {})
            payload["allow_partial"] = True
        # unknown paths flow through the pipeline too, so the 404 body
        # carries the same UnknownEndpointError type every transport uses
        status, body = self.server.pipeline.handle(ctx, split.path, payload)
        self._send_dispatch(ctx, status, body)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        ctx = self._begin()
        if ctx is None:
            return
        split = urlsplit(self.path)
        if split.path in _GET_ENDPOINTS:
            self._method_not_allowed("GET", ctx)
            return
        try:
            payload = self._read_body()
        except ServiceError as exc:  # RequestValidationError or PayloadTooLargeError
            self._send_edge_error(ctx, split.path, exc)
            return
        raw_deadline = self.headers.get(DEADLINE_HEADER)
        if raw_deadline is not None:
            try:
                deadline_ms = int(raw_deadline.strip())
                if deadline_ms < 1:
                    raise ValueError
            except ValueError:
                exc = RequestValidationError(
                    f"invalid {DEADLINE_HEADER} header {raw_deadline!r}: "
                    "expected an integer millisecond budget >= 1"
                )
                self._send_json(400, encode_error(exc, 400), ctx=ctx)
                return
            # the body field wins when both are present (it is the wire
            # protocol's native spelling; the header is sugar for clients
            # that cannot touch the body)
            if isinstance(payload, dict) and "deadline_ms" not in payload:
                payload = dict(payload)
                payload["deadline_ms"] = deadline_ms
        status, body = self.server.pipeline.handle(ctx, split.path, payload)
        self._send_dispatch(ctx, status, body)

    def _method_not_allowed(self, allowed: str, ctx: RequestContext) -> None:
        body = encode_error(
            ServiceError(
                f"method {self.command} not allowed on {self.path}; use {allowed}"
            ),
            405,
        )
        self._send_json(405, body, {"Allow": allowed}, ctx=ctx)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one dispatcher.

    "Dispatcher" means anything with the ``dispatch_safe(endpoint,
    payload) -> (status, body)`` surface: the single-process
    :class:`ServiceDispatcher` or the cluster's scatter/gather router —
    the front end cannot tell them apart, which is how ``repro serve
    --shards N`` reuses this file unchanged.

    ``middleware`` is either a :class:`MiddlewareConfig` (the stack is
    built here, in the pinned order) or a pre-built
    :class:`MiddlewarePipeline` (tests composing their own stacks).
    ``None`` means the disarmed default: metrics only, every body
    byte-identical to a bare dispatcher.
    """

    daemon_threads = True  # a hung client connection must not block shutdown

    def __init__(
        self,
        address: tuple[str, int],
        dispatcher: "ServiceDispatcher | Any",
        *,
        verbose: bool = False,
        middleware: "MiddlewareConfig | MiddlewarePipeline | None" = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.dispatcher = dispatcher
        self.verbose = verbose
        if isinstance(middleware, MiddlewarePipeline):
            self.pipeline = middleware
        else:
            self.pipeline = build_pipeline(dispatcher, middleware)

    def healthz(self) -> dict[str, Any]:
        """The ``GET /v1/healthz`` body: pinned 200-status liveness.

        Dispatchers that know more (the cluster router knows per-shard
        readiness) provide their own ``healthz()``; the single-process
        default reports the hosted names without building any session.
        """
        hook = getattr(self.dispatcher, "healthz", None)
        if callable(hook):
            return hook()
        return {
            "ok": True,
            "role": "single-process",
            "datasets": self.dispatcher.deployment.names(),
        }

    def server_close(self) -> None:
        # a failed bind calls server_close() from inside super().__init__,
        # before the pipeline attribute exists
        pipeline = getattr(self, "pipeline", None)
        try:
            if pipeline is not None:
                pipeline.close()
        finally:
            super().server_close()

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when constructed with port 0)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def create_server(
    deployment: Deployment,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    middleware: "MiddlewareConfig | MiddlewarePipeline | None" = None,
) -> ServiceHTTPServer:
    """Bind (but do not run) a server over *deployment*.

    ``port=0`` binds an ephemeral port — read it back via ``server.port``.
    Run with ``server.serve_forever()`` (blocking) or wrap in a thread::

        server = create_server(deployment, port=8077)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown()
    """
    return ServiceHTTPServer(
        (host, port),
        ServiceDispatcher(deployment),
        verbose=verbose,
        middleware=middleware,
    )


def serve(
    deployment: Deployment,
    *,
    host: str = "127.0.0.1",
    port: int = 8077,
    verbose: bool = False,
    middleware: "MiddlewareConfig | MiddlewarePipeline | None" = None,
    ready: "threading.Event | None" = None,
) -> None:
    """Blocking convenience: bind and serve until interrupted.

    ``ready`` (if given) is set once the socket is bound — the hook
    in-process callers use to know the ephemeral port is readable.
    """
    server = create_server(
        deployment, host=host, port=port, verbose=verbose, middleware=middleware
    )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    finally:
        server.server_close()
