"""The stdlib-only HTTP front end (``repro serve``).

A ``ThreadingHTTPServer`` (one thread per connection — the per-request
work then fans out over each Session's own pool) serving the
:class:`~repro.service.dispatch.ServiceDispatcher` endpoint table:

=========================  ======  =====================================
path                       method  body
=========================  ======  =====================================
``/v1/query``              POST    query request (keywords, options,
                                   cursor, page_size)
``/v1/size-l``             POST    size-l request (table, row_id, options)
``/v1/batch``              POST    batch request (subjects, options)
``/v1/datasets``           GET     —
``/v1/stats``              GET     optional ``?dataset=name``
``/v1/admin/invalidate``   POST    ``{dataset, table?, row_id?}``
``/v1/admin/reload``       POST    ``{dataset}``
=========================  ======  =====================================

Every response is JSON.  Failures use the pinned error body
(:func:`~repro.service.protocol.encode_error`) and status codes
(:func:`~repro.service.dispatch.status_for`): 400 validation, 404 unknown
dataset/endpoint, 405 wrong method, 409 rejected snapshot reload, 500
bugs, 503 transient unavailability (with a ``Retry-After`` header when a
shard is down — the request was not served and retrying is safe), 504
deadline exhaustion.  A failed request — including a mismatched
``/v1/admin/reload`` — never takes the server down.

Reliability hooks:

* an ``X-Repro-Deadline-Ms`` header on any POST sets the request's
  end-to-end budget (equivalent to a ``deadline_ms`` body field, which
  wins when both are present);
* ``GET /v1/stats?allow_partial=1`` opts into a degraded partial merge
  when the deployment is a cluster with unavailable shards.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.service.deployment import Deployment
from repro.service.dispatch import ServiceDispatcher
from repro.service.protocol import encode_error
from repro.errors import RequestValidationError, ServiceError

#: Request bodies above this are rejected up front (64 MiB — far above any
#: legitimate batch, small enough to keep a stray client from ballooning RSS).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: POST header carrying the end-to-end budget (milliseconds, >= 1).
DEADLINE_HEADER = "X-Repro-Deadline-Ms"

_GET_ENDPOINTS = ("/v1/datasets", "/v1/stats", "/v1/healthz")
_POST_ENDPOINTS = (
    "/v1/query",
    "/v1/size-l",
    "/v1/batch",
    "/v1/admin/invalidate",
    "/v1/admin/reload",
)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the dispatcher; owns no state of its own."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # quiet by default; the serving loop is not a place for per-request prints
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        body: dict[str, Any],
        extra_headers: "dict[str, str] | None" = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_dispatch(self, status: int, body: dict[str, Any]) -> None:
        """Send a dispatcher reply, decorating transient failures.

        A 503 whose body is the pinned ``ShardUnavailableError`` means
        the request was never served (a shard is down or restarting) —
        exactly the case HTTP's ``Retry-After`` exists for.
        """
        extra = None
        if status == 503 and isinstance(body, dict):
            error = body.get("error")
            if isinstance(error, dict) and error.get("type") == "ShardUnavailableError":
                extra = {"Retry-After": "1"}
        self._send_json(status, body, extra)

    def _read_body(self) -> object:
        raw_length = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise RequestValidationError(
                f"invalid Content-Length header {raw_length!r}"
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            # negative lengths matter: rfile.read(-1) would block on the
            # open socket until client EOF, pinning this handler thread
            raise RequestValidationError(
                f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]"
            )
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RequestValidationError(f"request body is not valid JSON: {exc}") from exc

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        split = urlsplit(self.path)
        if split.path in _POST_ENDPOINTS:
            self._method_not_allowed("POST")
            return
        if split.path == "/v1/healthz":
            # liveness must stay allocation-cheap and session-build-free:
            # it answers before (and instead of) the dispatch machinery
            self._send_json(200, self.server.healthz())
            return
        payload: dict[str, Any] | None = None
        query = parse_qs(split.query)
        if "dataset" in query:
            payload = {"dataset": query["dataset"][0]}
        if split.path == "/v1/stats" and query.get("allow_partial", [""])[0] in (
            "1",
            "true",
        ):
            payload = dict(payload or {})
            payload["allow_partial"] = True
        # unknown paths flow through dispatch_safe too, so the 404 body
        # carries the same UnknownEndpointError type every transport uses
        status, body = self.server.dispatcher.dispatch_safe(split.path, payload)
        self._send_dispatch(status, body)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        split = urlsplit(self.path)
        if split.path in _GET_ENDPOINTS:
            self._method_not_allowed("GET")
            return
        try:
            payload = self._read_body()
        except RequestValidationError as exc:
            self._send_json(400, encode_error(exc, 400))
            return
        raw_deadline = self.headers.get(DEADLINE_HEADER)
        if raw_deadline is not None:
            try:
                deadline_ms = int(raw_deadline.strip())
                if deadline_ms < 1:
                    raise ValueError
            except ValueError:
                exc = RequestValidationError(
                    f"invalid {DEADLINE_HEADER} header {raw_deadline!r}: "
                    "expected an integer millisecond budget >= 1"
                )
                self._send_json(400, encode_error(exc, 400))
                return
            # the body field wins when both are present (it is the wire
            # protocol's native spelling; the header is sugar for clients
            # that cannot touch the body)
            if isinstance(payload, dict) and "deadline_ms" not in payload:
                payload = dict(payload)
                payload["deadline_ms"] = deadline_ms
        status, body = self.server.dispatcher.dispatch_safe(split.path, payload)
        self._send_dispatch(status, body)

    def _method_not_allowed(self, allowed: str) -> None:
        body = encode_error(
            ServiceError(
                f"method {self.command} not allowed on {self.path}; use {allowed}"
            ),
            405,
        )
        payload = json.dumps(body).encode("utf-8")
        self.send_response(405)
        self.send_header("Allow", allowed)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one dispatcher.

    "Dispatcher" means anything with the ``dispatch_safe(endpoint,
    payload) -> (status, body)`` surface: the single-process
    :class:`ServiceDispatcher` or the cluster's scatter/gather router —
    the front end cannot tell them apart, which is how ``repro serve
    --shards N`` reuses this file unchanged.
    """

    daemon_threads = True  # a hung client connection must not block shutdown

    def __init__(
        self,
        address: tuple[str, int],
        dispatcher: "ServiceDispatcher | Any",
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.dispatcher = dispatcher
        self.verbose = verbose

    def healthz(self) -> dict[str, Any]:
        """The ``GET /v1/healthz`` body: pinned 200-status liveness.

        Dispatchers that know more (the cluster router knows per-shard
        readiness) provide their own ``healthz()``; the single-process
        default reports the hosted names without building any session.
        """
        hook = getattr(self.dispatcher, "healthz", None)
        if callable(hook):
            return hook()
        return {
            "ok": True,
            "role": "single-process",
            "datasets": self.dispatcher.deployment.names(),
        }

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when constructed with port 0)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def create_server(
    deployment: Deployment,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind (but do not run) a server over *deployment*.

    ``port=0`` binds an ephemeral port — read it back via ``server.port``.
    Run with ``server.serve_forever()`` (blocking) or wrap in a thread::

        server = create_server(deployment, port=8077)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown()
    """
    return ServiceHTTPServer((host, port), ServiceDispatcher(deployment), verbose=verbose)


def serve(
    deployment: Deployment,
    *,
    host: str = "127.0.0.1",
    port: int = 8077,
    verbose: bool = False,
    ready: "threading.Event | None" = None,
) -> None:
    """Blocking convenience: bind and serve until interrupted.

    ``ready`` (if given) is set once the socket is bound — the hook
    in-process callers use to know the ephemeral port is readable.
    """
    server = create_server(deployment, host=host, port=port, verbose=verbose)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    finally:
        server.server_close()
