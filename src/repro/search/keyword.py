"""Keyword → Data Subject resolution."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.errors import SearchError
from repro.ranking.store import ImportanceStore
from repro.search.inverted_index import BaseInvertedIndex, InvertedIndex


@dataclass(frozen=True)
class DataSubjectMatch:
    """A t_DS tuple matching the keyword query."""

    table: str
    row_id: int
    importance: float


class KeywordSearcher:
    """Finds Data Subject tuples for a keyword query.

    Only the R_DS relations (those with a G_DS — the relations that "hold
    information about the queried Data Subjects") are searched; matches are
    returned ranked by global importance, which is how the OS paradigm
    orders its result list of OSs.
    """

    def __init__(
        self,
        db: Database,
        rds_tables: list[str],
        store: ImportanceStore,
        index: BaseInvertedIndex | None = None,
    ) -> None:
        if not rds_tables:
            raise SearchError("at least one R_DS table is required")
        self.db = db
        self.rds_tables = list(rds_tables)
        self.store = store
        # A prebuilt index (e.g. the memory-mapped ArrayInvertedIndex of an
        # attached snapshot) skips the tokenizing build scan entirely.
        self.index = index if index is not None else InvertedIndex(db, rds_tables)

    def search(self, keywords: list[str] | str) -> list[DataSubjectMatch]:
        """Resolve keywords to ranked t_DS matches (conjunctive semantics)."""
        if isinstance(keywords, str):
            keywords = [keywords]
        cleaned = [k for k in keywords if k.strip()]
        if not cleaned:
            raise SearchError("empty keyword query")
        postings = self.index.conjunctive(cleaned)
        matches = [
            DataSubjectMatch(
                table=p.table,
                row_id=p.row_id,
                importance=self.store.importance(p.table, p.row_id),
            )
            for p in postings
        ]
        matches.sort(key=lambda m: (-m.importance, m.table, m.row_id))
        return matches
