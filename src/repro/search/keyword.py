"""Keyword → Data Subject resolution.

Besides plain value matching through the inverted index, the searcher
understands *schema-reference* keywords (arXiv:2203.05921): a keyword
whose every token names a table or attribute of the schema ("author",
"papers", "name") is treated as a reference to that schema element
rather than a value to match.  Schema references are stripped from the
conjunctive AND — they would otherwise only match tuples that happen to
contain the word "author" — and instead boost the referenced R_DS
relation's matches to the front of the ranking, so "author faloutsos
papers" surfaces author subjects first.  A query made up *entirely* of
schema references lists the referenced relation's top subjects by
importance.  Queries with no schema-name tokens are untouched: they
resolve exactly as plain keyword queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.errors import SearchError
from repro.ranking.store import ImportanceStore
from repro.search.inverted_index import BaseInvertedIndex, InvertedIndex
from repro.search.tokenizer import tokenize


@dataclass(frozen=True)
class DataSubjectMatch:
    """A t_DS tuple matching the keyword query."""

    table: str
    row_id: int
    importance: float


class KeywordSearcher:
    """Finds Data Subject tuples for a keyword query.

    Only the R_DS relations (those with a G_DS — the relations that "hold
    information about the queried Data Subjects") are searched; matches are
    returned ranked by global importance, which is how the OS paradigm
    orders its result list of OSs.
    """

    def __init__(
        self,
        db: Database,
        rds_tables: list[str],
        store: ImportanceStore,
        index: BaseInvertedIndex | None = None,
    ) -> None:
        if not rds_tables:
            raise SearchError("at least one R_DS table is required")
        self.db = db
        self.rds_tables = list(rds_tables)
        self.store = store
        # A prebuilt index (e.g. the memory-mapped ArrayInvertedIndex of an
        # attached snapshot) skips the tokenizing build scan entirely.
        self.index = index if index is not None else InvertedIndex(db, rds_tables)
        # schema-name token → R_DS tables it references (empty set for
        # schema elements outside any R_DS relation: still recognised as a
        # reference, just nothing to boost).  Names are whole tokens only —
        # "author_id" can never equal an alphanumeric query token, so
        # compound column names don't leak surprise references.
        self._schema_names: dict[str, frozenset[str]] = {}
        rds = set(self.rds_tables)
        for table in db.tables():
            schema = table.schema
            owner = frozenset({schema.name} & rds)
            names = [schema.name] + [c.name for c in schema.columns]
            for name in names:
                name = name.lower()
                prev = self._schema_names.get(name, frozenset())
                self._schema_names[name] = prev | owner

    def schema_reference(self, keyword: str) -> "frozenset[str] | None":
        """The R_DS tables *keyword* references, or ``None`` when it is a
        plain value keyword.

        A keyword is a schema reference iff **all** its tokens resolve to
        table or attribute names; resolution tolerates a plural "s"
        ("papers" references the ``paper`` table).
        """
        tokens = tokenize(keyword)
        if not tokens:
            return None
        referenced: set[str] = set()
        for token in tokens:
            hit = self._schema_names.get(token)
            if hit is None and token.endswith("s"):
                hit = self._schema_names.get(token[:-1])
            if hit is None:
                return None
            referenced |= hit
        return frozenset(referenced)

    def search(self, keywords: list[str] | str) -> list[DataSubjectMatch]:
        """Resolve keywords to ranked t_DS matches (conjunctive semantics).

        Schema-reference keywords are split off first: the remaining value
        keywords resolve through the inverted index, and referenced R_DS
        tables rank ahead of the rest (importance order within each band).
        """
        if isinstance(keywords, str):
            keywords = [keywords]
        cleaned = [k for k in keywords if k.strip()]
        if not cleaned:
            raise SearchError("empty keyword query")
        boosted: set[str] = set()
        values: list[str] = []
        for keyword in cleaned:
            referenced = self.schema_reference(keyword)
            if referenced is None:
                values.append(keyword)
            else:
                boosted |= referenced
        if not values and not boosted:
            # schema references only, none naming an R_DS relation
            # ("writes cites"): nothing to list, fall back to plain
            # value semantics rather than silently returning nothing
            values = cleaned
        if values:
            postings = self.index.conjunctive(values)
            matches = [
                DataSubjectMatch(
                    table=p.table,
                    row_id=p.row_id,
                    importance=self.store.importance(p.table, p.row_id),
                )
                for p in postings
            ]
        else:
            # every keyword referenced the schema: list the referenced
            # relations' top subjects by importance
            matches = [
                DataSubjectMatch(
                    table=table_name,
                    row_id=row_id,
                    importance=self.store.importance(table_name, row_id),
                )
                for table_name in sorted(boosted)
                for row_id, _row in self.db.table(table_name).scan()
            ]
        if boosted:
            matches.sort(
                key=lambda m: (
                    m.table not in boosted,
                    -m.importance,
                    m.table,
                    m.row_id,
                )
            )
        else:
            matches.sort(key=lambda m: (-m.importance, m.table, m.row_id))
        return matches
