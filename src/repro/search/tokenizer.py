"""Tokenisation for the keyword inverted index."""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lower-case alphanumeric tokens of *text*, in order of appearance.

    Keyword search in the paper matches keywords "as part of an attribute's
    value"; case-insensitive whole-token matching is the standard
    interpretation and what DBLP author-name queries need.
    """
    return _TOKEN_RE.findall(text.lower())
