"""Keyword-search front end.

A size-l OS keyword query is "(1) a set of keywords and (2) a value for l"
(Section 3).  This package resolves the keywords to the matching Data
Subject tuples: an inverted index over the text-searchable attributes of
the R_DS relations maps each token to the tuples containing it, and a
conjunctive (AND) match over all keywords yields the t_DS set — one OS per
match, exactly the paper's Examples 3-5 behaviour for Q1 "Faloutsos".
"""

from repro.search.tokenizer import tokenize
from repro.search.inverted_index import InvertedIndex, Posting
from repro.search.keyword import KeywordSearcher

__all__ = ["tokenize", "InvertedIndex", "Posting", "KeywordSearcher"]
