"""Inverted index over text-searchable columns of selected tables.

Two interchangeable implementations share the conjunctive front end:

* :class:`InvertedIndex` — the in-memory build path: one tokenizing scan
  over the configured tables' searchable columns into a postings dict;
* :class:`ArrayInvertedIndex` — the snapshot read path: sorted token and
  CSR posting arrays (typically ``numpy`` memory maps written by
  :mod:`repro.persist`), looked up by binary search with zero build cost.

``InvertedIndex.to_arrays`` converts the former into the latter's layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.database import Database
from repro.search.tokenizer import tokenize


@dataclass(frozen=True)
class Posting:
    """One indexed occurrence: token → (table, row)."""

    table: str
    row_id: int


class BaseInvertedIndex:
    """The conjunctive AND semantics, over any :meth:`lookup` implementation."""

    def lookup(self, token: str) -> set[Posting]:  # pragma: no cover - abstract
        raise NotImplementedError

    def conjunctive(self, keywords: list[str]) -> set[Posting]:
        """Tuples containing *all* keywords (each keyword may be multi-token).

        A multi-token keyword (e.g. ``"Christos Faloutsos"``) matches a tuple
        containing every one of its tokens.  The result is the intersection
        over keywords — the AND semantics of keyword queries in the paper.
        """
        result: set[Posting] | None = None
        for keyword in keywords:
            tokens = tokenize(keyword)
            if not tokens:
                continue
            keyword_match: set[Posting] | None = None
            for token in tokens:
                postings = self.lookup(token)
                keyword_match = (
                    postings if keyword_match is None else keyword_match & postings
                )
            if keyword_match is None:
                keyword_match = set()
            result = keyword_match if result is None else result & keyword_match
        return result if result is not None else set()


class InvertedIndex(BaseInvertedIndex):
    """token → set of (table, row_id) over configured tables' searchable columns.

    Only columns flagged ``text_searchable`` in the schema are indexed (e.g.
    author names and paper titles in DBLP; customer/supplier names in
    TPC-H), mirroring how R-KwS systems index text attributes.
    """

    def __init__(self, db: Database, tables: list[str]) -> None:
        self.db = db
        self.tables = list(tables)
        self._postings: dict[str, set[Posting]] = {}
        for table_name in self.tables:
            table = db.table(table_name)
            searchable = table.schema.searchable_columns()
            if not searchable:
                continue
            col_idxs = [table.schema.column_index(c.name) for c in searchable]
            for row_id, row in table.scan():
                for idx in col_idxs:
                    value = row[idx]
                    if not value:
                        continue
                    for token in tokenize(str(value)):
                        self._postings.setdefault(token, set()).add(
                            Posting(table_name, row_id)
                        )

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def lookup(self, token: str) -> set[Posting]:
        """Postings for one token (empty set when absent)."""
        return set(self._postings.get(token.lower(), set()))

    def token_frequencies(self) -> list[tuple[str, int]]:
        """``(token, posting count)`` pairs, most frequent first.

        Ties break by token, so the order is deterministic; the offline
        precompute pipeline uses this to pick the subjects the most popular
        keywords resolve to.
        """
        return sorted(
            ((token, len(postings)) for token, postings in self._postings.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )

    def to_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[str]]:
        """The postings as sorted-token CSR arrays (the snapshot layout).

        Returns ``(tokens, indptr, table_ids, row_ids, table_names)``:
        *tokens* is a sorted fixed-width unicode array, token ``i``'s
        postings are ``indptr[i]:indptr[i + 1]`` of the parallel
        ``table_ids`` (indices into *table_names*) and ``row_ids`` arrays,
        sorted by (table, row) within each token.
        """
        tokens = sorted(self._postings)
        table_names = list(self.tables)
        table_index = {name: i for i, name in enumerate(table_names)}
        indptr = np.zeros(len(tokens) + 1, dtype=np.int64)
        table_ids: list[int] = []
        row_ids: list[int] = []
        for i, token in enumerate(tokens):
            postings = sorted(
                self._postings[token], key=lambda p: (table_index[p.table], p.row_id)
            )
            indptr[i + 1] = indptr[i] + len(postings)
            table_ids.extend(table_index[p.table] for p in postings)
            row_ids.extend(p.row_id for p in postings)
        return (
            np.array(tokens, dtype=np.str_),
            indptr,
            np.array(table_ids, dtype=np.int32),
            np.array(row_ids, dtype=np.int32),
            table_names,
        )


class ArrayInvertedIndex(BaseInvertedIndex):
    """A read-only inverted index over pre-built (possibly memory-mapped) arrays.

    Construction cost is O(1): no scan, no tokenizing — token lookup is a
    binary search over the sorted *tokens* array and a CSR slice of the
    postings.  This is how an attached snapshot serves keyword search
    without rebuilding the index (the cold-start win the persistence tier
    exists for).
    """

    def __init__(
        self,
        db: Database,
        tokens: np.ndarray,
        indptr: np.ndarray,
        table_ids: np.ndarray,
        row_ids: np.ndarray,
        table_names: list[str],
    ) -> None:
        if len(indptr) != len(tokens) + 1:
            raise ValueError("indptr must have len(tokens) + 1 entries")
        if len(table_ids) != len(row_ids):
            raise ValueError("table_ids and row_ids must be parallel arrays")
        self.db = db
        self.tables = list(table_names)
        self._tokens = tokens
        self._indptr = indptr
        self._table_ids = table_ids
        self._row_ids = row_ids

    @property
    def vocabulary_size(self) -> int:
        return len(self._tokens)

    def lookup(self, token: str) -> set[Posting]:
        """Postings for one token (empty set when absent)."""
        token = token.lower()
        pos = int(np.searchsorted(self._tokens, token))
        if pos >= len(self._tokens) or str(self._tokens[pos]) != token:
            return set()
        lo, hi = int(self._indptr[pos]), int(self._indptr[pos + 1])
        return {
            Posting(self.tables[int(tid)], int(row))
            for tid, row in zip(self._table_ids[lo:hi], self._row_ids[lo:hi])
        }
