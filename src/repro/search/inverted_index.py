"""Inverted index over text-searchable columns of selected tables."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.search.tokenizer import tokenize


@dataclass(frozen=True)
class Posting:
    """One indexed occurrence: token → (table, row)."""

    table: str
    row_id: int


class InvertedIndex:
    """token → set of (table, row_id) over configured tables' searchable columns.

    Only columns flagged ``text_searchable`` in the schema are indexed (e.g.
    author names and paper titles in DBLP; customer/supplier names in
    TPC-H), mirroring how R-KwS systems index text attributes.
    """

    def __init__(self, db: Database, tables: list[str]) -> None:
        self.db = db
        self.tables = list(tables)
        self._postings: dict[str, set[Posting]] = {}
        for table_name in self.tables:
            table = db.table(table_name)
            searchable = table.schema.searchable_columns()
            if not searchable:
                continue
            col_idxs = [table.schema.column_index(c.name) for c in searchable]
            for row_id, row in table.scan():
                for idx in col_idxs:
                    value = row[idx]
                    if not value:
                        continue
                    for token in tokenize(str(value)):
                        self._postings.setdefault(token, set()).add(
                            Posting(table_name, row_id)
                        )

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def lookup(self, token: str) -> set[Posting]:
        """Postings for one token (empty set when absent)."""
        return set(self._postings.get(token.lower(), set()))

    def conjunctive(self, keywords: list[str]) -> set[Posting]:
        """Tuples containing *all* keywords (each keyword may be multi-token).

        A multi-token keyword (e.g. ``"Christos Faloutsos"``) matches a tuple
        containing every one of its tokens.  The result is the intersection
        over keywords — the AND semantics of keyword queries in the paper.
        """
        result: set[Posting] | None = None
        for keyword in keywords:
            tokens = tokenize(keyword)
            if not tokens:
                continue
            keyword_match: set[Posting] | None = None
            for token in tokens:
                postings = self.lookup(token)
                keyword_match = (
                    postings if keyword_match is None else keyword_match & postings
                )
            if keyword_match is None:
                keyword_match = set()
            result = keyword_match if result is None else result & keyword_match
        return result if result is not None else set()
