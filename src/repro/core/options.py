"""Typed query options: the public API's single validation path.

Every entry point (``SizeLEngine.size_l``, ``keyword_query``,
``Session``, the CLI) funnels its knobs into a :class:`QueryOptions` and
calls :meth:`QueryOptions.normalized` exactly once, so "unknown
algorithm", "unknown source", "unknown backend", and ``l >= 1`` checks
happen in one place — *before* any expensive OS generation.

``algorithm`` and ``backend`` accept either the built-in enums
(:class:`Algorithm`, :class:`Backend`) or the string name of anything
registered via :mod:`repro.core.registry`, so third-party plugins are
first-class citizens of the typed API.

:class:`ResultStats` replaces the engine's loose ``stats`` dict with a
typed record while keeping the old mapping interface
(``stats["initial_os_size"]``, ``.items()``) read/write-compatible.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.os_tree import validate_l
from repro.core.registry import ALGORITHM_REGISTRY, BACKEND_REGISTRY
from repro.errors import SummaryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.prelim import PrelimStats


class Algorithm(str, Enum):
    """Built-in size-l algorithms (Section 5); plugins go by registry name."""

    DP = "dp"
    BOTTOM_UP = "bottom_up"
    TOP_PATH = "top_path"
    TOP_PATH_OPTIMIZED = "top_path_optimized"


class Source(str, Enum):
    """The initial OS the algorithm operates on (Section 6's axis)."""

    COMPLETE = "complete"  # Algorithm 5
    PRELIM = "prelim"  # Algorithm 4


class Backend(str, Enum):
    """Built-in OS-generation backends; plugins go by registry name."""

    DATAGRAPH = "datagraph"  # fast, in-memory
    DATABASE = "database"  # I/O counted


def _normalize_algorithm(value: object) -> Algorithm | str:
    if isinstance(value, Algorithm):
        ALGORITHM_REGISTRY.get(value.value)  # built-ins can be unregistered
        return value
    if isinstance(value, str):
        ALGORITHM_REGISTRY.get(value)  # raises "unknown algorithm ..."
        try:
            return Algorithm(value)
        except ValueError:
            return value  # a registered plugin keeps its string name
    raise SummaryError(
        f"algorithm must be an Algorithm or a registered name, got {value!r}"
    )


def _normalize_source(value: object) -> Source:
    if isinstance(value, Source):
        return value
    if isinstance(value, str):
        try:
            return Source(value)
        except ValueError:
            pass
    raise SummaryError(f"unknown source {value!r}; use 'complete' or 'prelim'")


def _normalize_backend(value: object) -> Backend | str:
    if isinstance(value, Backend):
        BACKEND_REGISTRY.get(value.value)
        return value
    if isinstance(value, str):
        BACKEND_REGISTRY.get(value)  # raises "unknown backend ..."
        try:
            return Backend(value)
        except ValueError:
            return value
    raise SummaryError(
        f"backend must be a Backend or a registered name, got {value!r}"
    )


@dataclass(frozen=True)
class ParallelConfig:
    """How a :class:`~repro.session.Session` fans a query out over threads.

    ``workers`` is the thread-pool size for per-subject size-l pipelines
    (``1`` means serial, no pool).  ``ordered=True`` preserves the match
    ranking (global t_DS importance) in the output stream; ``ordered=False``
    yields each result the moment its OS is ready, which minimises
    time-to-first-result under mixed subject sizes.

    Execution knobs only: two queries differing solely in their
    ``ParallelConfig`` are the *same* query, so this is deliberately not
    part of :meth:`QueryOptions.cache_key`.
    """

    workers: int = 1
    ordered: bool = True

    def normalized(self) -> "ParallelConfig":
        """Validate both knobs; idempotent."""
        if (
            not isinstance(self.workers, int)
            or isinstance(self.workers, bool)
            or self.workers < 1
        ):
            raise SummaryError(
                f"workers must be a positive integer, got {self.workers!r}"
            )
        if not isinstance(self.ordered, bool):
            raise SummaryError(f"ordered must be a bool, got {self.ordered!r}")
        return self

    def replace(self, **changes: Any) -> "ParallelConfig":
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        """The wire-level shape (see :mod:`repro.service.protocol`)."""
        return {"workers": self.workers, "ordered": self.ordered}


@dataclass(frozen=True)
class QueryOptions:
    """All knobs of a size-l query, validated in one place.

    The defaults follow the paper's end-to-end paradigm (Update Top-Path-l
    over a prelim-l OS from the data-graph backend); ``SizeLEngine.size_l``
    defaults to the complete source for backward compatibility.
    """

    l: int = 10  # noqa: E741 - paper notation
    algorithm: Algorithm | str = Algorithm.TOP_PATH
    source: Source | str = Source.PRELIM
    backend: Backend | str = Backend.DATAGRAPH
    max_results: int | None = None
    depth_limit: int | None = None
    #: Route complete-OS generation on the data-graph backend through the
    #: columnar FlatOS hot path (identical results; much faster).  ``False``
    #: forces the legacy per-node OSNode path — kept selectable for A/B
    #: comparison and for plugin algorithms that require ObjectSummary.
    flat: bool = True
    #: Allow serving this query's complete-OS generation from an attached
    #: snapshot (the :class:`~repro.core.cache.SummaryCache` disk tier).
    #: ``False`` forces a cache **miss** to regenerate from the live
    #: backend instead of loading the snapshot tree (a tree already in
    #: the memory cache is still served).  Snapshot-loaded trees are
    #: validated node-for-node identical to fresh ones, so — like
    #: ``parallel`` — this is an execution knob and deliberately not part
    #: of :meth:`cache_key`.
    snapshot: bool = True
    #: How a Session fans the per-subject work of this query out over
    #: threads; ``None`` inherits the Session's default.  Not part of the
    #: cache key (an execution knob, not a query knob).
    parallel: ParallelConfig | None = None

    def normalized(self) -> "QueryOptions":
        """Validate every field and coerce strings to enums where built-in.

        Raises :class:`~repro.errors.SummaryError` (or its
        :class:`~repro.errors.InvalidSizeError` subclass for bad ``l``)
        with the library's uniform messages.  Idempotent.
        """
        validate_l(self.l)
        algorithm = _normalize_algorithm(self.algorithm)
        source = _normalize_source(self.source)
        backend = _normalize_backend(self.backend)
        if self.max_results is not None and (
            not isinstance(self.max_results, int)
            or isinstance(self.max_results, bool)
            or self.max_results < 1
        ):
            raise SummaryError(
                f"max_results must be a positive integer or None, "
                f"got {self.max_results!r}"
            )
        if self.depth_limit is not None and (
            not isinstance(self.depth_limit, int)
            or isinstance(self.depth_limit, bool)
            or self.depth_limit < 0
        ):
            raise SummaryError(
                f"depth_limit must be a non-negative integer or None, "
                f"got {self.depth_limit!r}"
            )
        if not isinstance(self.flat, bool):
            raise SummaryError(f"flat must be a bool, got {self.flat!r}")
        if not isinstance(self.snapshot, bool):
            raise SummaryError(f"snapshot must be a bool, got {self.snapshot!r}")
        if self.parallel is not None:
            if not isinstance(self.parallel, ParallelConfig):
                raise SummaryError(
                    f"parallel must be a ParallelConfig or None, "
                    f"got {self.parallel!r}"
                )
            self.parallel.normalized()
        flat = self.flat
        if flat:
            # Canonicalize: the flat path only exists for the complete
            # source on the data-graph backend with a flat-capable
            # algorithm.  Normalizing it to False everywhere else keeps
            # "flat" meaning "this query WILL run columnar" and gives
            # equivalent option sets identical cache keys.
            algo_name = (
                algorithm.value if isinstance(algorithm, Algorithm) else algorithm
            )
            algo_fn = ALGORITHM_REGISTRY.get(algo_name)
            if (
                source is not Source.COMPLETE
                or backend is not Backend.DATAGRAPH
                or not getattr(algo_fn, "supports_flat", False)
            ):
                flat = False
        return dataclasses.replace(
            self, algorithm=algorithm, source=source, backend=backend, flat=flat
        )

    def replace(self, **changes: Any) -> "QueryOptions":
        """A copy with *changes* applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    # canonical string names, regardless of enum vs plugin string
    @property
    def algorithm_name(self) -> str:
        value = self.algorithm
        return value.value if isinstance(value, Algorithm) else str(value)

    @property
    def source_name(self) -> str:
        value = self.source
        return value.value if isinstance(value, Source) else str(value)

    @property
    def backend_name(self) -> str:
        value = self.backend
        return value.value if isinstance(value, Backend) else str(value)

    def as_dict(self) -> dict[str, Any]:
        """The wire-level shape: plain JSON types, canonical string names.

        The service codec (:mod:`repro.service.protocol`) round-trips this
        through :func:`~repro.service.protocol.decode_options`; enums
        flatten to their registry names, ``parallel`` to its own dict.
        """
        return {
            "l": self.l,
            "algorithm": self.algorithm_name,
            "source": self.source_name,
            "backend": self.backend_name,
            "max_results": self.max_results,
            "depth_limit": self.depth_limit,
            "flat": self.flat,
            "snapshot": self.snapshot,
            "parallel": None if self.parallel is None else self.parallel.as_dict(),
        }

    def cache_key(self) -> tuple[int, str, str, str, int | None, bool]:
        """The memoisation key of a size-l result under these options."""
        return (
            self.l,
            self.algorithm_name,
            self.source_name,
            self.backend_name,
            self.depth_limit,
            self.flat,
        )


def resolve_options(
    options: QueryOptions | None,
    *,
    defaults: QueryOptions,
    l: int | None = None,  # noqa: E741 - paper notation
    algorithm: object = None,
    source: object = None,
    backend: object = None,
    max_results: int | None = None,
    stacklevel: int = 3,
) -> QueryOptions:
    """Merge the typed ``options`` path with the legacy kwarg shim.

    ``l`` and ``max_results`` are per-call ergonomics and may accompany an
    ``options`` object; the old ``algorithm``/``source``/``backend`` kwargs
    may not (ambiguous).  Passing those legacy kwargs as plain strings
    emits a :class:`DeprecationWarning` — enum values stay silent.
    ``stacklevel`` points the warning at the user's call site (callers
    with an extra frame between them and the user pass a higher value).
    Returns a normalized :class:`QueryOptions`.
    """
    if options is not None and not isinstance(options, QueryOptions):
        # pre-QueryOptions signatures took algorithm as this positional:
        # size_l(table, row, l, "dp") / keyword_query(kw, l, "dp")
        if isinstance(options, (str, Algorithm)) and algorithm is None:
            algorithm, options = options, None
        else:
            raise SummaryError(
                f"options must be a QueryOptions, got {options!r}"
            )
    legacy = {
        key: value
        for key, value in (
            ("algorithm", algorithm),
            ("source", source),
            ("backend", backend),
        )
        if value is not None
    }
    if options is not None:
        if legacy:
            raise SummaryError(
                "pass either options=QueryOptions(...) or the legacy "
                f"{sorted(legacy)} kwargs, not both"
            )
        merged = options
    else:
        # Algorithm/Source/Backend subclass str, so exclude enums explicitly
        if any(
            isinstance(value, str) and not isinstance(value, Enum)
            for value in legacy.values()
        ):
            warnings.warn(
                "string algorithm=/source=/backend= kwargs are deprecated; "
                "pass options=QueryOptions(algorithm=Algorithm..., "
                "source=Source..., backend=Backend...) instead",
                DeprecationWarning,
                stacklevel=stacklevel,
            )
        merged = defaults.replace(**legacy) if legacy else defaults
    changes: dict[str, Any] = {}
    if l is not None:
        changes["l"] = l
    if max_results is not None:
        changes["max_results"] = max_results
    if changes:
        merged = merged.replace(**changes)
    return merged.normalized()


@dataclass
class ResultStats:
    """Typed pipeline statistics the engine attaches to a ``SizeLResult``.

    Replaces the loose ``stats`` dict.  Algorithm-specific counters (heap
    operations, DP cell updates, ...) live in :attr:`counters`; the mapping
    dunders keep old call sites (``stats["initial_os_size"]``,
    ``stats["heap_dequeues"]``, ``.items()``) working unchanged.
    """

    source: str = ""
    backend: str = ""
    initial_os_size: int = 0
    generation_seconds: float = 0.0
    algorithm_seconds: float = 0.0
    cached: bool = False
    prelim: "PrelimStats | None" = None
    counters: dict[str, Any] = field(default_factory=dict)

    _TYPED = (
        "source",
        "backend",
        "initial_os_size",
        "generation_seconds",
        "algorithm_seconds",
        "cached",
    )

    @classmethod
    def from_counters(cls, counters: Any, **fields: Any) -> "ResultStats":
        """Wrap an algorithm's raw counter dict with the typed fields."""
        return cls(counters=dict(counters), **fields)

    # ------------------------------------------------------------------ #
    # Mapping compatibility with the legacy stats dict
    # ------------------------------------------------------------------ #
    def keys(self) -> list[str]:
        keys = list(self._TYPED)
        if self.prelim is not None:
            keys.append("prelim")
        keys.extend(self.counters)
        return keys

    def __getitem__(self, key: str) -> Any:
        if key in self._TYPED:
            return getattr(self, key)
        if key == "prelim":
            if self.prelim is None:
                raise KeyError("prelim")
            return self.prelim
        return self.counters[key]

    def __setitem__(self, key: str, value: Any) -> None:
        if key in self._TYPED or key == "prelim":
            setattr(self, key, value)
        else:
            self.counters[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def update(self, other: Any) -> None:
        for key, value in dict(other).items():
            self[key] = value

    def items(self) -> Iterator[tuple[str, Any]]:
        return ((key, self[key]) for key in self.keys())

    def __contains__(self, key: object) -> bool:
        return key in self.keys()

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self.keys())
