"""Ranking of OS result sets (Section 7 future work, implemented).

The paper's conclusion names "the combined size-l and top-k ranking of OSs"
as future work.  Two rankers are provided:

* :func:`rank_data_subjects` — order matching Data Subjects by global
  importance Im(t_DS) (the baseline ordering the OS paradigm uses);
* :func:`rank_by_summary_importance` — the combined ranking: compute each
  DS's size-l OS and order by its importance Im(S), so a DS whose *summary*
  is rich (important neighbourhood) can outrank a DS whose root tuple alone
  is important.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.os_tree import SizeLResult
from repro.search.keyword import DataSubjectMatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import SizeLEngine


def rank_data_subjects(
    matches: list[DataSubjectMatch], k: int | None = None
) -> list[DataSubjectMatch]:
    """Order DS matches by global importance (descending); keep top-k."""
    ordered = sorted(matches, key=lambda m: (-m.importance, m.table, m.row_id))
    return ordered if k is None else ordered[:k]


def rank_by_summary_importance(
    engine: "SizeLEngine",
    matches: list[DataSubjectMatch],
    l: int,  # noqa: E741
    k: int | None = None,
    algorithm: str = "top_path",
    source: str = "prelim",
) -> list[tuple[DataSubjectMatch, SizeLResult]]:
    """Combined size-l + top-k ranking: order DSs by their size-l OS's Im(S).

    Computes a size-l OS per match and sorts by summary importance.  With
    ``k`` set, only the k best pairs are returned (all summaries are still
    computed; a thresholded early-termination scheme is a further
    optimisation the paper leaves open).
    """
    from repro.core.options import QueryOptions

    options = QueryOptions(l=l, algorithm=algorithm, source=source).normalized()
    scored: list[tuple[DataSubjectMatch, SizeLResult]] = []
    for match in matches:
        result = engine.run(match.table, match.row_id, options)
        scored.append((match, result))
    scored.sort(key=lambda pair: (-pair[1].importance, pair[0].table, pair[0].row_id))
    return scored if k is None else scored[:k]
