"""Literal exponential optimum — the test oracle for Lemma 1.

Enumerates *every* candidate size-l OS (Definition 1: connected subsets of l
nodes containing the root) exactly as the paper's brute-force strawman
describes, and returns the best.  Usable only on small OSs; the test suite
runs it against the DP on hypothesis-generated random trees.
"""

from __future__ import annotations

from repro.core.os_tree import ObjectSummary, OSNode, SizeLResult, validate_l


def _enumerate_rooted(node: OSNode, budget: int, eligible: set[int]) -> list[set[int]]:
    """All connected subtrees rooted at *node* with exactly *budget* nodes."""
    if budget <= 0:
        return []
    if budget == 1:
        return [{node.uid}]
    children = [c for c in node.children if c.uid in eligible]
    results: list[set[int]] = []

    def distribute(idx: int, remaining: int, chosen: set[int]) -> None:
        if remaining == 0:
            results.append({node.uid} | chosen)
            return
        if idx >= len(children):
            return
        # Option: skip this child entirely.
        distribute(idx + 1, remaining, chosen)
        # Option: allocate t nodes to this child's subtree.
        for t in range(1, remaining + 1):
            for sub in _enumerate_rooted(children[idx], t, eligible):
                distribute(idx + 1, remaining - t, chosen | sub)

    distribute(0, budget - 1, set())
    return results


def brute_force_size_l(os_tree: ObjectSummary, l: int) -> SizeLResult:  # noqa: E741
    """Exhaustively find an optimal size-l OS (exponential; tests only)."""
    validate_l(l)
    eligible = {node.uid for node in os_tree.nodes if node.depth < l}
    target = min(l, len(eligible))
    candidates = _enumerate_rooted(os_tree.root, target, eligible)
    best_set: set[int] | None = None
    best_weight = float("-inf")
    for candidate in candidates:
        weight = sum(os_tree.node(uid).weight for uid in candidate)
        if weight > best_weight:
            best_weight = weight
            best_set = candidate
    assert best_set is not None, "a connected tree always has a BFS-prefix candidate"
    summary = os_tree.materialise_subset(best_set)
    return SizeLResult(
        summary=summary,
        selected_uids=best_set,
        importance=summary.total_importance(),
        algorithm="brute_force",
        l=l,
        stats={"candidates": len(candidates)},
    )
