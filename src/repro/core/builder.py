"""EngineBuilder — the single construction path for engines and sessions.

The CLI, the benchmark fixtures, and every example used to copy-paste
``SizeLEngine(db, {root: gds, ...}, store)`` wiring; they now all build
through here.  Three entry points:

* :meth:`EngineBuilder.from_dataset` — any dataset object exposing
  ``db`` / ``default_gds()`` / ``default_store()`` (the synthetic DBLP and
  TPC-H datasets do);
* :meth:`EngineBuilder.named` — the CLI's on-the-fly ``"dblp"`` /
  ``"tpch"`` databases, deterministic under ``seed`` and sized by
  ``scale``;
* the fluent ``with_*`` methods — custom databases (see
  ``examples/custom_database.py``).
"""

from __future__ import annotations

from typing import Any

from repro.core.engine import SizeLEngine
from repro.core.options import ParallelConfig, QueryOptions
from repro.datagraph.graph import DataGraph
from repro.db.database import Database
from repro.errors import SummaryError
from repro.ranking.store import ImportanceStore
from repro.schema_graph.gds import GDS

#: Datasets :meth:`EngineBuilder.named` can synthesise on the fly.
NAMED_DATASETS = ("dblp", "tpch")


def build_named_dataset(name: str, *, seed: int = 7, scale: float = 1.0) -> Any:
    """Synthesise one of the demo databases (deterministic under seed)."""
    if name == "dblp":
        from repro.datasets.dblp import DBLPConfig, generate_dblp

        return generate_dblp(
            DBLPConfig(
                n_authors=max(30, int(300 * scale)),
                n_papers=max(60, int(800 * scale)),
                seed=seed,
            )
        )
    if name == "tpch":
        from repro.datasets.tpch import TPCHConfig, generate_tpch

        return generate_tpch(TPCHConfig(scale_factor=0.003 * scale, seed=seed))
    raise SummaryError(
        f"unknown dataset {name!r}; choose from {list(NAMED_DATASETS)}"
    )


class EngineBuilder:
    """Fluent builder for :class:`~repro.core.engine.SizeLEngine` and
    :class:`~repro.session.Session`."""

    def __init__(self) -> None:
        self._db: Database | None = None
        self._gds: dict[str, GDS] = {}
        self._store: ImportanceStore | None = None
        self._theta: float = 0.7
        self._data_graph: DataGraph | None = None

    # ------------------------------------------------------------------ #
    # Fluent configuration
    # ------------------------------------------------------------------ #
    def with_database(self, db: Database) -> "EngineBuilder":
        self._db = db
        return self

    def with_gds(self, root: str, gds: GDS) -> "EngineBuilder":
        """Register the (unpruned) G_DS of one R_DS table."""
        self._gds[root] = gds
        return self

    def with_store(self, store: ImportanceStore) -> "EngineBuilder":
        self._store = store
        return self

    def with_theta(self, theta: float) -> "EngineBuilder":
        self._theta = theta
        return self

    def with_data_graph(self, data_graph: DataGraph) -> "EngineBuilder":
        self._data_graph = data_graph
        return self

    # ------------------------------------------------------------------ #
    # Prefab configurations
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dataset(
        cls,
        dataset: Any,
        *,
        store: ImportanceStore | None = None,
        theta: float = 0.7,
    ) -> "EngineBuilder":
        """Configure from a dataset's presets; ``store=None`` computes the
        dataset's default ranking (ObjectRank for DBLP, ValueRank for
        TPC-H)."""
        builder = cls().with_database(dataset.db).with_theta(theta)
        for root, gds in dataset.default_gds().items():
            builder.with_gds(root, gds)
        return builder.with_store(
            store if store is not None else dataset.default_store()
        )

    @classmethod
    def named(
        cls,
        name: str,
        *,
        seed: int = 7,
        scale: float = 1.0,
        store: ImportanceStore | None = None,
        theta: float = 0.7,
    ) -> "EngineBuilder":
        """Configure from one of the on-the-fly demo databases."""
        dataset = build_named_dataset(name, seed=seed, scale=scale)
        return cls.from_dataset(dataset, store=store, theta=theta)

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #
    def build(self) -> SizeLEngine:
        if self._db is None:
            raise SummaryError("EngineBuilder: no database configured")
        if not self._gds:
            raise SummaryError(
                "EngineBuilder: no G_DS registered; add at least one via "
                "with_gds(root, gds)"
            )
        if self._store is None:
            raise SummaryError("EngineBuilder: no importance store configured")
        return SizeLEngine(
            self._db,
            dict(self._gds),
            self._store,
            theta=self._theta,
            data_graph=self._data_graph,
        )

    def build_session(
        self,
        *,
        cache_size: int = 64,
        defaults: QueryOptions | None = None,
        parallel: ParallelConfig | None = None,
    ) -> "Any":
        """Build the engine wrapped in a :class:`~repro.session.Session`."""
        from repro.session import Session

        return Session(
            self.build(),
            cache_size=cache_size,
            defaults=defaults,
            parallel=parallel,
        )
