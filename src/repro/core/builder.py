"""EngineBuilder — the single construction path for engines and sessions.

The CLI, the benchmark fixtures, and every example used to copy-paste
``SizeLEngine(db, {root: gds, ...}, store)`` wiring; they now all build
through here.  Three entry points:

* :meth:`EngineBuilder.from_dataset` — any dataset object exposing
  ``db`` / ``default_gds()`` / ``default_store()`` (the synthetic DBLP and
  TPC-H datasets do);
* :meth:`EngineBuilder.named` — the CLI's on-the-fly ``"dblp"`` /
  ``"tpch"`` databases, deterministic under ``seed`` and sized by
  ``scale``;
* the fluent ``with_*`` methods — custom databases (see
  ``examples/custom_database.py``).

:meth:`EngineBuilder.with_snapshot` attaches a precomputed
:mod:`repro.persist` snapshot: the engine is built with the snapshot's
memory-mapped data graph, inverted index, and (unless the builder was
given one explicitly) importance store, and a Session built through
:meth:`build_session` serves precomputed complete OSs from the
snapshot's tree arena.  The dataset's default store is resolved
**lazily** for exactly this reason — a warm start must not pay the
ranking power iteration it is about to load from disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.core.engine import SizeLEngine
from repro.core.options import ParallelConfig, QueryOptions
from repro.datagraph.graph import DataGraph
from repro.db.database import Database
from repro.errors import SummaryError
from repro.ranking.store import ImportanceStore
from repro.schema_graph.gds import GDS

if TYPE_CHECKING:  # pragma: no cover
    from repro.persist.snapshot import Snapshot

#: Datasets :meth:`EngineBuilder.named` can synthesise on the fly.
NAMED_DATASETS = ("dblp", "tpch")


def build_named_dataset(name: str, *, seed: int = 7, scale: float = 1.0) -> Any:
    """Synthesise one of the demo databases (deterministic under seed)."""
    if name == "dblp":
        from repro.datasets.dblp import DBLPConfig, generate_dblp

        return generate_dblp(
            DBLPConfig(
                n_authors=max(30, int(300 * scale)),
                n_papers=max(60, int(800 * scale)),
                seed=seed,
            )
        )
    if name == "tpch":
        from repro.datasets.tpch import TPCHConfig, generate_tpch

        return generate_tpch(TPCHConfig(scale_factor=0.003 * scale, seed=seed))
    raise SummaryError(
        f"unknown dataset {name!r}; choose from {list(NAMED_DATASETS)}"
    )


class EngineBuilder:
    """Fluent builder for :class:`~repro.core.engine.SizeLEngine` and
    :class:`~repro.session.Session`."""

    def __init__(self) -> None:
        self._db: Database | None = None
        self._gds: dict[str, GDS] = {}
        self._store: ImportanceStore | None = None
        #: lazy default-store fallback (see with_snapshot / from_dataset)
        self._store_factory: Callable[[], ImportanceStore] | None = None
        self._theta: float = 0.7
        self._data_graph: DataGraph | None = None
        self._snapshot: "Snapshot | None" = None
        #: session-level presets (see with_defaults / with_parallel /
        #: with_cache_size) so a Deployment entry can be described fully
        #: by one configured builder
        self._defaults: QueryOptions | None = None
        self._parallel: ParallelConfig | None = None
        self._cache_size: int = 64
        #: buffer-pool sizing (see with_buffer_pool); None = fully resident
        self._pool_bytes: int | None = None
        self._pool_page_bytes: int | None = None

    # ------------------------------------------------------------------ #
    # Fluent configuration
    # ------------------------------------------------------------------ #
    def with_database(self, db: Database) -> "EngineBuilder":
        self._db = db
        return self

    def with_gds(self, root: str, gds: GDS) -> "EngineBuilder":
        """Register the (unpruned) G_DS of one R_DS table."""
        self._gds[root] = gds
        return self

    def with_store(self, store: ImportanceStore) -> "EngineBuilder":
        self._store = store
        self._store_factory = None
        return self

    def with_theta(self, theta: float) -> "EngineBuilder":
        self._theta = theta
        return self

    def with_data_graph(self, data_graph: DataGraph) -> "EngineBuilder":
        self._data_graph = data_graph
        return self

    def with_snapshot(
        self, snapshot: "str | Path | Snapshot", *, verify: bool = True
    ) -> "EngineBuilder":
        """Attach a precomputed :mod:`repro.persist` snapshot.

        Accepts a snapshot directory path (opened — and checksum-verified
        unless ``verify=False`` — immediately, so a corrupt snapshot
        fails here, not mid-build) or an already opened
        :class:`~repro.persist.snapshot.Snapshot`.  :meth:`build`
        validates the snapshot's fingerprint against the configured
        database/G_DS/θ and rejects mismatches.
        """
        from repro.persist.snapshot import Snapshot

        if not isinstance(snapshot, Snapshot):
            snapshot = Snapshot.open(snapshot, verify=verify)
        self._snapshot = snapshot
        return self

    def with_defaults(self, defaults: QueryOptions) -> "EngineBuilder":
        """Seed every query of a built Session with these options."""
        self._defaults = defaults.normalized()
        return self

    def with_parallel(self, parallel: ParallelConfig) -> "EngineBuilder":
        """Seed a built Session's fan-out policy."""
        self._parallel = parallel.normalized()
        return self

    def with_cache_size(self, cache_size: int) -> "EngineBuilder":
        """Bound a built Session's SummaryCache (subjects, LRU)."""
        if cache_size < 1:
            raise SummaryError(f"cache_size must be >= 1, got {cache_size}")
        self._cache_size = cache_size
        return self

    def with_buffer_pool(
        self, capacity_bytes: int, *, page_bytes: int | None = None
    ) -> "EngineBuilder":
        """Serve the data graph through a bounded page pool
        (:mod:`repro.storage.bufferpool`) instead of fully resident.

        Most useful with :meth:`with_snapshot`, where the CSR arenas are
        mmap'd files and the pool bounds how much of them RAM ever
        holds; the engine's ``buffer_pool`` exposes hit/miss/eviction
        counters through ``CacheStats`` and ``/v1/metrics``."""
        if capacity_bytes < 1:
            raise SummaryError(
                f"buffer pool capacity must be >= 1 byte, got {capacity_bytes}"
            )
        self._pool_bytes = int(capacity_bytes)
        self._pool_page_bytes = page_bytes
        return self

    # ------------------------------------------------------------------ #
    # Prefab configurations
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dataset(
        cls,
        dataset: Any,
        *,
        store: ImportanceStore | None = None,
        theta: float = 0.7,
    ) -> "EngineBuilder":
        """Configure from a dataset's presets; ``store=None`` defers to the
        dataset's default ranking (ObjectRank for DBLP, ValueRank for
        TPC-H), computed lazily at :meth:`build` time — or loaded from an
        attached snapshot instead, skipping the computation entirely."""
        builder = cls().with_database(dataset.db).with_theta(theta)
        for root, gds in dataset.default_gds().items():
            builder.with_gds(root, gds)
        if store is not None:
            return builder.with_store(store)
        builder._store_factory = dataset.default_store
        return builder

    @classmethod
    def named(
        cls,
        name: str,
        *,
        seed: int = 7,
        scale: float = 1.0,
        store: ImportanceStore | None = None,
        theta: float = 0.7,
    ) -> "EngineBuilder":
        """Configure from one of the on-the-fly demo databases."""
        dataset = build_named_dataset(name, seed=seed, scale=scale)
        return cls.from_dataset(dataset, store=store, theta=theta)

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #
    def _resolve_store(self) -> ImportanceStore:
        """Explicit store > snapshot store > dataset default factory.

        The factory result is memoised into ``_store`` so repeated
        ``build()`` calls on one builder share one store object instead
        of re-running the ranking power iteration per build.
        """
        if self._store is not None:
            return self._store
        if self._snapshot is not None:
            return self._snapshot.store()
        if self._store_factory is not None:
            self._store = self._store_factory()
            return self._store
        raise SummaryError("EngineBuilder: no importance store configured")

    def build(self) -> SizeLEngine:
        if self._db is None:
            raise SummaryError("EngineBuilder: no database configured")
        if not self._gds:
            raise SummaryError(
                "EngineBuilder: no G_DS registered; add at least one via "
                "with_gds(root, gds)"
            )
        if self._snapshot is not None:
            # Fingerprint check FIRST — before the snapshot's store/data
            # graph/index are used to construct anything — so a
            # cross-dataset snapshot fails with the clear mismatch error,
            # not whatever the foreign structures happen to break.  The
            # fingerprint covers the pruned G_DS; pruning here duplicates
            # the engine's own prune, which is O(G_DS nodes) and trivial.
            self._snapshot.validate_dataset(
                self._db,
                {root: gds.prune(self._theta) for root, gds in self._gds.items()},
                self._theta,
            )
        store = self._resolve_store()
        data_graph = self._data_graph
        search_index = None
        if self._snapshot is not None:
            if data_graph is None:
                data_graph = self._snapshot.data_graph()
            search_index = self._snapshot.search_index(self._db)
        engine = SizeLEngine(
            self._db,
            dict(self._gds),
            store,
            theta=self._theta,
            data_graph=data_graph,
            search_index=search_index,
        )
        if self._pool_bytes is not None:
            from repro.storage.bufferpool import (
                DEFAULT_PAGE_BYTES,
                BufferPool,
                paged_data_graph,
            )

            pool = BufferPool(
                self._pool_bytes,
                page_bytes=self._pool_page_bytes or DEFAULT_PAGE_BYTES,
            )
            # engine.data_graph forces the lazy CSR build when neither a
            # snapshot nor with_data_graph supplied one, so the pool works
            # (and is testable) on in-memory graphs too.
            engine._data_graph = paged_data_graph(engine.data_graph, pool)
            engine.buffer_pool = pool
        if self._snapshot is not None:
            # Full validation again post-construction (store digest for
            # engines carrying their own store; dataset re-check is ~0.2ms
            # thanks to the cached table content hashes).
            self._snapshot.validate_engine(engine)
        return engine

    def build_session(
        self,
        *,
        cache_size: int | None = None,
        defaults: QueryOptions | None = None,
        parallel: ParallelConfig | None = None,
    ) -> "Any":
        """Build the engine wrapped in a :class:`~repro.session.Session`.

        Explicit kwargs override the builder's ``with_defaults`` /
        ``with_parallel`` / ``with_cache_size`` presets.  An attached
        snapshot carries through: the Session's cache serves precomputed
        complete OSs from the snapshot's tree arena.  The snapshot is
        validated once in :meth:`build` and once more when the cache
        attaches — deliberate: re-validation costs ~0.2 ms (table content
        hashes are cached) and skipping it would re-open the stale-attach
        hole a memoised validation had."""
        from repro.session import Session

        return Session(
            self.build(),
            cache_size=self._cache_size if cache_size is None else cache_size,
            defaults=defaults if defaults is not None else self._defaults,
            parallel=parallel if parallel is not None else self._parallel,
            snapshot=self._snapshot,
        )
