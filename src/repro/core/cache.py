"""Pre-computation / caching of OSs and size-l results (Section 7).

The paper's conclusion: "the general case ... prevents the incremental
computation of a size-l OS from the optimal size-(l−1) OS, limiting
pre-computation or caching approaches" — but the *family analysis*
(:mod:`repro.core.analysis`) shows consecutive optima overlap heavily, so a
cache that stores complete OSs and memoises per-(subject, l, algorithm)
results still removes almost all repeated work in interactive exploration
(the user sliding an l-slider re-hits the same subject over and over).

:class:`SummaryCache` wraps a :class:`~repro.core.engine.SizeLEngine`:

* complete OSs are cached per (R_DS table, row) — generation dominates the
  end-to-end cost (Figure 10(f)), so this is the big win;
* size-l results are memoised per (subject, l, algorithm);
* the databases in this library are append-only, so entries never go stale
  mid-session; :meth:`invalidate` supports explicit refresh after loads.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.engine import SizeLEngine
from repro.core.os_tree import ObjectSummary, SizeLResult


class SummaryCache:
    """An LRU cache of complete OSs and size-l results over an engine.

    ``max_subjects`` bounds the number of cached complete OSs (they are the
    memory-heavy part); size-l results are small and kept per cached
    subject, evicted together with it.
    """

    def __init__(self, engine: SizeLEngine, max_subjects: int = 64) -> None:
        if max_subjects < 1:
            raise ValueError(f"max_subjects must be >= 1, got {max_subjects}")
        self.engine = engine
        self.max_subjects = max_subjects
        self._trees: OrderedDict[tuple[str, int], ObjectSummary] = OrderedDict()
        self._results: dict[tuple[str, int], dict[tuple[int, str], SizeLResult]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Complete OSs
    # ------------------------------------------------------------------ #
    def complete_os(self, rds_table: str, row_id: int) -> ObjectSummary:
        """The cached complete OS of a subject (generated on first use)."""
        key = (rds_table, row_id)
        if key in self._trees:
            self.hits += 1
            self._trees.move_to_end(key)
            return self._trees[key]
        self.misses += 1
        tree = self.engine.complete_os(rds_table, row_id)
        self._trees[key] = tree
        self._results.setdefault(key, {})
        if len(self._trees) > self.max_subjects:
            evicted, _tree = self._trees.popitem(last=False)
            self._results.pop(evicted, None)
        return tree

    # ------------------------------------------------------------------ #
    # Size-l results
    # ------------------------------------------------------------------ #
    def size_l(
        self,
        rds_table: str,
        row_id: int,
        l: int,  # noqa: E741
        algorithm: str = "top_path",
    ) -> SizeLResult:
        """Memoised size-l computation on the cached complete OS."""
        subject = (rds_table, row_id)
        tree = self.complete_os(rds_table, row_id)
        per_subject = self._results.setdefault(subject, {})
        result_key = (l, algorithm)
        if result_key in per_subject:
            self.hits += 1
            return per_subject[result_key]
        self.misses += 1
        from repro.core.engine import ALGORITHMS
        from repro.errors import SummaryError

        if algorithm not in ALGORITHMS:
            raise SummaryError(
                f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        result = ALGORITHMS[algorithm](tree, l)
        per_subject[result_key] = result
        return result

    # ------------------------------------------------------------------ #
    # Management
    # ------------------------------------------------------------------ #
    def invalidate(self, rds_table: str | None = None, row_id: int | None = None) -> None:
        """Drop cached entries (all, per table, or one subject)."""
        if rds_table is None:
            self._trees.clear()
            self._results.clear()
            return
        keys = [
            key
            for key in self._trees
            if key[0] == rds_table and (row_id is None or key[1] == row_id)
        ]
        for key in keys:
            del self._trees[key]
            self._results.pop(key, None)

    @property
    def cached_subjects(self) -> int:
        return len(self._trees)

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "cached_subjects": self.cached_subjects,
        }
