"""Pre-computation / caching of OSs and size-l results (Section 7).

The paper's conclusion: "the general case ... prevents the incremental
computation of a size-l OS from the optimal size-(l−1) OS, limiting
pre-computation or caching approaches" — but the *family analysis*
(:mod:`repro.core.analysis`) shows consecutive optima overlap heavily, so a
cache that stores complete OSs and memoises per-(subject, options) results
still removes almost all repeated work in interactive exploration
(the user sliding an l-slider re-hits the same subject over and over).

:class:`SummaryCache` is the caching layer a
:class:`~repro.session.Session` owns over its
:class:`~repro.core.engine.SizeLEngine`:

* complete OSs are cached per (R_DS table, row) — generation dominates the
  end-to-end cost (Figure 10(f)), so this is the big win;
* size-l results are memoised per (subject, l, algorithm, source, backend);
* the databases in this library are append-only, so entries never go stale
  mid-session; :meth:`invalidate` supports explicit refresh after loads.

The cache is **thread-safe** and is the concurrency point of the serving
layer (:meth:`~repro.session.Session.iter_keyword_query` with
``workers=N`` fans queries out over it):

* one lock-protected, subject-level LRU book holds a subject's legacy
  tree, columnar tree, and memoised results together, so eviction is
  atomic — a subject's memos can never outlive its trees or vice versa;
* generation is **single-flight**: concurrent requests for the same
  subject (or the same memo key) block on one in-flight computation
  instead of duplicating the dominant cost, which is what keeps a
  thundering herd of identical queries from melting the backend;
* cache hits return a **per-call** result whose stats are a copy with
  ``cached=True`` — the memoised object (and the first caller's
  miss-result) keeps ``cached=False`` forever.

The cache is also where the **disk tier** plugs in
(:meth:`SummaryCache.attach_snapshot`): on a memory miss for a columnar
complete OS, an attached :class:`~repro.persist.snapshot.Snapshot` is
consulted before a generation is paid — a zero-copy ``mmap`` slice load,
counted as ``disk_hits``/``disk_misses``/``snapshot_stale`` in
:meth:`stats`.  ``invalidate`` masks the matching snapshot entries, so a
scoped refresh never resurrects a stale disk tree.

All algorithm dispatch flows through :mod:`repro.core.registry`, and
options are validated *before* any OS generation (a bad algorithm name
never costs a complete-OS traversal).
"""

from __future__ import annotations

import dataclasses
import threading
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.core.engine import SizeLEngine
from repro.core.options import Algorithm, Backend, QueryOptions, ResultStats, Source
from repro.core.os_tree import FlatOS, ObjectSummary, SizeLResult
from repro.core.registry import get_algorithm

if TYPE_CHECKING:  # pragma: no cover
    from repro.persist.snapshot import Snapshot

#: Memo key of a size-l result:
#: (l, algorithm, source, backend, depth_limit, flat).
ResultKey = tuple[int, str, str, str, "int | None", bool]

#: Subject key: (R_DS table, row id).
SubjectKey = tuple[str, int]


@dataclass(frozen=True, eq=False)  # eq: hand-written below (dict-comparable)
class CacheStats:
    """One atomic reading of a :class:`SummaryCache`'s counters.

    Replaces the stringly-typed ``dict[str, int]`` that ``stats()`` used
    to return — ``/v1/stats`` and the serving benchmarks now read typed
    attributes.  The mapping dunders keep old ``stats["disk_hits"]`` call
    sites working (with a :class:`DeprecationWarning`); :meth:`as_dict`
    is the supported conversion for JSON payloads.
    """

    hits: int = 0
    misses: int = 0
    cached_subjects: int = 0
    cached_results: int = 0
    tree_generations: int = 0
    result_computations: int = 0
    single_flight_waits: int = 0
    lock_contention: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    snapshot_stale: int = 0
    #: buffer-pool page counters (repro.storage) — zero when the engine
    #: serves fully resident; merged across shards like every counter
    pool_hits: int = 0
    pool_misses: int = 0
    pool_evictions: int = 0

    @property
    def requests(self) -> int:
        """Every ``run()``/tree request that hit the cache's front door."""
        return self.hits + self.misses + self.single_flight_waits

    @property
    def hit_rate(self) -> float:
        """Served-without-computing fraction (waiters ride a leader's work)."""
        return (self.hits + self.single_flight_waits) / max(1, self.requests)

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (JSON payloads, comparisons)."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    # ------------------------------------------------------------------ #
    # Deprecated mapping compatibility (the pre-typed stats() dict)
    # ------------------------------------------------------------------ #
    def _warn_mapping(self, hint: str) -> None:
        warnings.warn(
            "treating cache stats as a dict is deprecated; read the typed "
            f"attributes ({hint}) or use stats.as_dict()",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, key: str) -> int:
        self._warn_mapping(f"stats.{key}")
        try:
            return self.as_dict()[key]
        except KeyError:
            raise KeyError(key) from None

    def get(self, key: str, default: Any = None) -> Any:
        self._warn_mapping(f"stats.{key}")
        return self.as_dict().get(key, default)

    def keys(self) -> list[str]:
        self._warn_mapping("stats.<counter>")
        return list(self.as_dict())

    def items(self) -> Iterator[tuple[str, int]]:
        self._warn_mapping("stats.<counter>")
        return iter(self.as_dict().items())

    def __iter__(self) -> Iterator[str]:
        self._warn_mapping("stats.<counter>")
        return iter(self.as_dict())

    def __contains__(self, key: object) -> bool:
        self._warn_mapping(f"stats.{key}")
        return key in self.as_dict()

    def __len__(self) -> int:
        return len(dataclasses.fields(self))

    def __eq__(self, other: object) -> bool:
        # dict-comparable (silently — equality is not a migration hazard)
        # so pre-typed assertions like describe()["cache"] ==
        # cache_stats() keep holding
        if isinstance(other, CacheStats):
            return self.as_dict() == other.as_dict()
        if isinstance(other, dict):
            return self.as_dict() == other
        return NotImplemented

    def __hash__(self) -> int:
        # defining __eq__ would otherwise null __hash__; a frozen value
        # record should stay usable as a dict key / set member
        return hash(tuple(self.as_dict().values()))

    @classmethod
    def merge(cls, *stats: "CacheStats | dict[str, int]") -> "CacheStats":
        """One fleet-wide reading from many caches' counters.

        Sums every raw counter; the derived ``requests``/``hit_rate``
        properties recompute from the merged totals (a mean of per-cache
        hit rates would weight an idle cache the same as a busy one).
        Accepts typed readings or their ``as_dict()`` wire form — the
        cluster router merges per-worker counters straight off JSON
        responses.  ``merge()`` of nothing is the zero reading.
        """
        totals = dict.fromkeys((f.name for f in dataclasses.fields(cls)), 0)
        for reading in stats:
            counters = (
                reading.as_dict() if isinstance(reading, CacheStats) else reading
            )
            for key in totals:
                value = counters.get(key, 0)
                if not isinstance(value, int) or isinstance(value, bool):
                    raise TypeError(
                        f"cannot merge non-integer counter {key}={value!r}"
                    )
                totals[key] += value
        return cls(**totals)


@dataclass
class _SubjectEntry:
    """Everything the cache holds for one subject, evicted as one unit."""

    tree: ObjectSummary | None = None
    flat: FlatOS | None = None
    results: dict[ResultKey, SizeLResult] = field(default_factory=dict)


class _InFlight:
    """One in-flight generation other threads can wait on (single-flight)."""

    __slots__ = ("event", "value", "error", "stale")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object | None = None
        self.error: BaseException | None = None
        #: set by invalidate(): hand the value to waiters, do not cache it
        self.stale = False


def _per_call(result: SizeLResult) -> SizeLResult:
    """A caller-facing view of a memoised result, marked served-from-cache.

    The tree/selection payload is shared (callers must not mutate it); the
    stats record is copied so flipping ``cached`` — or a caller poking at
    timing fields — never reaches the memoised object or earlier callers.
    """
    stats = result.stats
    if isinstance(stats, ResultStats):
        stats = dataclasses.replace(
            stats,
            cached=True,
            counters=dict(stats.counters),
            prelim=(
                dataclasses.replace(stats.prelim)
                if dataclasses.is_dataclass(stats.prelim)
                else stats.prelim
            ),
        )
    else:  # legacy dict-shaped stats from plugin algorithms
        stats = dict(stats)
        stats["cached"] = True
    return dataclasses.replace(result, stats=stats)


class SummaryCache:
    """A thread-safe LRU cache of complete OSs and size-l results.

    ``max_subjects`` bounds the number of cached subjects; a subject's
    trees (legacy and columnar) and its memoised size-l results live in one
    LRU slot and are evicted together.  All bookkeeping happens under one
    lock; generation runs outside it, deduplicated by a single-flight
    table so each (subject, representation) and each memo key is computed
    at most once no matter how many threads ask concurrently.
    """

    def __init__(
        self,
        engine: SizeLEngine,
        max_subjects: int = 64,
        snapshot: "Snapshot | None" = None,
    ) -> None:
        if max_subjects < 1:
            raise ValueError(f"max_subjects must be >= 1, got {max_subjects}")
        self.engine = engine
        self.max_subjects = max_subjects
        self._lock = threading.RLock()
        self._book: OrderedDict[SubjectKey, _SubjectEntry] = OrderedDict()
        self._inflight: dict[tuple, _InFlight] = {}
        #: the disk tier: an attached snapshot tried on memory misses
        self._snapshot: "Snapshot | None" = None
        #: snapshot subjects masked by invalidate(); never served again
        self._stale_disk: set[SubjectKey] = set()
        self.hits = 0
        self.misses = 0
        #: complete-OS generations actually executed (single-flight leaders)
        self.tree_generations = 0
        #: size-l pipelines actually executed (single-flight leaders)
        self.result_computations = 0
        #: calls that waited on another thread's in-flight computation
        self.single_flight_waits = 0
        #: lock acquisitions that found the lock held by another thread
        self.lock_contention = 0
        self.evictions = 0
        #: memory misses served by the snapshot tier (no generation paid)
        self.disk_hits = 0
        #: memory misses the attached snapshot could not serve
        self.disk_misses = 0
        #: disk lookups refused because invalidate() masked the entry
        self.snapshot_stale = 0
        if snapshot is not None:
            self.attach_snapshot(snapshot)

    # ------------------------------------------------------------------ #
    # Locking / LRU plumbing (callers hold self._lock unless noted)
    # ------------------------------------------------------------------ #
    @contextmanager
    def _acquire(self):
        """The cache lock, counting contended acquisitions."""
        if not self._lock.acquire(blocking=False):
            self._lock.acquire()
            self.lock_contention += 1
        try:
            yield
        finally:
            self._lock.release()

    def _touch(self, subject: SubjectKey) -> _SubjectEntry:
        """The subject's entry, created if missing, moved to MRU position."""
        entry = self._book.get(subject)
        if entry is None:
            entry = _SubjectEntry()
            self._book[subject] = entry
        else:
            self._book.move_to_end(subject)
        return entry

    def _evict_overflow(self) -> None:
        """Drop LRU subjects until the book respects ``max_subjects``.

        A subject leaves with its trees *and* memos — the unified book is
        what makes this atomic (the three-store layout this replaces could
        evict a subject's memos while its tree survived, or vice versa).
        """
        while len(self._book) > self.max_subjects:
            self._book.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------ #
    # Single-flight core
    # ------------------------------------------------------------------ #
    def _single_flight(
        self,
        flight_key: tuple,
        lookup: Callable[[], object | None],
        compute: Callable[[], object],
        insert: Callable[[object], None],
    ):
        """Lookup-or-compute with in-flight deduplication.

        *lookup* runs under the lock and returns the cached value or
        ``None``; *compute* runs outside the lock (at most once per key
        across all threads); *insert* runs under the lock after a
        successful compute.  Waiters receive the leader's value directly —
        never via a re-lookup, which could miss if the entry was evicted
        in the instant between insert and wake-up.
        """
        with self._acquire():
            value = lookup()
            if value is not None:
                self.hits += 1
                return value, True
            flight = self._inflight.get(flight_key)
            leader = flight is None
            if leader:
                self.misses += 1
                flight = _InFlight()
                self._inflight[flight_key] = flight
            else:
                self.single_flight_waits += 1
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                # Deliberately the leader's exception object itself, matching
                # concurrent.futures.Future.result() semantics for multiple
                # waiters; generic exception copying breaks kwargs-only types.
                raise flight.error
            return flight.value, True
        try:
            value = compute()
        except BaseException as exc:
            with self._acquire():
                flight.error = exc
                self._pop_flight(flight_key, flight)
            flight.event.set()
            raise
        # The value is set before attempting the insert and the wake-up is
        # in a finally: even if insert()/_evict_overflow() raises (e.g.
        # MemoryError caching a large tree), waiters still receive the
        # computed value instead of parking on the event forever.
        flight.value = value
        try:
            with self._acquire():
                if not flight.stale:  # marked by a concurrent invalidate()
                    insert(value)
                    self._evict_overflow()
        finally:
            with self._acquire():
                self._pop_flight(flight_key, flight)
            flight.event.set()
        return value, False

    def _pop_flight(self, flight_key: tuple, flight: _InFlight) -> None:
        """Retire *flight* — only if it still owns its key.

        ``invalidate`` detaches in-flight entries, after which a new leader
        may occupy the same key; a detached leader finishing late must not
        knock that successor out of the table.
        """
        if self._inflight.get(flight_key) is flight:
            del self._inflight[flight_key]

    # ------------------------------------------------------------------ #
    # Snapshot (disk) tier
    # ------------------------------------------------------------------ #
    def attach_snapshot(self, snapshot: "Snapshot") -> None:
        """Attach a precomputed snapshot as the tier below memory.

        Validates the snapshot against this cache's engine first
        (fingerprint + store digest — see
        :meth:`repro.persist.snapshot.Snapshot.validate_engine`); a
        mismatched snapshot raises instead of silently serving wrong
        trees.  Replaces any previously attached snapshot and clears its
        stale masks.
        """
        snapshot.validate_engine(self.engine)
        with self._acquire():
            self._snapshot = snapshot
            self._stale_disk = set()

    @property
    def snapshot(self) -> "Snapshot | None":
        """The attached snapshot, if any."""
        return self._snapshot

    def _disk_lookup(self, subject: SubjectKey) -> FlatOS | None:
        """Try the snapshot tier for a columnar complete OS.

        Runs outside the lock (the caller is the single-flight leader for
        this subject, so at most one disk load per subject is in flight).
        Returns ``None`` — counting the reason — when no snapshot is
        attached, the entry was masked by :meth:`invalidate`, or the
        subject was never precomputed.
        """
        snapshot = self._snapshot
        if snapshot is None:
            return None
        if snapshot.l_values is not None:
            # The cache hands disk trees to *every* summary size, so only
            # snapshots of complete OSs (l_values null) are servable; a
            # future depth-limited snapshot must not be over-served.
            with self._acquire():
                self.disk_misses += 1
            return None
        with self._acquire():
            if subject in self._stale_disk:
                self.snapshot_stale += 1
                return None
        rds_table, row_id = subject
        tree = snapshot.load_flat(
            rds_table, row_id, self.engine.gds_for(rds_table), self.engine.db
        )
        with self._acquire():
            if tree is None:
                self.disk_misses += 1
            else:
                self.disk_hits += 1
        return tree

    # ------------------------------------------------------------------ #
    # Complete OSs
    # ------------------------------------------------------------------ #
    def _cached_tree(
        self, subject: SubjectKey, slot: str, generate, disk: bool = False
    ):
        """Shared single-flight body of complete_os / complete_os_flat."""

        def lookup():
            entry = self._book.get(subject)
            if entry is None:
                return None
            value = getattr(entry, slot)
            if value is not None:
                self._book.move_to_end(subject)
            return value

        def compute():
            tree = self._disk_lookup(subject) if disk else None
            if tree is None:
                tree = generate(*subject)
                with self._acquire():
                    self.tree_generations += 1
            return tree

        def insert(tree):
            setattr(self._touch(subject), slot, tree)

        # The disk flag is part of the flight key: a snapshot=False caller
        # must never ride a disk-loading leader's flight and receive the
        # snapshot tree its knob explicitly opted out of.  The two
        # flavours may briefly duplicate work for one subject; each still
        # deduplicates within itself.
        tree, _from_cache = self._single_flight(
            (subject, slot, disk), lookup, compute, insert
        )
        return tree

    def complete_os(self, rds_table: str, row_id: int) -> ObjectSummary:
        """The cached complete OS of a subject (generated on first use)."""
        return self._cached_tree((rds_table, row_id), "tree", self.engine.complete_os)

    def complete_os_flat(
        self, rds_table: str, row_id: int, *, snapshot: bool = True
    ) -> FlatOS:
        """The cached columnar complete OS of a subject (flat hot path).

        On a memory miss the attached snapshot is consulted before paying
        a generation (``snapshot=False`` opts a call out and always
        regenerates on miss — the :attr:`QueryOptions.snapshot` execution
        knob).
        """
        return self._cached_tree(
            (rds_table, row_id),
            "flat",
            self.engine.complete_os_flat,
            disk=snapshot,
        )

    # ------------------------------------------------------------------ #
    # Size-l results
    # ------------------------------------------------------------------ #
    def size_l(
        self,
        rds_table: str,
        row_id: int,
        l: int,  # noqa: E741
        algorithm: str | Algorithm = Algorithm.TOP_PATH,
    ) -> SizeLResult:
        """Memoised size-l computation on the cached complete OS."""
        return self.run(
            rds_table,
            row_id,
            QueryOptions(l=l, algorithm=algorithm, source=Source.COMPLETE),
        )

    def run(
        self, rds_table: str, row_id: int, options: QueryOptions
    ) -> SizeLResult:
        """Memoised generate+summarise pipeline under *options*.

        Validation happens up front (registry lookups, ``l >= 1``) so bad
        input never triggers an expensive OS generation.  The
        complete-source / data-graph path reuses the cached complete OS;
        everything else delegates to the engine and memoises the result.

        A miss returns the memoised object itself (``stats.cached`` stays
        ``False``); hits — including threads that waited on the miss's
        in-flight computation — return a per-call copy with a fresh stats
        record marked ``cached=True``.
        """
        options = options.normalized()
        algo_fn = get_algorithm(options.algorithm_name)
        subject = (rds_table, row_id)
        result_key = options.cache_key()

        def lookup():
            entry = self._book.get(subject)
            if entry is None:
                return None
            result = entry.results.get(result_key)
            if result is not None:
                self._book.move_to_end(subject)
            return result

        def compute():
            result = self._compute(algo_fn, rds_table, row_id, options)
            with self._acquire():
                self.result_computations += 1
            return result

        def insert(result):
            self._touch(subject).results[result_key] = result

        # Like the tree layer, the snapshot flag joins the *flight* key
        # (not the memo key — results are node-identical either way): a
        # snapshot=False caller must lead its own live-backend pipeline,
        # never wait out a leader computing from the disk tree.
        result, from_cache = self._single_flight(
            (subject, "result", result_key, options.snapshot),
            lookup, compute, insert,
        )
        return _per_call(result) if from_cache else result

    def _compute(
        self, algo_fn, rds_table: str, row_id: int, options: QueryOptions
    ) -> SizeLResult:
        """One actual generate+summarise pipeline run (outside the lock)."""
        reusable_tree = (
            options.source_name == Source.COMPLETE.value
            and options.backend_name == Backend.DATAGRAPH.value
            and options.depth_limit is None
        )
        if not reusable_tree:
            return self.engine.run(rds_table, row_id, options)
        # normalized() canonicalized flat, so True alone means the
        # columnar path applies to this option combination.
        gen_start = perf_counter()
        tree: ObjectSummary | FlatOS = (
            self.complete_os_flat(rds_table, row_id, snapshot=options.snapshot)
            if options.flat
            else self.complete_os(rds_table, row_id)
        )
        gen_seconds = perf_counter() - gen_start
        algo_start = perf_counter()
        result = algo_fn(tree, options.l)
        algo_seconds = perf_counter() - algo_start
        result.stats = ResultStats.from_counters(
            result.stats,
            source=options.source_name,
            backend=options.backend_name,
            initial_os_size=tree.size,
            generation_seconds=gen_seconds,
            algorithm_seconds=algo_seconds,
        )
        return result

    # ------------------------------------------------------------------ #
    # Management
    # ------------------------------------------------------------------ #
    def invalidate(self, rds_table: str | None = None, row_id: int | None = None) -> None:
        """Drop cached entries (all, per table, or one subject).

        Matching entries of an attached snapshot are masked permanently —
        disk trees were computed against pre-refresh data and must never
        be re-served; a bare ``invalidate()`` disables the whole disk
        tier until :meth:`attach_snapshot` re-validates and re-attaches.

        ``row_id`` without ``rds_table`` is ambiguous (row ids are only
        unique per table) and raises :class:`ValueError` — it used to be
        silently ignored, clearing the entire cache.
        """
        if rds_table is None and row_id is not None:
            raise ValueError(
                "invalidate(row_id=...) requires rds_table; row ids are "
                "only unique within a table"
            )

        def affected(subject: SubjectKey) -> bool:
            return rds_table is None or (
                subject[0] == rds_table and (row_id is None or subject[1] == row_id)
            )

        with self._acquire():
            # Detach matching in-flight computations too: a caller arriving
            # *after* this invalidate must start a fresh generation, not
            # inherit a result computed against the pre-refresh data.  The
            # detached leaders still hand their (stale) value to the
            # threads already waiting on them, but skip caching it.
            # Unaffected flights are untouched — a scoped invalidate must
            # not throw away other subjects' in-flight work.
            for key in [
                key for key in self._inflight if affected(key[0])
            ]:
                self._inflight[key].stale = True
                del self._inflight[key]
            for subject in [s for s in self._book if affected(s)]:
                del self._book[subject]
            # Mask the disk tier too: a snapshot entry is immutable on
            # disk, so "invalidated" means "never serve it again" — the
            # next request regenerates from the live database instead of
            # resurrecting the pre-refresh tree.  A bare invalidate()
            # therefore masks the *whole* snapshot (re-attach via
            # attach_snapshot, which re-validates, to re-enable the tier
            # after a refresh).  The single-subject case is O(1); only
            # table-wide and full invalidates scan the subject map.
            if self._snapshot is not None:
                if rds_table is not None and row_id is not None:
                    subject = (rds_table, row_id)
                    if subject in self._snapshot.subjects:
                        self._stale_disk.add(subject)
                else:
                    for subject in self._snapshot.subjects:
                        if affected(subject):
                            self._stale_disk.add(subject)

    @property
    def cached_subjects(self) -> int:
        """Subjects holding *anything* — trees or memoised results.

        (The pre-unification count looked only at the tree stores and
        undercounted subjects whose prelim/database-path results were
        memoised without a cached tree.)
        """
        with self._acquire():
            return len(self._book)

    @property
    def cached_results(self) -> int:
        """Memoised size-l results across all cached subjects."""
        with self._acquire():
            return sum(len(entry.results) for entry in self._book.values())

    def stats(self) -> CacheStats:
        """One consistent :class:`CacheStats` reading of every counter.

        (Returned a plain dict before the service layer; the typed record
        keeps the old mapping interface behind a DeprecationWarning.)
        """
        # The engine's buffer pool (repro.storage) keeps its own counters;
        # surfacing them here puts them on /v1/stats and /v1/metrics for
        # free (both render whatever as_dict() exposes).
        pool = getattr(self.engine, "buffer_pool", None)
        with self._acquire():  # RLock: the properties re-enter safely
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                cached_subjects=self.cached_subjects,
                cached_results=self.cached_results,
                tree_generations=self.tree_generations,
                result_computations=self.result_computations,
                single_flight_waits=self.single_flight_waits,
                lock_contention=self.lock_contention,
                evictions=self.evictions,
                disk_hits=self.disk_hits,
                disk_misses=self.disk_misses,
                snapshot_stale=self.snapshot_stale,
                pool_hits=pool.hits if pool is not None else 0,
                pool_misses=pool.misses if pool is not None else 0,
                pool_evictions=pool.evictions if pool is not None else 0,
            )
