"""Pre-computation / caching of OSs and size-l results (Section 7).

The paper's conclusion: "the general case ... prevents the incremental
computation of a size-l OS from the optimal size-(l−1) OS, limiting
pre-computation or caching approaches" — but the *family analysis*
(:mod:`repro.core.analysis`) shows consecutive optima overlap heavily, so a
cache that stores complete OSs and memoises per-(subject, options) results
still removes almost all repeated work in interactive exploration
(the user sliding an l-slider re-hits the same subject over and over).

:class:`SummaryCache` is the caching layer a
:class:`~repro.session.Session` owns over its
:class:`~repro.core.engine.SizeLEngine`:

* complete OSs are cached per (R_DS table, row) — generation dominates the
  end-to-end cost (Figure 10(f)), so this is the big win;
* size-l results are memoised per (subject, l, algorithm, source, backend);
* the databases in this library are append-only, so entries never go stale
  mid-session; :meth:`invalidate` supports explicit refresh after loads.

All algorithm dispatch flows through :mod:`repro.core.registry`, and
options are validated *before* any OS generation (a bad algorithm name
never costs a complete-OS traversal).
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter

from repro.core.engine import SizeLEngine
from repro.core.options import Algorithm, Backend, QueryOptions, ResultStats, Source
from repro.core.os_tree import FlatOS, ObjectSummary, SizeLResult
from repro.core.registry import get_algorithm

#: Memo key of a size-l result:
#: (l, algorithm, source, backend, depth_limit, flat).
ResultKey = tuple[int, str, str, str, "int | None", bool]


class SummaryCache:
    """An LRU cache of complete OSs and size-l results over an engine.

    ``max_subjects`` bounds the number of cached complete OSs (they are the
    memory-heavy part); size-l results are small and kept per subject,
    evicted together with its tree.
    """

    def __init__(self, engine: SizeLEngine, max_subjects: int = 64) -> None:
        if max_subjects < 1:
            raise ValueError(f"max_subjects must be >= 1, got {max_subjects}")
        self.engine = engine
        self.max_subjects = max_subjects
        self._trees: OrderedDict[tuple[str, int], ObjectSummary] = OrderedDict()
        # Columnar complete OSs (the flat hot path) cached separately from
        # the legacy ObjectSummary trees so A/B runs never cross-populate.
        self._flat_trees: OrderedDict[tuple[str, int], FlatOS] = OrderedDict()
        # LRU over subjects, like _trees: prelim/database-path results never
        # enter _trees, so _results must enforce max_subjects on its own.
        self._results: OrderedDict[
            tuple[str, int], dict[ResultKey, SizeLResult]
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Complete OSs
    # ------------------------------------------------------------------ #
    def _cached_tree(self, store: OrderedDict, sibling: OrderedDict, key, generate):
        """Shared LRU body of :meth:`complete_os` / :meth:`complete_os_flat`.

        Evicting a subject removes its entry from both tree stores and its
        memoised results, so subject-level eviction stays atomic.
        """
        if key in store:
            self.hits += 1
            store.move_to_end(key)
            return store[key]
        self.misses += 1
        tree = generate(*key)
        store[key] = tree
        self._results.setdefault(key, {})
        if len(store) > self.max_subjects:
            evicted, _tree = store.popitem(last=False)
            sibling.pop(evicted, None)
            self._results.pop(evicted, None)
        return tree

    def complete_os(self, rds_table: str, row_id: int) -> ObjectSummary:
        """The cached complete OS of a subject (generated on first use)."""
        return self._cached_tree(
            self._trees,
            self._flat_trees,
            (rds_table, row_id),
            self.engine.complete_os,
        )

    def complete_os_flat(self, rds_table: str, row_id: int) -> FlatOS:
        """The cached columnar complete OS of a subject (flat hot path)."""
        return self._cached_tree(
            self._flat_trees,
            self._trees,
            (rds_table, row_id),
            self.engine.complete_os_flat,
        )

    # ------------------------------------------------------------------ #
    # Size-l results
    # ------------------------------------------------------------------ #
    def size_l(
        self,
        rds_table: str,
        row_id: int,
        l: int,  # noqa: E741
        algorithm: str | Algorithm = Algorithm.TOP_PATH,
    ) -> SizeLResult:
        """Memoised size-l computation on the cached complete OS."""
        return self.run(
            rds_table,
            row_id,
            QueryOptions(l=l, algorithm=algorithm, source=Source.COMPLETE),
        )

    def run(
        self, rds_table: str, row_id: int, options: QueryOptions
    ) -> SizeLResult:
        """Memoised generate+summarise pipeline under *options*.

        Validation happens up front (registry lookups, ``l >= 1``) so bad
        input never triggers an expensive OS generation.  The
        complete-source / data-graph path reuses the cached complete OS;
        everything else delegates to the engine and memoises the result.
        """
        options = options.normalized()
        algo_fn = get_algorithm(options.algorithm_name)
        subject = (rds_table, row_id)
        result_key = options.cache_key()
        per_subject = self._results.setdefault(subject, {})
        self._results.move_to_end(subject)
        if result_key in per_subject:
            self.hits += 1
            if subject in self._trees:
                self._trees.move_to_end(subject)
            if subject in self._flat_trees:
                self._flat_trees.move_to_end(subject)
            # memoised results are shared objects: the flag marks "served
            # from cache at least once", and callers must not mutate them
            result = per_subject[result_key]
            result.stats.cached = True
            return result
        self.misses += 1
        reusable_tree = (
            options.source_name == Source.COMPLETE.value
            and options.backend_name == Backend.DATAGRAPH.value
            and options.depth_limit is None
        )
        if reusable_tree:
            # normalized() canonicalized flat, so True alone means the
            # columnar path applies to this option combination.
            use_flat = options.flat
            gen_start = perf_counter()
            tree: ObjectSummary | FlatOS = (
                self.complete_os_flat(rds_table, row_id)
                if use_flat
                else self.complete_os(rds_table, row_id)
            )
            gen_seconds = perf_counter() - gen_start
            algo_start = perf_counter()
            result = algo_fn(tree, options.l)
            algo_seconds = perf_counter() - algo_start
            result.stats = ResultStats.from_counters(
                result.stats,
                source=options.source_name,
                backend=options.backend_name,
                initial_os_size=tree.size,
                generation_seconds=gen_seconds,
                algorithm_seconds=algo_seconds,
            )
        else:
            result = self.engine.run(rds_table, row_id, options)
        # complete_os may have evicted this subject's slot while making room
        self._results.setdefault(subject, {})[result_key] = result
        self._results.move_to_end(subject)
        if len(self._results) > self.max_subjects:
            evicted, _ = self._results.popitem(last=False)
            self._trees.pop(evicted, None)
            self._flat_trees.pop(evicted, None)
        return result

    # ------------------------------------------------------------------ #
    # Management
    # ------------------------------------------------------------------ #
    def invalidate(self, rds_table: str | None = None, row_id: int | None = None) -> None:
        """Drop cached entries (all, per table, or one subject)."""
        if rds_table is None:
            self._trees.clear()
            self._flat_trees.clear()
            self._results.clear()
            return
        keys = [
            key
            for key in set(self._trees) | set(self._flat_trees) | set(self._results)
            if key[0] == rds_table and (row_id is None or key[1] == row_id)
        ]
        for key in keys:
            self._trees.pop(key, None)
            self._flat_trees.pop(key, None)
            self._results.pop(key, None)

    @property
    def cached_subjects(self) -> int:
        return len(set(self._trees) | set(self._flat_trees))

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "cached_subjects": self.cached_subjects,
        }
