"""Algorithm 2: the Bottom-Up Pruning greedy heuristic.

Iteratively prunes the current leaf with the smallest local importance until
exactly l nodes remain.  A priority queue holds the current leaves; pruning
a node whose parent thereby becomes childless pushes the parent.  The root
is never pushed (pruning t_DS would disconnect everything and Definition 1
requires it).

O(n log n) overall: O(n) deletions, each with an O(log n) heap update.
Lemma 2 (tested): when local importance decreases monotonically along every
root-to-leaf path, the result is optimal — Paper OSs in DBLP satisfy this
and the paper's Figure 9(b) shows all methods at 100% there.
"""

from __future__ import annotations

import numpy as np

from repro.core.os_tree import FlatOS, ObjectSummary, SizeLResult, validate_l
from repro.reliability.deadline import CHECK_MASK, check_deadline
from repro.util.heaps import KeyedMinHeap


def bottom_up_size_l(
    os_tree: ObjectSummary | FlatOS, l: int  # noqa: E741
) -> SizeLResult:
    """Compute a size-l OS by pruning the least-important leaves.

    Accepts either representation; a columnar
    :class:`~repro.core.os_tree.FlatOS` runs over parallel arrays (same
    heap, same insertion order, identical selections).
    """
    validate_l(l)
    if isinstance(os_tree, FlatOS):
        return _bottom_up_size_l_flat(os_tree, l)
    # Depth filter (footnote 1): nodes at depth >= l can never participate.
    alive = {node.uid for node in os_tree.nodes if node.depth < l}
    child_count = {
        node.uid: sum(1 for c in node.children if c.uid in alive)
        for node in os_tree.nodes
        if node.uid in alive
    }

    heap: KeyedMinHeap[int] = KeyedMinHeap()
    root_uid = os_tree.root.uid
    for node in os_tree.nodes:
        if node.uid in alive and child_count[node.uid] == 0 and node.uid != root_uid:
            heap.push(node.uid, node.weight)

    dequeues = 0
    enqueues = len(heap)
    while len(alive) > l:
        uid, _score = heap.pop()
        dequeues += 1
        if dequeues & CHECK_MASK == 0:
            check_deadline()
        alive.discard(uid)
        parent = os_tree.node(uid).parent
        assert parent is not None  # the root is never pushed
        child_count[parent.uid] -= 1
        if child_count[parent.uid] == 0 and parent.uid != root_uid:
            heap.push(parent.uid, parent.weight)
            enqueues += 1

    summary = os_tree.materialise_subset(alive)
    return SizeLResult(
        summary=summary,
        selected_uids=alive,
        importance=summary.total_importance(),
        algorithm="bottom_up",
        l=l,
        stats={"heap_dequeues": dequeues, "heap_enqueues": enqueues},
    )


def _bottom_up_size_l_flat(flat: FlatOS, l: int) -> SizeLResult:  # noqa: E741
    """Bottom-Up Pruning over :class:`FlatOS` parallel arrays.

    The depth-< l filter is an array prefix, eligible-child counts come from
    one vectorized subtraction, and leaf weights are array lookups; the heap
    (and therefore the pruning order, ties included) is the same as the
    node-based version's.
    """
    n_el = flat.eligible_count(l)
    parent = flat.parent[:n_el].tolist()
    weight = flat.weight[:n_el].tolist()
    child_lo, child_hi = flat.eligible_child_bounds(l)
    child_count = (child_hi - child_lo).tolist()

    heap: KeyedMinHeap[int] = KeyedMinHeap()
    for leaf, count in enumerate(child_count):
        if count == 0 and leaf != 0:  # the root is never pushed
            heap.push(leaf, weight[leaf])

    alive = np.ones(n_el, dtype=bool)
    alive_count = n_el
    dequeues = 0
    enqueues = len(heap)
    while alive_count > l:
        index, _score = heap.pop()
        dequeues += 1
        if dequeues & CHECK_MASK == 0:
            check_deadline()
        alive[index] = False
        alive_count -= 1
        p = parent[index]  # the root is never popped, so p >= 0
        child_count[p] -= 1
        if child_count[p] == 0 and p != 0:
            heap.push(p, weight[p])
            enqueues += 1

    selected = {int(i) for i in np.nonzero(alive)[0]}
    summary = flat.materialise_subset(selected)
    return SizeLResult(
        summary=summary,
        selected_uids=selected,
        importance=summary.total_importance(),
        algorithm="bottom_up",
        l=l,
        stats={"heap_dequeues": dequeues, "heap_enqueues": enqueues},
    )
