"""The paper's primary contribution: Object Summaries and size-l OSs.

Modules:

* :mod:`repro.core.os_tree` — the OS tree structure (tuple occurrences) and
  size-l results;
* :mod:`repro.core.generation` — Algorithm 5 (complete OS generation) over
  two backends: the in-memory data graph and direct database queries;
* :mod:`repro.core.dp` — Algorithm 1, the optimal dynamic program;
* :mod:`repro.core.bottom_up` — Algorithm 2, Bottom-Up Pruning;
* :mod:`repro.core.top_path` — Algorithm 3, Update Top-Path-l (naive and
  s(v)-optimised variants);
* :mod:`repro.core.prelim` — Algorithm 4, prelim-l OS generation with
  Avoidance Conditions 1 and 2;
* :mod:`repro.core.brute_force` — literal exponential optimum (test oracle);
* :mod:`repro.core.registry` — open algorithm/backend registries (plugins);
* :mod:`repro.core.options` — typed query options (:class:`QueryOptions`,
  the :class:`Algorithm`/:class:`Source`/:class:`Backend` enums,
  :class:`ResultStats`);
* :mod:`repro.core.engine` — the public query engine: keyword → size-l OSs;
* :mod:`repro.core.builder` — :class:`EngineBuilder`, the single
  construction path for engines and sessions;
* :mod:`repro.core.snippet` — word/attribute-budget summaries (Section 7
  future work);
* :mod:`repro.core.topk` — ranking of result OS sets (Section 7 future work);
* :mod:`repro.core.analysis` — the space of optimal size-l OSs across l
  (Section 7 future work);
* :mod:`repro.core.cache` — pre-computation/caching of OSs and size-l
  results (Section 7 future work).
"""

from repro.core.os_tree import FlatOS, OSNode, ObjectSummary, SizeLResult
from repro.core.generation import (
    DataGraphBackend,
    DatabaseBackend,
    GenerationBackend,
    generate_os,
    generate_os_flat,
)
from repro.core.dp import optimal_size_l
from repro.core.bottom_up import bottom_up_size_l
from repro.core.top_path import top_path_size_l
from repro.core.prelim import PrelimStats, generate_prelim_os
from repro.core.brute_force import brute_force_size_l
from repro.core.registry import (
    ALGORITHM_REGISTRY,
    BACKEND_REGISTRY,
    Registry,
    algorithm_names,
    backend_names,
    get_algorithm,
    get_backend_factory,
    register_algorithm,
    register_backend,
)
from repro.core.options import (
    Algorithm,
    Backend,
    ParallelConfig,
    QueryOptions,
    ResultStats,
    Source,
    resolve_options,
)
from repro.core.engine import KeywordResult, SizeLEngine
from repro.core.builder import EngineBuilder, build_named_dataset
from repro.core.snippet import word_budget_summary
from repro.core.topk import rank_data_subjects, rank_by_summary_importance
from repro.core.analysis import (
    nesting_profile,
    optimal_family,
    stability_profile,
)
from repro.core.cache import CacheStats, SummaryCache
from repro.core.export import result_to_dict, result_to_json, summary_to_dict

__all__ = [
    "OSNode",
    "ObjectSummary",
    "FlatOS",
    "SizeLResult",
    "GenerationBackend",
    "DataGraphBackend",
    "DatabaseBackend",
    "generate_os",
    "generate_os_flat",
    "optimal_size_l",
    "bottom_up_size_l",
    "top_path_size_l",
    "PrelimStats",
    "generate_prelim_os",
    "brute_force_size_l",
    "SizeLEngine",
    "KeywordResult",
    "Registry",
    "ALGORITHM_REGISTRY",
    "BACKEND_REGISTRY",
    "register_algorithm",
    "register_backend",
    "algorithm_names",
    "backend_names",
    "get_algorithm",
    "get_backend_factory",
    "Algorithm",
    "Backend",
    "Source",
    "ParallelConfig",
    "QueryOptions",
    "ResultStats",
    "resolve_options",
    "EngineBuilder",
    "build_named_dataset",
    "word_budget_summary",
    "rank_data_subjects",
    "rank_by_summary_importance",
    "optimal_family",
    "nesting_profile",
    "stability_profile",
    "SummaryCache",
    "CacheStats",
    "summary_to_dict",
    "result_to_dict",
    "result_to_json",
]
