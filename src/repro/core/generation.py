"""Complete OS generation — Algorithm 5 of the paper.

A breadth-first traversal of the (θ-pruned) G_DS starting from the t_DS
tuple: for each dequeued tuple occurrence, each child relation of its G_DS
node is joined to fetch child tuples, which are appended to the OS tree and
enqueued.

Two backends mirror the paper's two generation strategies (Section 6.3):

* :class:`DataGraphBackend` — walks the in-memory tuple-level data graph
  ("the OSs are generated much faster using the data graph");
* :class:`DatabaseBackend` — issues one join query per (parent tuple, child
  relation) through :class:`~repro.db.query.QueryInterface`, with I/O
  accounting ("directly from the database").

Both backends also implement the thresholded TOP-l fetch that prelim-l OS
generation (Algorithm 4, Avoidance Condition 2) needs.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.os_tree import FlatOS, ObjectSummary, OSNode
from repro.datagraph.graph import DataGraph
from repro.db.database import Database
from repro.db.query import QueryInterface
from repro.errors import SummaryError
from repro.ranking.store import ImportanceStore
from repro.reliability.deadline import CHECK_MASK, check_deadline
from repro.schema_graph.gds import GDS, GDSNode, JunctionJoin, RefJoin, ReverseJoin


class GenerationBackend(Protocol):
    """Fetches child tuples for OS generation."""

    @property
    def db(self) -> Database:
        ...  # pragma: no cover

    def children(
        self, gds_child: GDSNode, parent: OSNode
    ) -> "np.ndarray | list[int]":
        """Row ids of *gds_child*-relation tuples joining the parent tuple.

        May be a read-only array view into shared adjacency storage (the
        data-graph backend's zero-copy CSR slices) — callers must not
        mutate the returned sequence.
        """
        ...  # pragma: no cover

    def children_top(
        self,
        gds_child: GDSNode,
        parent: OSNode,
        store: ImportanceStore,
        threshold: float,
        limit: int,
    ) -> list[int]:
        """Avoidance-Condition-2 fetch: at most *limit* children whose local
        importance strictly exceeds *threshold*, best first."""
        ...  # pragma: no cover


def _origin_row(gds_child: GDSNode, parent: OSNode) -> int | None:
    """The row to exclude for co-author style joins (see JunctionJoin)."""
    join = gds_child.join
    if (
        isinstance(join, JunctionJoin)
        and join.exclude_origin
        and parent.parent is not None
        and parent.parent.table == join.target_table
    ):
        return parent.parent.row_id
    return None


class DataGraphBackend:
    """Child fetches over the prebuilt tuple-level data graph."""

    def __init__(self, db: Database, data_graph: DataGraph) -> None:
        self._db = db
        self.data_graph = data_graph
        self.nodes_visited = 0

    @property
    def db(self) -> Database:
        return self._db

    def children(self, gds_child: GDSNode, parent: OSNode) -> np.ndarray:
        # Read-only: ReverseJoin returns a zero-copy CSR slice (see
        # DataGraph.children_of); mutating it would corrupt the shared graph.
        assert gds_child.join is not None
        rows = self.data_graph.children_of(
            gds_child.join, parent.table, parent.row_id, _origin_row(gds_child, parent)
        )
        self.nodes_visited += len(rows)
        return rows

    def children_top(
        self,
        gds_child: GDSNode,
        parent: OSNode,
        store: ImportanceStore,
        threshold: float,
        limit: int,
    ) -> list[int]:
        rows = np.asarray(self.children(gds_child, parent))
        if rows.size == 0:
            return []
        # One vectorized gather scores every candidate exactly once.
        scores = store.local_importance_many(gds_child, rows)
        keep = scores > threshold
        rows, scores = rows[keep], scores[keep]
        # Descending score, ties by ascending row id (the legacy order).
        order = np.lexsort((rows, -scores))[:limit]
        return [int(row) for row in rows[order]]


class DatabaseBackend:
    """Child fetches via per-join queries against the relational engine.

    Each call to :meth:`children` / :meth:`children_top` executes exactly one
    statement template (counting one I/O access), matching the paper's cost
    model: a junction hop is a single SQL join, and Avoidance Condition 2
    "still requires an I/O access even when it returns no results".
    """

    def __init__(self, query_interface: QueryInterface) -> None:
        self.qi = query_interface

    @property
    def db(self) -> Database:
        return self.qi.db

    @property
    def io_accesses(self) -> int:
        return self.qi.io_accesses

    def _junction_targets(
        self, join: JunctionJoin, junction_rows: list[int], origin: int | None
    ) -> list[int]:
        junction = self.db.table(join.junction_table)
        target = self.db.table(join.target_table)
        to_idx = junction.schema.column_index(join.to_column)
        children: list[int] = []
        for junction_row in junction_rows:
            pk = junction.row(junction_row)[to_idx]
            if pk is None:
                continue
            row = target.row_id_for_pk(pk)
            if join.exclude_origin and origin is not None and row == origin:
                continue
            children.append(row)
        return children

    def children(self, gds_child: GDSNode, parent: OSNode) -> list[int]:
        join = gds_child.join
        assert join is not None
        parent_table = self.db.table(parent.table)
        if isinstance(join, RefJoin):
            ref = parent_table.value(parent.row_id, join.fk_column)
            if ref is None:
                self.qi.count_io()  # the lookup still executes
                return []
            return self.qi.lookup_by_pk(join.target_table, ref)
        parent_pk = parent_table.pk_of_row(parent.row_id)
        if isinstance(join, ReverseJoin):
            return self.qi.select_where_eq(join.child_table, join.fk_column, parent_pk)
        if isinstance(join, JunctionJoin):
            junction_rows = self.qi.select_where_eq(
                join.junction_table, join.from_column, parent_pk
            )
            return self._junction_targets(
                join, junction_rows, _origin_row(gds_child, parent)
            )
        raise SummaryError(f"unknown join spec: {join!r}")  # pragma: no cover

    def children_top(
        self,
        gds_child: GDSNode,
        parent: OSNode,
        store: ImportanceStore,
        threshold: float,
        limit: int,
    ) -> list[int]:
        join = gds_child.join
        assert join is not None
        if isinstance(join, ReverseJoin):
            def score_of(table: str, row_id: int) -> float:
                return store.local_importance(gds_child, row_id)

            parent_pk = self.db.table(parent.table).pk_of_row(parent.row_id)
            return self.qi.select_top_where_eq(
                join.child_table,
                join.fk_column,
                parent_pk,
                score_of,
                threshold,
                limit,
            )
        # RefJoin and JunctionJoin: fetch (one statement) then filter/limit,
        # which is what the single SQL join with the li predicate would do.
        scored = []
        for row in self.children(gds_child, parent):
            score = store.local_importance(gds_child, row)
            if score > threshold:
                scored.append((score, -row, row))
        scored.sort(reverse=True)
        return [row for _score, _neg, row in scored[:limit]]


def generate_os(
    tds_row_id: int,
    gds: GDS,
    backend: GenerationBackend,
    store: ImportanceStore,
    depth_limit: int | None = None,
    max_nodes: int | None = None,
) -> ObjectSummary:
    """Algorithm 5: generate the complete OS for a t_DS tuple.

    *gds* should already be θ-pruned (the engine does this); *depth_limit*
    implements the paper's footnote 1 — tuples at distance ≥ l from the root
    cannot participate in a connected size-l OS and may be excluded up
    front.  *max_nodes* is a safety valve for pathological fan-outs (not
    part of the paper; ``None`` disables it).
    """
    root_gds = gds.root
    root_weight = store.local_importance(root_gds, tds_row_id)
    root = OSNode(0, root_gds, tds_row_id, None, root_weight)
    queue: list[OSNode] = [root]
    cursor = 0
    next_uid = 1
    while cursor < len(queue):
        node = queue[cursor]
        cursor += 1
        if cursor & CHECK_MASK == 0:
            check_deadline()
        if depth_limit is not None and node.depth >= depth_limit:
            continue
        for gds_child in node.gds.children:
            for row_id in backend.children(gds_child, node):
                row_id = int(row_id)  # np scalars from array slices; keep uids JSON-safe
                child = OSNode(
                    next_uid,
                    gds_child,
                    row_id,
                    node,
                    store.local_importance(gds_child, row_id),
                )
                next_uid += 1
                node.children.append(child)
                queue.append(child)
                if max_nodes is not None and next_uid > max_nodes:
                    raise SummaryError(
                        f"OS exceeded max_nodes={max_nodes}; raise the limit or "
                        f"tighten theta/depth"
                    )
    return ObjectSummary(root, db=backend.db, kind="complete")


def _expand_edge(
    graph: DataGraph,
    gds_parent: GDSNode,
    gds_child: GDSNode,
    parent_rows: np.ndarray,
    origin_rows: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand one G_DS edge for a whole frontier group at once.

    *parent_rows* are the rows of every frontier tuple occurrence of
    *gds_parent*; returns ``(rep, child_rows)`` where ``rep[k]`` is the
    position within *parent_rows* that produced ``child_rows[k]`` (children
    of each parent appear consecutively, in join order).  *origin_rows* is
    the co-author exclusion input: per-parent rows to drop from a
    ``JunctionJoin`` with ``exclude_origin`` (``None`` when inapplicable).
    """
    join = gds_child.join
    assert join is not None
    if isinstance(join, RefJoin):
        adj = graph.adjacency(gds_parent.table, join.fk_column)
        targets = adj.forward[parent_rows]
        mask = targets >= 0
        return np.nonzero(mask)[0], targets[mask]
    if isinstance(join, ReverseJoin):
        adj = graph.adjacency(join.child_table, join.fk_column)
        return adj.backward_many(parent_rows)
    if isinstance(join, JunctionJoin):
        into_parent = graph.adjacency(join.junction_table, join.from_column)
        to_target = graph.adjacency(join.junction_table, join.to_column)
        rep, junction_rows = into_parent.backward_many(parent_rows)
        targets = to_target.forward[junction_rows]
        mask = targets >= 0
        if origin_rows is not None:
            mask &= targets != origin_rows[rep]
        return rep[mask], targets[mask]
    raise SummaryError(f"unknown join spec: {join!r}")  # pragma: no cover


def generate_os_flat(
    tds_row_id: int,
    gds: GDS,
    backend: "DataGraphBackend",
    store: ImportanceStore,
    depth_limit: int | None = None,
    max_nodes: int | None = None,
) -> FlatOS:
    """Algorithm 5, columnar: level-synchronous frontier expansion.

    Produces exactly the tree :func:`generate_os` produces (node ``i`` of the
    :class:`~repro.core.os_tree.FlatOS` is the legacy uid-``i`` node), but
    expands an entire BFS frontier per G_DS edge with ``np.repeat``/gathers
    instead of one Python iteration per tuple, and computes each level's
    weights as one vectorized
    :meth:`~repro.ranking.store.ImportanceStore.local_importance_many` call.
    Only the data-graph backend supports this path — the database backend's
    per-join I/O accounting is inherently per parent tuple.
    """
    graph = backend.data_graph
    gds_nodes = gds.nodes()
    # Per-level ordering key: parent position within the frontier is the
    # major key, the G_DS edge's rank among its parent's children the minor
    # key, so a stable sort reproduces the legacy BFS append order exactly.
    edge_stride = max((len(n.children) for n in gds_nodes), default=1) or 1
    # Disk-resident graphs (repro.storage's buffer pool) prefer each
    # frontier group expanded in ascending row order: CSR gathers then
    # sweep the arena pages sequentially instead of randomly.  The output
    # tree is unchanged — the keys above encode *original* frontier
    # positions and the level ends in a stable argsort.
    page_order = bool(getattr(graph, "prefers_page_order", False))

    root_weight = store.local_importance(gds.root, tds_row_id)
    parent_chunks = [np.array([-1], dtype=np.int32)]
    depth_chunks = [np.zeros(1, dtype=np.int32)]
    gid_chunks = [np.array([gds.root.node_id], dtype=np.int32)]
    row_chunks = [np.array([tds_row_id], dtype=np.int32)]
    weight_chunks = [np.array([root_weight], dtype=np.float64)]

    frontier_rows = row_chunks[0]
    frontier_gids = gid_chunks[0]
    # Position of each frontier node's parent within the *previous* level
    # (drives the junction-join origin exclusion); the root has none.
    frontier_parent_pos = np.zeros(1, dtype=np.int64)
    prev_rows = np.empty(0, dtype=np.int32)

    level_offset = 0  # global index of the first node of the current level
    total = 1
    depth = 0
    while frontier_rows.size:
        check_deadline()  # per BFS level: the vectorized loop's only checkpoint
        if depth_limit is not None and depth >= depth_limit:
            break
        keys: list[np.ndarray] = []
        parents: list[np.ndarray] = []
        gids: list[np.ndarray] = []
        rows: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        present = set(frontier_gids.tolist())
        for g in gds_nodes:
            if not g.children or g.node_id not in present:
                continue
            sel = np.nonzero(frontier_gids == g.node_id)[0]
            if page_order and sel.size > 1:
                sel = sel[np.argsort(frontier_rows[sel], kind="stable")]
            parent_rows = frontier_rows[sel]
            for edge_rank, gds_child in enumerate(g.children):
                join = gds_child.join
                excluding = (
                    isinstance(join, JunctionJoin)
                    and join.exclude_origin
                    and g.parent is not None
                    and g.parent.table == join.target_table
                )
                origin_rows = (
                    prev_rows[frontier_parent_pos[sel]] if excluding else None
                )
                rep, child_rows = _expand_edge(
                    graph, g, gds_child, parent_rows, origin_rows
                )
                backend.nodes_visited += int(child_rows.size)
                if child_rows.size == 0:
                    continue
                total += int(child_rows.size)
                if max_nodes is not None and total > max_nodes:
                    # Checked per edge, before the level is sorted and
                    # appended, so the safety valve bounds memory too.
                    raise SummaryError(
                        f"OS exceeded max_nodes={max_nodes}; raise the limit "
                        f"or tighten theta/depth"
                    )
                frontier_pos = sel[rep]
                keys.append(frontier_pos * edge_stride + edge_rank)
                parents.append(frontier_pos)
                gids.append(
                    np.full(child_rows.size, gds_child.node_id, dtype=np.int32)
                )
                rows.append(child_rows)
                weights.append(store.local_importance_many(gds_child, child_rows))
        if not keys:
            break
        order = np.argsort(np.concatenate(keys), kind="stable")
        level_parent_pos = np.concatenate(parents)[order]
        level_rows = np.concatenate(rows)[order].astype(np.int32, copy=False)
        level_count = len(level_rows)
        parent_chunks.append((level_offset + level_parent_pos).astype(np.int32))
        depth_chunks.append(np.full(level_count, depth + 1, dtype=np.int32))
        gid_chunks.append(np.concatenate(gids)[order])
        row_chunks.append(level_rows)
        weight_chunks.append(np.concatenate(weights)[order])

        level_offset += frontier_rows.size
        prev_rows = frontier_rows
        frontier_rows = level_rows
        frontier_gids = gid_chunks[-1]
        frontier_parent_pos = level_parent_pos
        depth += 1

    return FlatOS(
        parent=np.concatenate(parent_chunks),
        depth=np.concatenate(depth_chunks),
        gds_node_id=np.concatenate(gid_chunks),
        row_id=np.concatenate(row_chunks),
        weight=np.concatenate(weight_chunks),
        gds=gds,
        db=backend.db,
        kind="complete",
    )
