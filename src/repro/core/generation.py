"""Complete OS generation — Algorithm 5 of the paper.

A breadth-first traversal of the (θ-pruned) G_DS starting from the t_DS
tuple: for each dequeued tuple occurrence, each child relation of its G_DS
node is joined to fetch child tuples, which are appended to the OS tree and
enqueued.

Two backends mirror the paper's two generation strategies (Section 6.3):

* :class:`DataGraphBackend` — walks the in-memory tuple-level data graph
  ("the OSs are generated much faster using the data graph");
* :class:`DatabaseBackend` — issues one join query per (parent tuple, child
  relation) through :class:`~repro.db.query.QueryInterface`, with I/O
  accounting ("directly from the database").

Both backends also implement the thresholded TOP-l fetch that prelim-l OS
generation (Algorithm 4, Avoidance Condition 2) needs.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.os_tree import ObjectSummary, OSNode
from repro.datagraph.graph import DataGraph
from repro.db.database import Database
from repro.db.query import QueryInterface
from repro.errors import SummaryError
from repro.ranking.store import ImportanceStore
from repro.schema_graph.gds import GDS, GDSNode, JunctionJoin, RefJoin, ReverseJoin


class GenerationBackend(Protocol):
    """Fetches child tuples for OS generation."""

    @property
    def db(self) -> Database:
        ...  # pragma: no cover

    def children(self, gds_child: GDSNode, parent: OSNode) -> list[int]:
        """Row ids of *gds_child*-relation tuples joining the parent tuple."""
        ...  # pragma: no cover

    def children_top(
        self,
        gds_child: GDSNode,
        parent: OSNode,
        store: ImportanceStore,
        threshold: float,
        limit: int,
    ) -> list[int]:
        """Avoidance-Condition-2 fetch: at most *limit* children whose local
        importance strictly exceeds *threshold*, best first."""
        ...  # pragma: no cover


def _origin_row(gds_child: GDSNode, parent: OSNode) -> int | None:
    """The row to exclude for co-author style joins (see JunctionJoin)."""
    join = gds_child.join
    if (
        isinstance(join, JunctionJoin)
        and join.exclude_origin
        and parent.parent is not None
        and parent.parent.table == join.target_table
    ):
        return parent.parent.row_id
    return None


class DataGraphBackend:
    """Child fetches over the prebuilt tuple-level data graph."""

    def __init__(self, db: Database, data_graph: DataGraph) -> None:
        self._db = db
        self.data_graph = data_graph
        self.nodes_visited = 0

    @property
    def db(self) -> Database:
        return self._db

    def children(self, gds_child: GDSNode, parent: OSNode) -> list[int]:
        assert gds_child.join is not None
        rows = self.data_graph.children_of(
            gds_child.join, parent.table, parent.row_id, _origin_row(gds_child, parent)
        )
        self.nodes_visited += len(rows)
        return rows

    def children_top(
        self,
        gds_child: GDSNode,
        parent: OSNode,
        store: ImportanceStore,
        threshold: float,
        limit: int,
    ) -> list[int]:
        rows = self.children(gds_child, parent)
        scored = [
            (store.local_importance(gds_child, row), -row, row)
            for row in rows
            if store.local_importance(gds_child, row) > threshold
        ]
        scored.sort(reverse=True)
        return [row for _score, _neg, row in scored[:limit]]


class DatabaseBackend:
    """Child fetches via per-join queries against the relational engine.

    Each call to :meth:`children` / :meth:`children_top` executes exactly one
    statement template (counting one I/O access), matching the paper's cost
    model: a junction hop is a single SQL join, and Avoidance Condition 2
    "still requires an I/O access even when it returns no results".
    """

    def __init__(self, query_interface: QueryInterface) -> None:
        self.qi = query_interface

    @property
    def db(self) -> Database:
        return self.qi.db

    @property
    def io_accesses(self) -> int:
        return self.qi.io_accesses

    def _junction_targets(
        self, join: JunctionJoin, junction_rows: list[int], origin: int | None
    ) -> list[int]:
        junction = self.db.table(join.junction_table)
        target = self.db.table(join.target_table)
        to_idx = junction.schema.column_index(join.to_column)
        children: list[int] = []
        for junction_row in junction_rows:
            pk = junction.row(junction_row)[to_idx]
            if pk is None:
                continue
            row = target.row_id_for_pk(pk)
            if join.exclude_origin and origin is not None and row == origin:
                continue
            children.append(row)
        return children

    def children(self, gds_child: GDSNode, parent: OSNode) -> list[int]:
        join = gds_child.join
        assert join is not None
        parent_table = self.db.table(parent.table)
        if isinstance(join, RefJoin):
            ref = parent_table.value(parent.row_id, join.fk_column)
            if ref is None:
                self.qi.io_accesses += 1  # the lookup still executes
                return []
            return self.qi.lookup_by_pk(join.target_table, ref)
        parent_pk = parent_table.pk_of_row(parent.row_id)
        if isinstance(join, ReverseJoin):
            return self.qi.select_where_eq(join.child_table, join.fk_column, parent_pk)
        if isinstance(join, JunctionJoin):
            junction_rows = self.qi.select_where_eq(
                join.junction_table, join.from_column, parent_pk
            )
            return self._junction_targets(
                join, junction_rows, _origin_row(gds_child, parent)
            )
        raise SummaryError(f"unknown join spec: {join!r}")  # pragma: no cover

    def children_top(
        self,
        gds_child: GDSNode,
        parent: OSNode,
        store: ImportanceStore,
        threshold: float,
        limit: int,
    ) -> list[int]:
        join = gds_child.join
        assert join is not None
        if isinstance(join, ReverseJoin):
            def score_of(table: str, row_id: int) -> float:
                return store.local_importance(gds_child, row_id)

            parent_pk = self.db.table(parent.table).pk_of_row(parent.row_id)
            return self.qi.select_top_where_eq(
                join.child_table,
                join.fk_column,
                parent_pk,
                score_of,
                threshold,
                limit,
            )
        # RefJoin and JunctionJoin: fetch (one statement) then filter/limit,
        # which is what the single SQL join with the li predicate would do.
        rows = self.children(gds_child, parent)
        scored = [
            (store.local_importance(gds_child, row), -row, row)
            for row in rows
            if store.local_importance(gds_child, row) > threshold
        ]
        scored.sort(reverse=True)
        return [row for _score, _neg, row in scored[:limit]]


def generate_os(
    tds_row_id: int,
    gds: GDS,
    backend: GenerationBackend,
    store: ImportanceStore,
    depth_limit: int | None = None,
    max_nodes: int | None = None,
) -> ObjectSummary:
    """Algorithm 5: generate the complete OS for a t_DS tuple.

    *gds* should already be θ-pruned (the engine does this); *depth_limit*
    implements the paper's footnote 1 — tuples at distance ≥ l from the root
    cannot participate in a connected size-l OS and may be excluded up
    front.  *max_nodes* is a safety valve for pathological fan-outs (not
    part of the paper; ``None`` disables it).
    """
    root_gds = gds.root
    root_weight = store.local_importance(root_gds, tds_row_id)
    root = OSNode(0, root_gds, tds_row_id, None, root_weight)
    queue: list[OSNode] = [root]
    cursor = 0
    next_uid = 1
    while cursor < len(queue):
        node = queue[cursor]
        cursor += 1
        if depth_limit is not None and node.depth >= depth_limit:
            continue
        for gds_child in node.gds.children:
            for row_id in backend.children(gds_child, node):
                child = OSNode(
                    next_uid,
                    gds_child,
                    row_id,
                    node,
                    store.local_importance(gds_child, row_id),
                )
                next_uid += 1
                node.children.append(child)
                queue.append(child)
                if max_nodes is not None and next_uid > max_nodes:
                    raise SummaryError(
                        f"OS exceeded max_nodes={max_nodes}; raise the limit or "
                        f"tighten theta/depth"
                    )
    return ObjectSummary(root, db=backend.db, kind="complete")
