"""Algorithm 3: the Update Top-Path-l greedy heuristic.

Repeatedly selects the path p_i with the largest *average importance per
tuple* AI(p_i) from the current forest, adds it to the size-l OS, and turns
the children of selected nodes into roots of new trees whose AI values no
longer include the removed prefix.  Selecting whole paths (rather than
single tuples) lets important deep tuples pull in their low-importance
connectors, which is why this heuristic empirically beats Bottom-Up Pruning
when monotonicity fails (Section 6.2).

Two variants are implemented:

* ``variant="naive"`` (default, reference semantics): when a new tree root
  appears, its entire subtree is rescanned to find the node with the best
  AI.  Worst case O(n·l).
* ``variant="optimized"``: the paper's s(v) optimisation — the best-AI node
  of each subtree is precomputed once; when v becomes a root only s(v)'s AI
  is recomputed.  The paper argues the argmax within a subtree is unchanged
  by prefix removal; that claim is heuristic (averages shift differently
  for different path lengths), so this variant may deviate — the ablation
  bench quantifies by how much while showing the speed-up.
"""

from __future__ import annotations

import numpy as np

from repro.core.os_tree import FlatOS, ObjectSummary, OSNode, SizeLResult, validate_l
from repro.errors import SummaryError
from repro.reliability.deadline import check_deadline
from repro.util.arrays import gather_ranges


def _prefix_sums(os_tree: ObjectSummary, eligible: set[int]) -> dict[int, float]:
    """uid → sum of weights from the OS root down to the node (inclusive)."""
    sums: dict[int, float] = {}
    for node in os_tree.nodes:  # BFS: parents first
        if node.uid not in eligible:
            continue
        parent_sum = sums[node.parent.uid] if node.parent is not None else 0.0
        sums[node.uid] = parent_sum + node.weight
    return sums


def _ai(
    node: OSNode,
    root: OSNode,
    prefix: dict[int, float],
) -> float:
    """AI(p_i) of *node* relative to the current tree root *root*."""
    above_root = prefix[root.uid] - root.weight
    length = node.depth - root.depth + 1
    return (prefix[node.uid] - above_root) / length


def top_path_size_l(
    os_tree: ObjectSummary | FlatOS,
    l: int,  # noqa: E741
    variant: str = "naive",
) -> SizeLResult:
    """Compute a size-l OS by repeatedly adding the best-average path.

    Accepts either representation; a columnar
    :class:`~repro.core.os_tree.FlatOS` runs over parallel arrays with
    vectorized subtree scans (identical selections, ties included).
    """
    validate_l(l)
    if variant not in ("naive", "optimized"):
        raise SummaryError(f"unknown top-path variant: {variant!r}")
    if isinstance(os_tree, FlatOS):
        return _top_path_size_l_flat(os_tree, l, variant)

    eligible = {node.uid for node in os_tree.nodes if node.depth < l}
    prefix = _prefix_sums(os_tree, eligible)

    if len(eligible) <= l:
        summary = os_tree.materialise_subset(set(eligible))
        return SizeLResult(
            summary=summary,
            selected_uids=set(eligible),
            importance=summary.total_importance(),
            algorithm=f"top_path[{variant}]",
            l=l,
            stats={"paths_selected": 0, "nodes_rescanned": 0},
        )

    # s(v) precomputation for the optimized variant: best-AI node (w.r.t. the
    # *original* root) in each subtree.  Reversed BFS is post-order.
    best_in_subtree: dict[int, int] = {}
    if variant == "optimized":
        for node in reversed(os_tree.nodes):
            if node.uid not in eligible:
                continue
            best_uid = node.uid
            best_score = _ai(node, os_tree.root, prefix)
            for child in node.children:
                if child.uid not in eligible:
                    continue
                candidate = best_in_subtree[child.uid]
                candidate_score = _ai(os_tree.node(candidate), os_tree.root, prefix)
                if candidate_score > best_score or (
                    candidate_score == best_score and candidate < best_uid
                ):
                    best_uid = candidate
                    best_score = candidate_score
            best_in_subtree[node.uid] = best_uid

    def subtree_argmax(root: OSNode) -> tuple[int, float]:
        """Scan *root*'s eligible subtree for the node with max AI."""
        nonlocal nodes_rescanned
        best_uid = root.uid
        best_score = _ai(root, root, prefix)
        stack = [root]
        while stack:
            node = stack.pop()
            nodes_rescanned += 1
            score = _ai(node, root, prefix)
            if score > best_score or (score == best_score and node.uid < best_uid):
                best_uid = node.uid
                best_score = score
            for child in node.children:
                if child.uid in eligible:
                    stack.append(child)
        return best_uid, best_score

    nodes_rescanned = 0
    # Active forest: root uid → (best node uid, best AI).
    active: dict[int, tuple[int, float]] = {}

    def register_root(root: OSNode) -> None:
        if variant == "optimized":
            best_uid = best_in_subtree[root.uid]
            active[root.uid] = (best_uid, _ai(os_tree.node(best_uid), root, prefix))
        else:
            active[root.uid] = subtree_argmax(root)

    register_root(os_tree.root)
    selected: set[int] = set()
    paths_selected = 0

    while len(selected) < l:
        check_deadline()  # per selected path: each iteration scans all roots
        if not active:
            raise SummaryError("top-path ran out of candidate trees")  # pragma: no cover
        # Max AI over active roots; ties broken by smallest best-node uid.
        winner_root_uid = min(
            active, key=lambda uid: (-active[uid][1], active[uid][0])
        )
        best_uid, _best_score = active.pop(winner_root_uid)
        winner_root = os_tree.node(winner_root_uid)
        path = [
            node
            for node in os_tree.node(best_uid).path_from_root()
            if node.depth >= winner_root.depth
        ]
        needed = l - len(selected)
        taken = path[:needed]  # "add first l - |size-l OS| nodes of p_i"
        selected.update(node.uid for node in taken)
        paths_selected += 1
        if len(selected) >= l:
            break
        # Children of removed nodes become roots of new trees.
        for node in taken:
            for child in node.children:
                if child.uid in eligible and child.uid not in selected:
                    register_root(child)

    summary = os_tree.materialise_subset(selected)
    return SizeLResult(
        summary=summary,
        selected_uids=selected,
        importance=summary.total_importance(),
        algorithm=f"top_path[{variant}]",
        l=l,
        stats={"paths_selected": paths_selected, "nodes_rescanned": nodes_rescanned},
    )


def _top_path_size_l_flat(
    flat: FlatOS,
    l: int,  # noqa: E741
    variant: str,
) -> SizeLResult:
    """Update Top-Path-l over :class:`FlatOS` parallel arrays.

    Prefix sums arrive from one level-synchronous sweep, subtree rescans are
    vectorized gathers over contiguous child ranges, and AI values are array
    arithmetic; selection order (ties included) matches the node-based
    version exactly.
    """
    n_el = flat.eligible_count(l)
    parent = flat.parent
    prefix_arr = flat.prefix_weights(limit=n_el)  # only the eligible prefix is read

    if n_el <= l:
        selected = set(range(n_el))
        summary = flat.materialise_subset(selected)
        return SizeLResult(
            summary=summary,
            selected_uids=selected,
            importance=summary.total_importance(),
            algorithm=f"top_path[{variant}]",
            l=l,
            stats={"paths_selected": 0, "nodes_rescanned": 0},
        )

    child_lo_arr, child_hi_arr = flat.eligible_child_bounds(l)
    # Eligible-subtree sizes pick the scan strategy (scalar vs vector) below.
    subtree_size = flat.eligible_subtree_sizes(l)

    # Scalar lookups run over plain lists: numpy scalar indexing costs more
    # than it saves for the many tiny subtrees this loop inspects.
    child_lo = child_lo_arr.tolist()
    child_hi = child_hi_arr.tolist()
    depth = flat.depth[:n_el].tolist()
    prefix = prefix_arr[:n_el].tolist()
    weight = flat.weight[:n_el].tolist()

    def ai_scalar(node: int, root: int, above_root: float) -> float:
        return (prefix[node] - above_root) / (depth[node] - depth[root] + 1)

    # s(v) precomputation for the optimized variant: best-AI node (w.r.t.
    # the *original* root) in each subtree, children folded in index order
    # with the same strict-better / smaller-index tie rule.
    best_in_subtree: list[int] = []
    if variant == "optimized":
        # above_root of the original root is 0, so AI(v) = prefix / (depth+1)
        ai0 = (prefix_arr[:n_el] / (np.asarray(depth) + 1.0)).tolist()
        best_in_subtree = list(range(n_el))
        for index in range(n_el - 1, -1, -1):
            best_index = index
            best_score = ai0[index]
            for c in range(child_lo[index], child_hi[index]):
                candidate = best_in_subtree[c]
                candidate_score = ai0[candidate]
                if candidate_score > best_score or (
                    candidate_score == best_score and candidate < best_index
                ):
                    best_index = candidate
                    best_score = candidate_score
            best_in_subtree[index] = best_index

    nodes_rescanned = 0
    _VECTOR_SCAN_MIN_NODES = 256  # below this, Python beats numpy call overhead

    def subtree_argmax_vector(root: int) -> tuple[int, float]:
        """One vectorized gather per level of *root*'s eligible subtree."""
        members = [np.array([root], dtype=np.int64)]
        frontier = members[0]
        while frontier.size:
            lo = child_lo_arr[frontier]
            _rep, frontier = gather_ranges(lo, child_hi_arr[frontier] - lo)
            if frontier.size:
                members.append(frontier)
        indices = np.concatenate(members)
        above_root = prefix[root] - weight[root]
        scores = (prefix_arr[indices] - above_root) / (
            flat.depth[indices] - depth[root] + 1
        )
        winner = np.lexsort((indices, -scores))[0]  # max AI, ties → min index
        return int(indices[winner]), float(scores[winner])

    def subtree_argmax(root: int) -> tuple[int, float]:
        """Scan *root*'s eligible subtree for the node with max AI."""
        nonlocal nodes_rescanned
        nodes_rescanned += int(subtree_size[root])
        if subtree_size[root] >= _VECTOR_SCAN_MIN_NODES:
            return subtree_argmax_vector(root)
        above_root = prefix[root] - weight[root]
        best_index = root
        best_score = ai_scalar(root, root, above_root)
        stack = [root]
        while stack:
            node = stack.pop()
            score = ai_scalar(node, root, above_root)
            if score > best_score or (score == best_score and node < best_index):
                best_index = node
                best_score = score
            stack.extend(range(child_lo[node], child_hi[node]))
        return best_index, best_score

    # Active forest: root index → (best node index, best AI).
    active: dict[int, tuple[int, float]] = {}

    def register_root(root: int) -> None:
        if variant == "optimized":
            best_index = best_in_subtree[root]
            above_root = prefix[root] - weight[root]
            active[root] = (best_index, ai_scalar(best_index, root, above_root))
        else:
            active[root] = subtree_argmax(root)

    register_root(0)
    selected = set()
    paths_selected = 0

    while len(selected) < l:
        check_deadline()  # per selected path: each iteration scans all roots
        if not active:
            raise SummaryError("top-path ran out of candidate trees")  # pragma: no cover
        # Max AI over active roots; ties broken by smallest best-node index.
        winner_root = min(active, key=lambda idx: (-active[idx][1], active[idx][0]))
        best_index, _best_score = active.pop(winner_root)
        path: list[int] = []
        node = best_index
        while node >= winner_root:  # ancestors of best down to the tree root
            path.append(node)
            if node == winner_root:
                break
            node = int(parent[node])
        path.reverse()
        needed = l - len(selected)
        taken = path[:needed]  # "add first l - |size-l OS| nodes of p_i"
        selected.update(taken)
        paths_selected += 1
        if len(selected) >= l:
            break
        # Children of removed nodes become roots of new trees.
        for index in taken:
            for child in range(int(child_lo[index]), int(child_hi[index])):
                if child not in selected:
                    register_root(child)

    summary = flat.materialise_subset(selected)
    return SizeLResult(
        summary=summary,
        selected_uids=selected,
        importance=summary.total_importance(),
        algorithm=f"top_path[{variant}]",
        l=l,
        stats={"paths_selected": paths_selected, "nodes_rescanned": nodes_rescanned},
    )
