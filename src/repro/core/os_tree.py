"""Object Summary trees.

An OS is a tree of *tuple occurrences*: the same database tuple may appear
under several branches (Michalis Faloutsos appears as Co-Author under many of
Christos's papers) and every occurrence is a distinct node with its own
weight.  Node weights are local importances Im(OS, t_i) = Im(t_i) · Af(t_i)
(Equation 3); the importance of any sub-summary is the sum of its node
weights (Equation 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SummaryError
from repro.schema_graph.gds import GDS, GDSNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database


class OSNode:
    """One tuple occurrence in an OS tree."""

    __slots__ = ("uid", "gds", "row_id", "parent", "children", "weight", "depth")

    def __init__(
        self,
        uid: int,
        gds: GDSNode,
        row_id: int,
        parent: "OSNode | None",
        weight: float,
    ) -> None:
        self.uid = uid
        self.gds = gds
        self.row_id = row_id
        self.parent = parent
        self.children: list[OSNode] = []
        self.weight = weight
        self.depth = 0 if parent is None else parent.depth + 1

    @property
    def table(self) -> str:
        return self.gds.table

    @property
    def label(self) -> str:
        return self.gds.label

    def is_leaf(self) -> bool:
        return not self.children

    def path_from_root(self) -> list["OSNode"]:
        """Nodes from the OS root down to (and including) this node."""
        path: list[OSNode] = []
        node: OSNode | None = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path

    def __repr__(self) -> str:
        return (
            f"OSNode(uid={self.uid}, {self.label}#{self.row_id}, "
            f"w={self.weight:.3f}, depth={self.depth})"
        )


class ObjectSummary:
    """An OS (complete, prelim-l, or a size-l subset materialised as a tree).

    Holds references to the database (for rendering attribute values) and
    exposes the traversals the size-l algorithms need.  ``nodes`` is in BFS
    order — the order Algorithm 5's breadth-first generation creates them.
    """

    def __init__(
        self,
        root: OSNode,
        db: "Database | None" = None,
        kind: str = "complete",
    ) -> None:
        self.root = root
        self.db = db
        self.kind = kind
        self.nodes: list[OSNode] = self._bfs_order()
        self._by_uid = {node.uid: node for node in self.nodes}
        if len(self._by_uid) != len(self.nodes):
            raise SummaryError("duplicate node uids in ObjectSummary")

    def _bfs_order(self) -> list[OSNode]:
        order: list[OSNode] = []
        queue = [self.root]
        cursor = 0
        while cursor < len(queue):
            node = queue[cursor]
            cursor += 1
            order.append(node)
            queue.extend(node.children)
        return order

    # ------------------------------------------------------------------ #
    # Size / structure
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of tuple occurrences (the paper's |OS|)."""
        return len(self.nodes)

    def node(self, uid: int) -> OSNode:
        try:
            return self._by_uid[uid]
        except KeyError:
            raise SummaryError(f"no OS node with uid {uid}") from None

    def has_node(self, uid: int) -> bool:
        return uid in self._by_uid

    def leaves(self) -> list[OSNode]:
        return [node for node in self.nodes if node.is_leaf()]

    def max_depth(self) -> int:
        return max(node.depth for node in self.nodes)

    def post_order(self) -> Iterator[OSNode]:
        """Children-before-parents traversal (drives the DP)."""
        return reversed(self.nodes)  # BFS reversed is a valid post-order

    def subtree_sizes(self) -> dict[int, int]:
        """uid → number of nodes in that node's subtree (itself included)."""
        sizes: dict[int, int] = {}
        for node in self.post_order():
            sizes[node.uid] = 1 + sum(sizes[child.uid] for child in node.children)
        return sizes

    def total_importance(self) -> float:
        """Im of the whole summary (Equation 2 over all nodes)."""
        return sum(node.weight for node in self.nodes)

    # ------------------------------------------------------------------ #
    # Subset materialisation
    # ------------------------------------------------------------------ #
    def materialise_subset(self, selected_uids: set[int], kind: str = "size-l") -> "ObjectSummary":
        """Build a new ObjectSummary restricted to *selected_uids*.

        The subset must contain the root and be connected (every selected
        node's parent selected) — the stand-alone requirement of
        Definition 1; violations raise :class:`~repro.errors.SummaryError`.
        """
        if self.root.uid not in selected_uids:
            raise SummaryError("size-l subset must contain the OS root (t_DS)")
        clones: dict[int, OSNode] = {}
        for node in self.nodes:  # BFS order guarantees parents first
            if node.uid not in selected_uids:
                continue
            if node.parent is None:
                parent_clone = None
            else:
                parent_clone = clones.get(node.parent.uid)
                if parent_clone is None:
                    raise SummaryError(
                        f"size-l subset is disconnected: node {node.uid} selected "
                        f"without its parent {node.parent.uid}"
                    )
            clone = OSNode(node.uid, node.gds, node.row_id, parent_clone, node.weight)
            if parent_clone is not None:
                parent_clone.children.append(clone)
            clones[node.uid] = clone
        missing = selected_uids - set(clones)
        if missing:
            raise SummaryError(f"selected uids not present in OS: {sorted(missing)}")
        return ObjectSummary(clones[self.root.uid], db=self.db, kind=kind)

    # ------------------------------------------------------------------ #
    # Rendering (the paper's Examples 4 and 5 format)
    # ------------------------------------------------------------------ #
    def node_text(self, node: OSNode) -> str:
        """Render one node as ``Label: attr. attr.`` using its G_DS attributes."""
        if self.db is None:
            return f"{node.label}#{node.row_id}"
        table = self.db.table(node.table)
        parts: list[str] = []
        for attr in node.gds.attributes:
            value = table.value(node.row_id, attr)
            if value is None:
                continue
            parts.append(str(value))
        body = ", ".join(parts) if parts else f"#{table.pk_of_row(node.row_id)}"
        return f"{node.label}: {body}"

    def render(self, max_nodes: int | None = None, indent: str = "..") -> str:
        """Indented text rendering in the style of the paper's Example 4/5."""
        lines: list[str] = []
        budget = self.size if max_nodes is None else max_nodes

        def visit(node: OSNode) -> None:
            nonlocal budget
            if budget <= 0:
                return
            budget -= 1
            prefix = indent * node.depth
            lines.append(f"{prefix}{self.node_text(node)}")
            for child in node.children:
                visit(child)

        visit(self.root)
        if max_nodes is not None and self.size > max_nodes:
            lines.append(f"... ({self.size - max_nodes} more tuples)")
        return "\n".join(lines)

    def word_count(self) -> int:
        """Total rendered word count (drives the word-budget extension)."""
        return sum(len(self.node_text(node).split()) for node in self.nodes)

    def __repr__(self) -> str:
        return (
            f"ObjectSummary(kind={self.kind!r}, root={self.root.label!r}, "
            f"size={self.size})"
        )


class FlatOS:
    """A columnar Object Summary: parallel arrays instead of node objects.

    Index ``i`` identifies one tuple occurrence; indices are assigned in
    the exact BFS order the legacy :class:`OSNode` path assigns uids, so a
    flat index *is* the corresponding legacy uid and size-l selections are
    directly comparable across the two representations.

    Invariants (guaranteed by
    :func:`repro.core.generation.generate_os_flat`):

    * ``parent[0] == -1`` (the t_DS root) and ``parent`` is non-decreasing,
      so every node's children occupy one contiguous index range;
    * ``depth`` is non-decreasing, so each BFS level — and the depth-< l
      eligible set of the size-l algorithms — is a prefix/slice.

    Because node identity is purely positional, many FlatOS trees pack into
    one parallel-array **arena** (:meth:`pack_arena` /
    :meth:`from_arena`): tree ``i`` of the arena is the slice
    ``indptr[i]:indptr[i + 1]`` of every column.  The slices are views, so
    unpacking from a ``numpy`` memory map is zero-copy — the snapshot store
    (:mod:`repro.persist`) serves complete OSs straight off disk this way.
    """

    #: The parallel arrays an arena concatenates, in canonical order.
    ARENA_FIELDS = ("parent", "depth", "gds_node_id", "row_id", "weight")

    __slots__ = (
        "parent",
        "depth",
        "gds_node_id",
        "row_id",
        "weight",
        "gds",
        "db",
        "kind",
        "_gds_by_id",
        "_child_bounds",
    )

    def __init__(
        self,
        parent: np.ndarray,
        depth: np.ndarray,
        gds_node_id: np.ndarray,
        row_id: np.ndarray,
        weight: np.ndarray,
        gds: GDS,
        db: "Database | None" = None,
        kind: str = "complete",
    ) -> None:
        n = len(parent)
        if not (len(depth) == len(gds_node_id) == len(row_id) == len(weight) == n):
            raise SummaryError("FlatOS parallel arrays must have equal length")
        if n == 0 or parent[0] != -1:
            raise SummaryError("FlatOS must start with the t_DS root (parent -1)")
        self.parent = parent
        self.depth = depth
        self.gds_node_id = gds_node_id
        self.row_id = row_id
        self.weight = weight
        self.gds = gds
        self.db = db
        self.kind = kind
        self._gds_by_id: dict[int, GDSNode] = {
            node.node_id: node for node in gds.nodes()
        }
        self._child_bounds: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Size / structure
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of tuple occurrences (the paper's |OS|)."""
        return len(self.parent)

    def gds_node(self, index: int) -> GDSNode:
        """The G_DS node of the tuple occurrence at *index*."""
        return self._gds_by_id[int(self.gds_node_id[index])]

    def table_of(self, index: int) -> str:
        return self.gds_node(index).table

    def max_depth(self) -> int:
        return int(self.depth[-1])  # depth is non-decreasing

    def total_importance(self) -> float:
        """Im of the whole summary (Equation 2 over all nodes)."""
        return float(self.weight.sum())

    def child_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Arrays ``(start, end)``: node i's children are ``start[i]:end[i]``.

        Valid because ``parent`` is non-decreasing in BFS order; computed
        once and cached.
        """
        if self._child_bounds is None:
            n = self.size
            counts = np.bincount(self.parent[1:], minlength=n)
            ends = np.cumsum(counts) + 1
            self._child_bounds = (ends - counts, ends)
        return self._child_bounds

    def eligible_count(self, l: int) -> int:  # noqa: E741 - paper notation
        """Nodes at depth < l — a prefix, because ``depth`` is sorted."""
        return int(np.searchsorted(self.depth, l, side="left"))

    def eligible_child_bounds(
        self, l: int  # noqa: E741 - paper notation
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`child_bounds` clipped to the depth-< l eligible prefix."""
        n_el = self.eligible_count(l)
        starts, ends = self.child_bounds()
        return np.minimum(starts[:n_el], n_el), np.minimum(ends[:n_el], n_el)

    def eligible_subtree_sizes(self, l: int) -> np.ndarray:  # noqa: E741
        """Per-node subtree sizes restricted to the eligible prefix.

        One reversed level-synchronous sweep: children of level-d nodes all
        live in level d+1, so each level is folded into its parents with a
        single scatter-add.
        """
        n_el = self.eligible_count(l)
        sizes = np.ones(n_el, dtype=np.int64)
        level_starts = np.searchsorted(self.depth[:n_el], np.arange(1, l + 1))
        for level in range(len(level_starts) - 1, 0, -1):
            lo, hi = level_starts[level - 1], level_starts[level]
            if lo < hi:
                np.add.at(sizes, self.parent[lo:hi], sizes[lo:hi])
        return sizes

    def prefix_weights(self, limit: int | None = None) -> np.ndarray:
        """Root-to-node weight sums, one level-synchronous sweep.

        *limit* restricts the sweep to the first *limit* nodes (a valid cut
        because BFS order puts every parent before its children) — callers
        that only need the depth-< l eligible prefix avoid touching the
        rest of a large OS.
        """
        n = self.size if limit is None else min(limit, self.size)
        sums = np.empty(n, dtype=np.float64)
        sums[0] = self.weight[0]
        level_starts = np.searchsorted(
            self.depth[:n], np.arange(1, self.max_depth() + 2), side="left"
        )
        start = 1
        for end in level_starts:
            if end > start:
                sums[start:end] = (
                    self.weight[start:end] + sums[self.parent[start:end]]
                )
            start = end
            if start >= n:
                break
        return sums

    # ------------------------------------------------------------------ #
    # Arena pack/unpack (the snapshot store's on-disk layout)
    # ------------------------------------------------------------------ #
    @staticmethod
    def pack_arena(trees: "Sequence[FlatOS]") -> dict[str, np.ndarray]:
        """Concatenate *trees* into one parallel-array arena.

        Returns the five :attr:`ARENA_FIELDS` columns plus ``indptr``
        (``int64``, length ``len(trees) + 1``): tree ``i`` occupies
        ``indptr[i]:indptr[i + 1]`` of every column.  ``parent`` values stay
        tree-local (each slice starts with the ``-1`` root), so a slice is
        a complete, self-contained FlatOS.
        """
        sizes = np.fromiter((tree.size for tree in trees), dtype=np.int64, count=len(trees))
        indptr = np.zeros(len(trees) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        arena: dict[str, np.ndarray] = {"indptr": indptr}
        empties = {
            "parent": np.int32, "depth": np.int32, "gds_node_id": np.int32,
            "row_id": np.int32, "weight": np.float64,
        }
        for name in FlatOS.ARENA_FIELDS:
            if trees:
                arena[name] = np.concatenate([getattr(tree, name) for tree in trees])
            else:
                arena[name] = np.empty(0, dtype=empties[name])
        return arena

    @classmethod
    def from_arena(
        cls,
        arena: "Mapping[str, np.ndarray]",
        index: int,
        gds: GDS,
        db: "Database | None" = None,
        kind: str = "complete",
    ) -> "FlatOS":
        """Tree *index* of a packed arena, as zero-copy column slices.

        *arena* is any mapping holding ``indptr`` plus the
        :attr:`ARENA_FIELDS` columns — in particular the memory-mapped
        arrays of an opened snapshot.  The slices share the arena's storage
        (read-only when the arena is an ``mmap_mode="r"`` load), which is
        fine: nothing in the library mutates FlatOS columns after
        construction.
        """
        indptr = arena["indptr"]
        if not 0 <= index < len(indptr) - 1:
            raise SummaryError(
                f"arena tree index out of range: {index} (arena holds "
                f"{len(indptr) - 1} trees)"
            )
        lo, hi = int(indptr[index]), int(indptr[index + 1])
        return cls(
            parent=arena["parent"][lo:hi],
            depth=arena["depth"][lo:hi],
            gds_node_id=arena["gds_node_id"][lo:hi],
            row_id=arena["row_id"][lo:hi],
            weight=arena["weight"][lo:hi],
            gds=gds,
            db=db,
            kind=kind,
        )

    # ------------------------------------------------------------------ #
    # Interop with the OSNode representation
    # ------------------------------------------------------------------ #
    def to_object_summary(self, kind: str | None = None) -> ObjectSummary:
        """Materialise the full tree as a legacy :class:`ObjectSummary`.

        Keeps rendering, export, and the brute-force oracle working against
        flat-generated OSs; uid == flat index.
        """
        return self.materialise_subset(
            range(self.size), kind=self.kind if kind is None else kind
        )

    def materialise_subset(
        self, selected: Iterable[int], kind: str = "size-l"
    ) -> ObjectSummary:
        """Build an :class:`ObjectSummary` restricted to *selected* indices.

        The subset must contain the root (index 0) and be connected, as
        Definition 1 requires; uids of the produced nodes are flat indices.
        """
        order = sorted(int(i) for i in selected)  # ascending == parents first
        if not order or order[0] != 0:
            raise SummaryError("size-l subset must contain the OS root (t_DS)")
        nodes: dict[int, OSNode] = {}
        for index in order:
            if index >= self.size:
                raise SummaryError(f"selected index not present in OS: {index}")
            parent_index = int(self.parent[index])
            if parent_index < 0:
                parent_node = None
            else:
                parent_node = nodes.get(parent_index)
                if parent_node is None:
                    raise SummaryError(
                        f"size-l subset is disconnected: node {index} selected "
                        f"without its parent {parent_index}"
                    )
            node = OSNode(
                index,
                self.gds_node(index),
                int(self.row_id[index]),
                parent_node,
                float(self.weight[index]),
            )
            if parent_node is not None:
                parent_node.children.append(node)
            nodes[index] = node
        return ObjectSummary(nodes[0], db=self.db, kind=kind)

    def __repr__(self) -> str:
        return (
            f"FlatOS(kind={self.kind!r}, root={self.gds.root.label!r}, "
            f"size={self.size})"
        )


@dataclass
class SizeLResult:
    """Outcome of a size-l computation.

    ``summary`` is the selected subtree materialised as its own
    :class:`ObjectSummary`; ``importance`` is Im(S) (Equation 2);
    ``stats`` carries algorithm-specific counters (heap operations, DP cell
    updates, I/O accesses, elapsed seconds) for the efficiency experiments.
    """

    summary: ObjectSummary
    selected_uids: set[int]
    importance: float
    algorithm: str
    l: int  # noqa: E741 - paper notation
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.selected_uids)

    def render(self) -> str:
        return self.summary.render()


def validate_l(l: object) -> int:  # noqa: E741 - paper notation
    """Validate a summary size parameter, returning it as an int."""
    from repro.errors import InvalidSizeError

    if not isinstance(l, int) or isinstance(l, bool) or l < 1:
        raise InvalidSizeError(l)
    return l
