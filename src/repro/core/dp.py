"""Algorithm 1: the optimal size-l OS via dynamic programming.

For every node v of the OS (bottom-up) we compute ``S_{v,i}``: the best
connected subtree rooted at v with exactly i nodes, for i up to
min(l − d(v), |subtree(v)|) — nodes deeper than l − 1 cannot belong to any
connected size-l OS containing the root (the complete root-to-v path must be
included), exactly the paper's depth argument.

The paper describes the per-node step as "examine all possible combinations
of v's children and number of nodes to be selected from their subtrees".
Enumerating compositions literally is exponential in the child count; the
equivalent polynomial formulation folds children in one at a time with a
knapsack merge (``m_k(j)`` = best weight using j nodes from the first k
child subtrees).  The merge explores the same combination space, so
Lemma 1's optimality proof carries over unchanged — and
:mod:`repro.core.brute_force` verifies it in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.core.os_tree import FlatOS, ObjectSummary, SizeLResult, validate_l
from repro.reliability.deadline import CHECK_MASK, check_deadline

NEG_INF = float("-inf")


def optimal_size_l(
    os_tree: ObjectSummary | FlatOS, l: int  # noqa: E741
) -> SizeLResult:
    """Compute the optimal size-l OS of *os_tree* (Lemma 1: exact).

    Accepts either representation: a columnar
    :class:`~repro.core.os_tree.FlatOS` runs the array-based DP (identical
    selections, vectorized knapsack merges), a legacy
    :class:`~repro.core.os_tree.ObjectSummary` the original node-based one.

    When the OS has at most l reachable nodes (after the depth-< l filter),
    all of them are returned — a size-min(l, n) OS, matching how the paper's
    experiments handle small OSs ("the smaller the OS is in comparison to l
    the more accurate our algorithms are"; at |OS| ≤ l every method returns
    the whole OS).
    """
    validate_l(l)
    if isinstance(os_tree, FlatOS):
        return _optimal_size_l_flat(os_tree, l)
    eligible = [node for node in os_tree.nodes if node.depth < l]
    eligible_uids = {node.uid for node in eligible}

    if len(eligible) <= l:
        selected = set(eligible_uids)
        summary = os_tree.materialise_subset(selected)
        return SizeLResult(
            summary=summary,
            selected_uids=selected,
            importance=summary.total_importance(),
            algorithm="dp",
            l=l,
            stats={"cell_updates": 0, "eligible_nodes": len(eligible)},
        )

    # Subtree sizes restricted to eligible nodes.
    sizes: dict[int, int] = {}
    for node in reversed(eligible):  # reversed BFS = post-order
        sizes[node.uid] = 1 + sum(
            sizes[child.uid] for child in node.children if child.uid in eligible_uids
        )

    best: dict[int, list[float]] = {}
    # choices[uid][k][j] = nodes allocated to the k-th eligible child when j
    # nodes total are drawn from the first k+1 child subtrees.
    choices: dict[int, list[list[int]]] = {}
    eligible_children: dict[int, list] = {}
    cell_updates = 0

    for visited, node in enumerate(reversed(eligible)):
        if visited & CHECK_MASK == 0:
            check_deadline()  # coarse: outer per-node loop only, never the merge
        cap = min(l - node.depth, sizes[node.uid])
        children = [c for c in node.children if c.uid in eligible_uids]
        eligible_children[node.uid] = children
        # m[j]: best weight using exactly j nodes from merged child subtrees,
        # j in [0, cap - 1] (node itself consumes one slot).
        m = [NEG_INF] * cap
        m[0] = 0.0
        allocations: list[list[int]] = []
        for child in children:
            child_best = best[child.uid]
            child_cap = len(child_best) - 1
            new_m = [NEG_INF] * cap
            alloc = [0] * cap
            for j in range(cap):
                best_val = m[j]  # t = 0: take nothing from this child
                best_t = 0
                top_t = min(j, child_cap)
                for t in range(1, top_t + 1):
                    prev = m[j - t]
                    if prev == NEG_INF:
                        continue
                    val = prev + child_best[t]
                    cell_updates += 1
                    if val > best_val:
                        best_val = val
                        best_t = t
                new_m[j] = best_val
                alloc[j] = best_t
            m = new_m
            allocations.append(alloc)
        best[node.uid] = [NEG_INF] + [
            (node.weight + m[i - 1]) if m[i - 1] != NEG_INF else NEG_INF
            for i in range(1, cap + 1)
        ]
        choices[node.uid] = allocations

    root = os_tree.root
    target = min(l, sizes[root.uid])
    root_best = best[root.uid]
    if target >= len(root_best) or root_best[target] == NEG_INF:
        # Cannot happen on a connected tree, but guard against misuse.
        target = max(i for i in range(1, len(root_best)) if root_best[i] != NEG_INF)

    selected: set[int] = set()

    def reconstruct(uid: int, count: int) -> None:
        selected.add(uid)
        remaining = count - 1
        allocations = choices[uid]
        children = eligible_children[uid]
        # Replay the merge backwards: the k-th allocation table was computed
        # with budget j = nodes drawn from the first k+1 children.
        for k in range(len(children) - 1, -1, -1):
            taken = allocations[k][remaining]
            if taken > 0:
                reconstruct(children[k].uid, taken)
            remaining -= taken
        assert remaining == 0, "DP reconstruction did not consume its budget"

    reconstruct(root.uid, target)
    summary = os_tree.materialise_subset(selected)
    importance = summary.total_importance()
    assert abs(importance - root_best[target]) < 1e-6 * max(1.0, abs(importance)), (
        "DP table value disagrees with reconstructed subtree weight"
    )
    return SizeLResult(
        summary=summary,
        selected_uids=selected,
        importance=importance,
        algorithm="dp",
        l=l,
        stats={"cell_updates": cell_updates, "eligible_nodes": len(eligible)},
    )


#: Budget-axis width above which the knapsack merge switches from scalar
#: Python (faster for the tiny tables typical of l <= ~50) to numpy slices.
_VECTOR_MERGE_MIN_CAP = 64


def _optimal_size_l_flat(flat: FlatOS, l: int) -> SizeLResult:  # noqa: E741
    """The DP over :class:`FlatOS` parallel arrays.

    Same recurrence and tie-breaking as the node-based version (children
    folded in ascending index order, strictly-better-only updates).  All
    tree-shaped precomputation (eligible prefix, subtree sizes, child
    ranges, caps) is vectorized; the per-node knapsack merge runs over flat
    Python lists for small budgets — numpy call overhead dominates below
    ~64 cells — and switches to vectorized slice updates for large ones.
    """
    n_el = flat.eligible_count(l)  # eligible (depth < l) nodes are a prefix

    if n_el <= l:
        selected = set(range(n_el))
        summary = flat.materialise_subset(selected)
        return SizeLResult(
            summary=summary,
            selected_uids=selected,
            importance=summary.total_importance(),
            algorithm="dp",
            l=l,
            stats={"cell_updates": 0, "eligible_nodes": n_el},
        )

    child_lo_arr, child_hi_arr = flat.eligible_child_bounds(l)
    child_lo = child_lo_arr.tolist()
    child_hi = child_hi_arr.tolist()
    sizes = flat.eligible_subtree_sizes(l)
    caps = np.minimum(l - flat.depth[:n_el].astype(np.int64), sizes).tolist()
    weights = flat.weight[:n_el].tolist()
    # best[i][t]: best weight of a t-node subtree rooted at i (index 0 = -inf)
    best: list[list[float]] = [None] * n_el  # type: ignore[list-item]
    choices: list[list[list[int]]] = [None] * n_el  # type: ignore[list-item]
    cell_updates = 0

    for i in range(n_el - 1, -1, -1):
        if i & CHECK_MASK == 0:
            check_deadline()  # coarse: outer per-node loop only, never the merge
        lo, hi = child_lo[i], child_hi[i]
        if lo == hi:  # leaf: cap is 1, no merge
            best[i] = [NEG_INF, weights[i]]
            choices[i] = []
            continue
        cap = caps[i]
        # m[j]: best weight using exactly j nodes from merged child subtrees.
        m = [NEG_INF] * cap
        m[0] = 0.0
        allocations: list[list[int]] = []
        use_vector = cap >= _VECTOR_MERGE_MIN_CAP
        for c in range(lo, hi):
            child_best = best[c]
            child_cap = len(child_best) - 1
            top_t = min(child_cap, cap - 1)
            if use_vector:
                m_arr = np.array(m)
                new_m = m_arr.copy()  # t = 0: take nothing from this child
                alloc_arr = np.zeros(cap, dtype=np.int64)
                cb = np.array(child_best)
                for t in range(1, top_t + 1):
                    candidates = m_arr[: cap - t] + cb[t]
                    cell_updates += int(np.count_nonzero(m_arr[: cap - t] > NEG_INF))
                    better = candidates > new_m[t:]
                    new_m[t:][better] = candidates[better]
                    alloc_arr[t:][better] = t
                m = new_m.tolist()
                allocations.append(alloc_arr.tolist())
                continue
            new_m = [NEG_INF] * cap
            alloc = [0] * cap
            for j in range(cap):
                best_val = m[j]  # t = 0: take nothing from this child
                best_t = 0
                for t in range(1, min(j, child_cap) + 1):
                    prev = m[j - t]
                    if prev == NEG_INF:
                        continue
                    val = prev + child_best[t]
                    cell_updates += 1
                    if val > best_val:
                        best_val = val
                        best_t = t
                new_m[j] = best_val
                alloc[j] = best_t
            m = new_m
            allocations.append(alloc)
        w = weights[i]
        best[i] = [NEG_INF] + [
            (w + m[k]) if m[k] != NEG_INF else NEG_INF for k in range(cap)
        ]
        choices[i] = allocations

    target = min(l, int(sizes[0]))
    root_best = best[0]
    if target >= len(root_best) or root_best[target] == NEG_INF:
        # Cannot happen on a connected tree, but guard against misuse.
        target = max(t for t in range(1, len(root_best)) if root_best[t] != NEG_INF)

    selected: set[int] = set()

    def reconstruct(index: int, count: int) -> None:
        selected.add(index)
        remaining = count - 1
        allocations = choices[index]
        first_child = int(child_lo[index])
        for k in range(len(allocations) - 1, -1, -1):
            taken = int(allocations[k][remaining])
            if taken > 0:
                reconstruct(first_child + k, taken)
            remaining -= taken
        assert remaining == 0, "DP reconstruction did not consume its budget"

    reconstruct(0, target)
    summary = flat.materialise_subset(selected)
    importance = summary.total_importance()
    assert abs(importance - root_best[target]) < 1e-6 * max(1.0, abs(importance)), (
        "DP table value disagrees with reconstructed subtree weight"
    )
    return SizeLResult(
        summary=summary,
        selected_uids=selected,
        importance=importance,
        algorithm="dp",
        l=l,
        stats={"cell_updates": cell_updates, "eligible_nodes": n_el},
    )
