"""Word-budget summaries (Section 7 future work, implemented).

The paper: "the selection of an appropriate value for l is an interesting
problem; a natural approach is to select l based on the amount of attributes
or words it will result, e.g. 20 attributes or 50 words."

:func:`word_budget_summary` reformulates size-l selection under a rendered
word budget: it finds the largest l whose size-l OS renders within the
budget (binary search over l, reusing any of the size-l algorithms), then
returns that summary.  This keeps Definition 1's connectivity semantics
while budgeting what the user actually sees.
"""

from __future__ import annotations

from typing import Callable

from repro.core.os_tree import ObjectSummary, SizeLResult
from repro.core.top_path import top_path_size_l
from repro.errors import SummaryError

SizeLAlgorithm = Callable[[ObjectSummary, int], SizeLResult]


def word_budget_summary(
    os_tree: ObjectSummary,
    word_budget: int,
    algorithm: SizeLAlgorithm = top_path_size_l,
) -> SizeLResult:
    """Largest-l summary whose rendered word count fits *word_budget*.

    Note that summary word count is not strictly monotone in l for greedy
    algorithms (different l may select different branches), so the binary
    search treats the algorithm as a black box and verifies the final
    candidate; the root-only summary is the fallback when even l = 1
    exceeds the budget.
    """
    if word_budget < 1:
        raise SummaryError(f"word budget must be >= 1, got {word_budget}")
    if os_tree.db is None:
        raise SummaryError("word-budget summaries need a database for rendering")

    low, high = 1, os_tree.size
    best: SizeLResult | None = None
    while low <= high:
        mid = (low + high) // 2
        candidate = algorithm(os_tree, mid)
        if candidate.summary.word_count() <= word_budget:
            if best is None or candidate.size > best.size:
                best = candidate
            low = mid + 1
        else:
            high = mid - 1
    if best is None:
        # Even a single tuple busts the budget; return the root-only summary
        # (a stand-alone OS must contain t_DS, so this is the minimum).
        best = algorithm(os_tree, 1)
    best.stats["word_budget"] = word_budget
    best.stats["word_count"] = best.summary.word_count()
    return best
