"""The public size-l OS query engine.

Ties every subsystem together: keyword search resolves Data Subjects, the
θ-pruned and annotated G_DS drives OS generation (complete or prelim-l,
data-graph or database backend), and the chosen algorithm (DP, Bottom-Up,
Top-Path) produces the size-l OSs.  This is the paper's end-to-end pipeline:

    query "Faloutsos", l=15
      → three Author t_DS matches
      → three size-15 OSs (Example 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any

from repro.core.bottom_up import bottom_up_size_l
from repro.core.dp import optimal_size_l
from repro.core.generation import (
    DatabaseBackend,
    DataGraphBackend,
    GenerationBackend,
    generate_os,
)
from repro.core.os_tree import ObjectSummary, SizeLResult
from repro.core.prelim import PrelimStats, generate_prelim_os
from repro.core.top_path import top_path_size_l
from repro.datagraph.builder import build_data_graph
from repro.datagraph.graph import DataGraph
from repro.db.database import Database
from repro.db.query import QueryInterface
from repro.errors import SummaryError
from repro.ranking.store import ImportanceStore, annotate_gds
from repro.schema_graph.gds import GDS
from repro.search.keyword import DataSubjectMatch, KeywordSearcher

#: Algorithm registry: name → callable(os_tree, l) -> SizeLResult.
ALGORITHMS = {
    "dp": optimal_size_l,
    "bottom_up": bottom_up_size_l,
    "top_path": top_path_size_l,
    "top_path_optimized": lambda os_tree, l: top_path_size_l(
        os_tree, l, variant="optimized"
    ),
}


@dataclass
class KeywordResult:
    """One ranked entry of a keyword query's result list."""

    match: DataSubjectMatch
    result: SizeLResult


class SizeLEngine:
    """End-to-end engine over one database.

    Parameters
    ----------
    db:
        The database.
    gds_by_root:
        One (unpruned) G_DS per R_DS table; the engine applies θ and
        annotates max/mmax statistics.
    store:
        Global importance scores (ObjectRank / ValueRank / ...).
    theta:
        The affinity threshold; the paper uses θ = 0.7 throughout.
    data_graph:
        Optional prebuilt data graph; built lazily when the data-graph
        backend is first used.
    """

    def __init__(
        self,
        db: Database,
        gds_by_root: dict[str, GDS],
        store: ImportanceStore,
        theta: float = 0.7,
        data_graph: DataGraph | None = None,
    ) -> None:
        self.db = db
        self.store = store
        self.theta = theta
        self.gds_by_root = {
            root: gds.prune(theta) for root, gds in gds_by_root.items()
        }
        for gds in self.gds_by_root.values():
            annotate_gds(gds, store)
        self._data_graph = data_graph
        self.query_interface = QueryInterface(db)
        self.searcher = KeywordSearcher(db, list(self.gds_by_root), store)

    # ------------------------------------------------------------------ #
    # Backends
    # ------------------------------------------------------------------ #
    @property
    def data_graph(self) -> DataGraph:
        if self._data_graph is None:
            self._data_graph = build_data_graph(self.db)
        return self._data_graph

    def backend(self, kind: str = "datagraph") -> GenerationBackend:
        """``"datagraph"`` (fast, in-memory) or ``"database"`` (I/O counted)."""
        if kind == "datagraph":
            return DataGraphBackend(self.db, self.data_graph)
        if kind == "database":
            return DatabaseBackend(self.query_interface)
        raise SummaryError(f"unknown backend kind: {kind!r}")

    def gds_for(self, rds_table: str) -> GDS:
        try:
            return self.gds_by_root[rds_table]
        except KeyError:
            raise SummaryError(
                f"no G_DS registered for R_DS table {rds_table!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # OS generation
    # ------------------------------------------------------------------ #
    def complete_os(
        self,
        rds_table: str,
        row_id: int,
        backend: str = "datagraph",
        depth_limit: int | None = None,
    ) -> ObjectSummary:
        """Generate the complete OS of a Data Subject (Algorithm 5)."""
        return generate_os(
            row_id,
            self.gds_for(rds_table),
            self.backend(backend),
            self.store,
            depth_limit=depth_limit,
        )

    def prelim_os(
        self,
        rds_table: str,
        row_id: int,
        l: int,  # noqa: E741
        backend: str = "datagraph",
    ) -> tuple[ObjectSummary, PrelimStats]:
        """Generate the top-l prelim-l OS of a Data Subject (Algorithm 4)."""
        return generate_prelim_os(
            row_id,
            self.gds_for(rds_table),
            self.backend(backend),
            self.store,
            l,
        )

    # ------------------------------------------------------------------ #
    # Size-l computation
    # ------------------------------------------------------------------ #
    def size_l(
        self,
        rds_table: str,
        row_id: int,
        l: int,  # noqa: E741
        algorithm: str = "top_path",
        source: str = "complete",
        backend: str = "datagraph",
    ) -> SizeLResult:
        """Generate + summarise: the full pipeline for one Data Subject.

        ``source`` selects the initial OS the algorithm operates on:
        ``"complete"`` (Algorithm 5) or ``"prelim"`` (Algorithm 4) — the
        choice the paper evaluates throughout Section 6.
        """
        if algorithm not in ALGORITHMS:
            raise SummaryError(
                f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        gen_start = perf_counter()
        prelim_stats: PrelimStats | None = None
        if source == "complete":
            os_tree = self.complete_os(rds_table, row_id, backend=backend)
        elif source == "prelim":
            os_tree, prelim_stats = self.prelim_os(rds_table, row_id, l, backend=backend)
        else:
            raise SummaryError(f"unknown source {source!r}; use 'complete' or 'prelim'")
        gen_seconds = perf_counter() - gen_start

        algo_fn = ALGORITHMS[algorithm]
        algo_start = perf_counter()
        result = algo_fn(os_tree, l)
        algo_seconds = perf_counter() - algo_start

        result.stats.update(
            {
                "source": source,
                "backend": backend,
                "initial_os_size": os_tree.size,
                "generation_seconds": gen_seconds,
                "algorithm_seconds": algo_seconds,
            }
        )
        if prelim_stats is not None:
            result.stats["prelim"] = prelim_stats
        return result

    # ------------------------------------------------------------------ #
    # Keyword queries (the paper's end-to-end paradigm)
    # ------------------------------------------------------------------ #
    def keyword_query(
        self,
        keywords: list[str] | str,
        l: int,  # noqa: E741
        algorithm: str = "top_path",
        source: str = "prelim",
        backend: str = "datagraph",
        max_results: int | None = None,
    ) -> list[KeywordResult]:
        """Run a size-l OS keyword query: one size-l OS per matching DS.

        Results are ordered by the global importance of the t_DS tuple (how
        the OS paradigm ranks its result list).
        """
        matches = self.searcher.search(keywords)
        if max_results is not None:
            matches = matches[:max_results]
        results: list[KeywordResult] = []
        for match in matches:
            result = self.size_l(
                match.table,
                match.row_id,
                l,
                algorithm=algorithm,
                source=source,
                backend=backend,
            )
            results.append(KeywordResult(match=match, result=result))
        return results

    def describe(self) -> dict[str, Any]:
        """A small status snapshot (used by examples and docs)."""
        return {
            "database": self.db.name,
            "tables": {name: len(self.db.table(name)) for name in self.db.table_names},
            "total_rows": self.db.total_rows,
            "rds_tables": list(self.gds_by_root),
            "theta": self.theta,
        }
