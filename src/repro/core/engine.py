"""The public size-l OS query engine.

Ties every subsystem together: keyword search resolves Data Subjects, the
θ-pruned and annotated G_DS drives OS generation (complete or prelim-l,
over any registered backend), and the chosen algorithm (DP, Bottom-Up,
Top-Path, or a registered plugin) produces the size-l OSs.  This is the
paper's end-to-end pipeline:

    query "Faloutsos", l=15
      → three Author t_DS matches
      → three size-15 OSs (Example 5).

Algorithm and backend selection flow through :mod:`repro.core.registry`;
the typed knobs live in :class:`~repro.core.options.QueryOptions`.  The
legacy string kwargs (``algorithm="top_path"``...) keep working through a
deprecation shim.  Construction goes through
:class:`~repro.core.builder.EngineBuilder` / :meth:`SizeLEngine.from_dataset`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.core.generation import (
    DataGraphBackend,
    GenerationBackend,
    generate_os,
    generate_os_flat,
)
from repro.core.options import (
    Backend,
    QueryOptions,
    ResultStats,
    Source,
    resolve_options,
)
from repro.core.os_tree import FlatOS, ObjectSummary, SizeLResult, validate_l
from repro.core.prelim import PrelimStats, generate_prelim_os
from repro.core.registry import get_algorithm, get_backend_factory
from repro.datagraph.builder import build_data_graph
from repro.datagraph.graph import DataGraph
from repro.db.database import Database
from repro.db.query import QueryInterface
from repro.errors import SummaryError
from repro.live.locks import FrozenReadGuard
from repro.ranking.store import ImportanceStore, annotate_gds
from repro.reliability.deadline import check_deadline
from repro.schema_graph.gds import GDS
from repro.search.inverted_index import BaseInvertedIndex
from repro.search.keyword import DataSubjectMatch, KeywordSearcher

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import EngineBuilder

#: ``engine.size_l`` keeps the pre-QueryOptions default of summarising the
#: complete OS; the end-to-end keyword paradigm defaults to prelim.
_SIZE_L_DEFAULTS = QueryOptions(source=Source.COMPLETE)
_KEYWORD_DEFAULTS = QueryOptions(source=Source.PRELIM)


@dataclass
class KeywordResult:
    """One ranked entry of a keyword query's result list."""

    match: DataSubjectMatch
    result: SizeLResult


class SizeLEngine:
    """End-to-end engine over one database.

    Parameters
    ----------
    db:
        The database.
    gds_by_root:
        One (unpruned) G_DS per R_DS table; the engine applies θ and
        annotates max/mmax statistics.
    store:
        Global importance scores (ObjectRank / ValueRank / ...).
    theta:
        The affinity threshold; the paper uses θ = 0.7 throughout.
    data_graph:
        Optional prebuilt data graph; built lazily when the data-graph
        backend is first used.

    Prefer :meth:`from_dataset` / :class:`~repro.core.builder.EngineBuilder`
    over calling this constructor directly.
    """

    def __init__(
        self,
        db: Database,
        gds_by_root: dict[str, GDS],
        store: ImportanceStore,
        theta: float = 0.7,
        data_graph: DataGraph | None = None,
        search_index: "BaseInvertedIndex | None" = None,
    ) -> None:
        self.db = db
        self.store = store
        self.theta = theta
        self.gds_by_root = {
            root: gds.prune(theta) for root, gds in gds_by_root.items()
        }
        for gds in self.gds_by_root.values():
            annotate_gds(gds, store)
        self._data_graph = data_graph
        self._data_graph_lock = threading.Lock()
        # Set by EngineBuilder.with_buffer_pool when the data graph is
        # paged over mmap arenas (repro.storage); stats() surfaces its
        # hit/miss/eviction counters.
        self.buffer_pool = None
        # Swapped for the live state's ReadWriteLock once the dataset
        # accepts writes; frozen datasets keep the zero-cost null guard.
        self.live_guard = FrozenReadGuard()
        self.query_interface = QueryInterface(db)
        # search_index lets a snapshot supply its prebuilt (memory-mapped)
        # inverted index instead of paying the tokenizing build scan here.
        self.searcher = KeywordSearcher(
            db, list(self.gds_by_root), store, index=search_index
        )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dataset(
        cls,
        dataset: Any,
        *,
        store: ImportanceStore | None = None,
        theta: float = 0.7,
        data_graph: DataGraph | None = None,
    ) -> "SizeLEngine":
        """Build an engine from a dataset exposing ``db`` / ``default_gds()``
        / ``default_store()`` (the synthetic DBLP and TPC-H datasets do)."""
        from repro.core.builder import EngineBuilder

        builder = EngineBuilder.from_dataset(dataset, store=store, theta=theta)
        if data_graph is not None:
            builder.with_data_graph(data_graph)
        return builder.build()

    @classmethod
    def builder(cls) -> "EngineBuilder":
        """A fresh :class:`~repro.core.builder.EngineBuilder`."""
        from repro.core.builder import EngineBuilder

        return EngineBuilder()

    # ------------------------------------------------------------------ #
    # Backends
    # ------------------------------------------------------------------ #
    @property
    def data_graph(self) -> DataGraph:
        if self._data_graph is None:
            # Double-checked: concurrent Session workers must not each pay
            # (or race) the one-off CSR build.
            with self._data_graph_lock:
                if self._data_graph is None:
                    self._data_graph = build_data_graph(self.db)
        return self._data_graph

    def backend(self, kind: str | Backend = Backend.DATAGRAPH) -> GenerationBackend:
        """Instantiate a registered backend: ``"datagraph"`` (fast,
        in-memory), ``"database"`` (I/O counted), or any plugin name."""
        name = kind.value if isinstance(kind, Backend) else kind
        return get_backend_factory(name)(self)

    def gds_for(self, rds_table: str) -> GDS:
        try:
            return self.gds_by_root[rds_table]
        except KeyError:
            raise SummaryError(
                f"no G_DS registered for R_DS table {rds_table!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # OS generation
    # ------------------------------------------------------------------ #
    def complete_os(
        self,
        rds_table: str,
        row_id: int,
        backend: str | Backend = Backend.DATAGRAPH,
        depth_limit: int | None = None,
    ) -> ObjectSummary:
        """Generate the complete OS of a Data Subject (Algorithm 5)."""
        with self.live_guard.read():
            return generate_os(
                row_id,
                self.gds_for(rds_table),
                self.backend(backend),
                self.store,
                depth_limit=depth_limit,
            )

    def complete_os_flat(
        self,
        rds_table: str,
        row_id: int,
        depth_limit: int | None = None,
    ) -> FlatOS:
        """Generate the complete OS as a columnar :class:`FlatOS`.

        The level-synchronous hot path over the data graph: identical tree
        (node i == legacy uid i), flat numpy arrays instead of one
        ``OSNode`` per tuple.  Only the data-graph backend supports this.
        """
        with self.live_guard.read():
            return generate_os_flat(
                row_id,
                self.gds_for(rds_table),
                DataGraphBackend(self.db, self.data_graph),
                self.store,
                depth_limit=depth_limit,
            )

    def prelim_os(
        self,
        rds_table: str,
        row_id: int,
        l: int,  # noqa: E741
        backend: str | Backend = Backend.DATAGRAPH,
        depth_limit: int | None = None,
    ) -> tuple[ObjectSummary, PrelimStats]:
        """Generate the top-l prelim-l OS of a Data Subject (Algorithm 4)."""
        validate_l(l)
        with self.live_guard.read():
            return generate_prelim_os(
                row_id,
                self.gds_for(rds_table),
                self.backend(backend),
                self.store,
                l,
                depth_limit=depth_limit,
            )

    # ------------------------------------------------------------------ #
    # Size-l computation
    # ------------------------------------------------------------------ #
    def size_l(
        self,
        rds_table: str,
        row_id: int,
        l: int | None = None,  # noqa: E741
        options: QueryOptions | None = None,
        *,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
    ) -> SizeLResult:
        """Generate + summarise: the full pipeline for one Data Subject.

        The typed path is ``size_l(table, row, options=QueryOptions(...))``;
        the legacy string kwargs still work (with a DeprecationWarning).
        Without an explicit source this summarises the complete OS
        (Algorithm 5), matching the pre-``QueryOptions`` behaviour.
        """
        opts = resolve_options(
            options,
            defaults=_SIZE_L_DEFAULTS,
            l=l,
            algorithm=algorithm,
            source=source,
            backend=backend,
        )
        return self.run(rds_table, row_id, opts)

    def run(
        self, rds_table: str, row_id: int, options: QueryOptions
    ) -> SizeLResult:
        """The generate+summarise pipeline under *options*."""
        check_deadline()  # cancel before generation, the expensive half
        options = options.normalized()  # idempotent; catches typo'd sources
        algo_fn = get_algorithm(options.algorithm_name)
        # normalized() canonicalizes flat: True implies complete source,
        # data-graph backend, and a flat-capable algorithm.
        use_flat = options.flat
        gen_start = perf_counter()
        prelim_stats: PrelimStats | None = None
        if use_flat:
            os_tree: ObjectSummary | FlatOS = self.complete_os_flat(
                rds_table, row_id, depth_limit=options.depth_limit
            )
        elif options.source_name == Source.COMPLETE.value:
            os_tree = self.complete_os(
                rds_table,
                row_id,
                backend=options.backend_name,
                depth_limit=options.depth_limit,
            )
        else:
            os_tree, prelim_stats = self.prelim_os(
                rds_table,
                row_id,
                options.l,
                backend=options.backend_name,
                depth_limit=options.depth_limit,
            )
        gen_seconds = perf_counter() - gen_start

        check_deadline()  # and again between generation and selection
        algo_start = perf_counter()
        result = algo_fn(os_tree, options.l)
        algo_seconds = perf_counter() - algo_start

        result.stats = ResultStats.from_counters(
            result.stats,
            source=options.source_name,
            backend=options.backend_name,
            initial_os_size=os_tree.size,
            generation_seconds=gen_seconds,
            algorithm_seconds=algo_seconds,
            prelim=prelim_stats,
        )
        return result

    # ------------------------------------------------------------------ #
    # Keyword queries (the paper's end-to-end paradigm)
    # ------------------------------------------------------------------ #
    def iter_keyword_query(
        self,
        keywords: list[str] | str,
        l: int | None = None,  # noqa: E741
        options: QueryOptions | None = None,
        *,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
        max_results: int | None = None,
    ) -> Iterator[KeywordResult]:
        """Stream a size-l OS keyword query, one result per matching DS.

        Options are validated eagerly (before this returns); each
        :class:`KeywordResult` is yielded as soon as its size-l OS is
        computed, so the first result is available while later OSs are
        still being generated.  Results follow the global importance of
        the t_DS tuple (how the OS paradigm ranks its result list).
        """
        opts = resolve_options(
            options,
            defaults=_KEYWORD_DEFAULTS,
            l=l,
            algorithm=algorithm,
            source=source,
            backend=backend,
            max_results=max_results,
        )
        return self._iter_keyword_query(keywords, opts)

    def search_matches(
        self, keywords: list[str] | str, options: QueryOptions
    ) -> list[DataSubjectMatch]:
        """The ranked t_DS matches a keyword query fans out over.

        Applies ``options.max_results`` truncation; this is the shared
        front half of the keyword pipeline — the serial loop below and the
        Session's parallel fan-out both start from it.
        """
        check_deadline()
        with self.live_guard.read():
            matches = self.searcher.search(keywords)
        if options.max_results is not None:
            matches = matches[: options.max_results]
        return matches

    def _iter_keyword_query(
        self,
        keywords: list[str] | str,
        options: QueryOptions,
        run: "Callable[[str, int, QueryOptions], SizeLResult] | None" = None,
    ) -> Iterator[KeywordResult]:
        """Shared keyword-query loop; *run* lets a Session substitute its
        cached pipeline for the engine's."""
        run = run if run is not None else self.run
        for match in self.search_matches(keywords, options):
            result = run(match.table, match.row_id, options)
            yield KeywordResult(match=match, result=result)

    def keyword_query(
        self,
        keywords: list[str] | str,
        l: int | None = None,  # noqa: E741
        options: QueryOptions | None = None,
        *,
        algorithm: object = None,
        source: object = None,
        backend: object = None,
        max_results: int | None = None,
    ) -> list[KeywordResult]:
        """Run a size-l OS keyword query: one size-l OS per matching DS."""
        opts = resolve_options(
            options,
            defaults=_KEYWORD_DEFAULTS,
            l=l,
            algorithm=algorithm,
            source=source,
            backend=backend,
            max_results=max_results,
        )
        return list(self._iter_keyword_query(keywords, opts))

    def describe(self) -> dict[str, Any]:
        """A small status snapshot (used by examples and docs)."""
        return {
            "database": self.db.name,
            "tables": {name: len(self.db.table(name)) for name in self.db.table_names},
            "total_rows": self.db.total_rows,
            "rds_tables": list(self.gds_by_root),
            "theta": self.theta,
        }
