"""Algorithm 4: top-l prelim-l OS generation with avoidance conditions.

A prelim-l OS is a partial OS guaranteed to contain the *top-l set* — the l
tuples of the complete OS with the largest local importance (Definition 2).
Generating it avoids extracting "fruitless" tuples:

* **Avoidance Condition 1** — if the running ``largest-l`` threshold already
  dominates both max(R_i) and mmax(R_i) of a child relation, the entire
  G_DS subtree under R_i is skipped with *no* I/O at all (the statistics
  live on the annotated G_DS).
* **Avoidance Condition 2** — if ``largest-l`` dominates mmax(R_i) only,
  R_i's tuples may still be fruitful but none of their descendants can be;
  the join is issued as ``SELECT TOP l ... AND li > largest-l``, extracting
  at most l qualifying tuples (one I/O access even when empty).

Lemma 3 (tested): under monotone local importance the prelim-l OS contains
the optimal size-l OS.  In general it need not (the paper's Figure 7 example
misses node ca16) — the quality experiments measure the practical impact,
which the paper reports as at most ~4%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.generation import GenerationBackend
from repro.core.os_tree import ObjectSummary, OSNode, validate_l
from repro.ranking.store import ImportanceStore
from repro.schema_graph.gds import GDS
from repro.util.heaps import BoundedTopHeap


@dataclass
class PrelimStats:
    """Counters for the Section 5.3 / 6.3 cost discussion."""

    extracted_tuples: int = 0
    avoided_subtrees: int = 0  # Avoidance Condition 1 hits
    limited_extractions: int = 0  # Avoidance Condition 2 hits
    full_extractions: int = 0
    top_l_uids: set[int] = field(default_factory=set)


def generate_prelim_os(
    tds_row_id: int,
    gds: GDS,
    backend: GenerationBackend,
    store: ImportanceStore,
    l: int,  # noqa: E741
    depth_limit: int | None = None,
) -> tuple[ObjectSummary, PrelimStats]:
    """Generate the top-l prelim-l OS for a t_DS tuple (Algorithm 4).

    Requires the G_DS to be annotated with max(R_i)/mmax(R_i)
    (:func:`repro.ranking.store.annotate_gds`).  Returns the prelim OS and
    extraction statistics; the OS is tagged ``kind="prelim"`` and the stats
    record which nodes form the top-l set.
    """
    validate_l(l)
    stats = PrelimStats()
    root_gds = gds.root
    root_weight = store.local_importance(root_gds, tds_row_id)
    root = OSNode(0, root_gds, tds_row_id, None, root_weight)
    stats.extracted_tuples += 1

    top_l: BoundedTopHeap[int] = BoundedTopHeap(l)
    top_l.offer(root.uid, root_weight)

    queue: list[OSNode] = [root]
    cursor = 0
    next_uid = 1
    while cursor < len(queue):
        node = queue[cursor]
        cursor += 1
        if depth_limit is not None and node.depth >= depth_limit:
            continue
        for gds_child in node.gds.children:
            largest_l = top_l.threshold
            # Avoidance Condition 1: the whole G_DS subtree is fruitless.
            if largest_l >= gds_child.max_local and largest_l >= gds_child.mmax_local:
                stats.avoided_subtrees += 1
                continue
            # Avoidance Condition 2: descendants are fruitless; cap the join.
            if largest_l >= gds_child.mmax_local:
                rows = backend.children_top(gds_child, node, store, largest_l, l)
                stats.limited_extractions += 1
            else:
                rows = backend.children(gds_child, node)
                stats.full_extractions += 1
            for row_id in rows:
                row_id = int(row_id)  # np scalars from array slices; keep uids JSON-safe
                weight = store.local_importance(gds_child, row_id)
                child = OSNode(next_uid, gds_child, row_id, node, weight)
                next_uid += 1
                node.children.append(child)
                queue.append(child)
                stats.extracted_tuples += 1
                if weight > top_l.threshold or not top_l.is_full:
                    top_l.offer(child.uid, weight)

    stats.top_l_uids = {uid for uid, _score in top_l.items()}
    summary = ObjectSummary(root, db=backend.db, kind="prelim")
    return summary, stats
