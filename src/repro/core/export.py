"""Structured export of OSs and size-l results.

Downstream consumers (web front ends, DPA report generators) want machine-
readable summaries, not rendered text.  :func:`summary_to_dict` serialises
an :class:`~repro.core.os_tree.ObjectSummary` into plain dicts/lists (JSON-
safe), preserving the tree shape, tuple identities, weights, and — when the
database is attached — the displayed attribute values.

The export is intentionally one-way: an OS is derived data (re-generated
from the database in milliseconds), so no loader is provided; consumers
treat exports as immutable result documents.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.os_tree import ObjectSummary, OSNode, SizeLResult


def _node_to_dict(summary: ObjectSummary, node: OSNode) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "uid": node.uid,
        "label": node.label,
        "table": node.table,
        "row_id": node.row_id,
        "depth": node.depth,
        "weight": node.weight,
    }
    if summary.db is not None:
        table = summary.db.table(node.table)
        payload["pk"] = table.pk_of_row(node.row_id)
        payload["attributes"] = {
            attr: table.value(node.row_id, attr)
            for attr in node.gds.attributes
            if table.value(node.row_id, attr) is not None
        }
    payload["children"] = [_node_to_dict(summary, child) for child in node.children]
    return payload


def summary_to_dict(summary: ObjectSummary) -> dict[str, Any]:
    """Serialise an OS (complete, prelim, or size-l) into JSON-safe dicts."""
    return {
        "kind": summary.kind,
        "size": summary.size,
        "total_importance": summary.total_importance(),
        "root": _node_to_dict(summary, summary.root),
    }


def result_to_dict(result: SizeLResult) -> dict[str, Any]:
    """Serialise a :class:`SizeLResult` (summary + metadata).

    Non-JSON-safe stats entries (e.g. the nested ``PrelimStats`` object)
    are stringified rather than dropped, so nothing silently disappears.
    """
    stats: dict[str, Any] = {}
    for key, value in result.stats.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            stats[key] = value
        else:
            stats[key] = repr(value)
    return {
        "algorithm": result.algorithm,
        "l": result.l,
        "importance": result.importance,
        "size": result.size,
        "selected_uids": sorted(result.selected_uids),
        "stats": stats,
        "summary": summary_to_dict(result.summary),
    }


def result_to_json(result: SizeLResult, indent: int | None = 2) -> str:
    """JSON string form of :func:`result_to_dict` (sorted keys, stable)."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)
