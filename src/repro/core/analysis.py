"""Analysis of the space of optimal size-l OSs (Section 7 future work).

The paper's conclusion observes: "in the general case, optimal size-l OSs
for different l could be very different.  This prevents the incremental
computation of a size-l OS from the optimal size-(l−1) OS ... In the
future, we plan to experimentally analyze the space of optimal size-l OSs
and identify potential similarities among them that could assist their
pre-computation and compression."

This module performs that analysis:

* :func:`optimal_family` — the optimal size-l OS for every l in a range
  (computed in one DP-per-l pass);
* :func:`nesting_profile` — where the chain S*_1 ⊆ S*_2 ⊆ ... breaks
  (every break is a certificate that incremental computation fails);
* :func:`stability_profile` — Jaccard similarity between consecutive
  optima, plus the *core* (tuples present in every optimum) and *union*
  sizes, which bound what a pre-computation cache could share.

The empirical finding (see ``bench_ablations.py`` and the unit tests)
matches the paper's intuition: optima are usually — but not always —
nested, so a shared-prefix cache would work for most l yet cannot be
relied upon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dp import optimal_size_l
from repro.core.os_tree import ObjectSummary, validate_l


def optimal_family(
    os_tree: ObjectSummary, max_l: int, min_l: int = 1
) -> dict[int, set[int]]:
    """The optimal size-l selection for every l in [min_l, max_l].

    Note this is the straightforward per-l DP; the point of the analysis is
    to find out whether anything smarter could be shared across l.
    """
    validate_l(min_l)
    validate_l(max_l)
    if min_l > max_l:
        raise ValueError(f"min_l {min_l} exceeds max_l {max_l}")
    return {
        l: optimal_size_l(os_tree, l).selected_uids  # noqa: E741
        for l in range(min_l, max_l + 1)
    }


@dataclass(frozen=True)
class NestingProfile:
    """Where (and how often) the optimal chain fails to be nested."""

    checked_pairs: int
    breaks: list[int]  # l values where S*_{l-1} is NOT a subset of S*_l

    @property
    def nested_fraction(self) -> float:
        if self.checked_pairs == 0:
            return 1.0
        return 1.0 - len(self.breaks) / self.checked_pairs

    @property
    def is_fully_nested(self) -> bool:
        return not self.breaks


def nesting_profile(family: dict[int, set[int]]) -> NestingProfile:
    """Check S*_{l-1} ⊆ S*_l for consecutive l present in *family*."""
    ls = sorted(family)
    breaks: list[int] = []
    checked = 0
    for prev_l, next_l in zip(ls, ls[1:]):
        if next_l != prev_l + 1:
            continue
        checked += 1
        if not family[prev_l] <= family[next_l]:
            breaks.append(next_l)
    return NestingProfile(checked_pairs=checked, breaks=breaks)


@dataclass(frozen=True)
class StabilityRow:
    """Similarity between the optima at l-1 and l."""

    l: int  # noqa: E741
    jaccard: float
    carried_over: int  # |S*_{l-1} ∩ S*_l|
    replaced: int  # |S*_{l-1} \ S*_l|


@dataclass(frozen=True)
class StabilityProfile:
    rows: list[StabilityRow]
    core_size: int  # tuples in every optimum of the family
    union_size: int  # tuples in any optimum of the family

    @property
    def mean_jaccard(self) -> float:
        if not self.rows:
            return 1.0
        return sum(r.jaccard for r in self.rows) / len(self.rows)


def stability_profile(family: dict[int, set[int]]) -> StabilityProfile:
    """Jaccard similarity of consecutive optima + core/union sizes.

    ``core`` is what a pre-computation cache could serve for *every* l;
    ``union`` bounds the storage a full per-l cache would need (the paper's
    "compression" question: union_size ≪ Σ_l l means heavy overlap).
    """
    ls = sorted(family)
    rows: list[StabilityRow] = []
    for prev_l, next_l in zip(ls, ls[1:]):
        if next_l != prev_l + 1:
            continue
        prev_set, next_set = family[prev_l], family[next_l]
        intersection = len(prev_set & next_set)
        union = len(prev_set | next_set)
        rows.append(
            StabilityRow(
                l=next_l,
                jaccard=intersection / union if union else 1.0,
                carried_over=intersection,
                replaced=len(prev_set - next_set),
            )
        )
    core: set[int] = set.intersection(*family.values()) if family else set()
    total: set[int] = set.union(*family.values()) if family else set()
    return StabilityProfile(rows=rows, core_size=len(core), union_size=len(total))


def incremental_failure_example(
    os_tree: ObjectSummary, max_l: int
) -> tuple[int, set[int], set[int]] | None:
    """Find a concrete (l, S*_{l-1}, S*_l) witnessing a nesting break.

    Returns None when the family is fully nested up to *max_l* — useful in
    tests and for the paper's observation that breaks exist "in the general
    case" but are not the norm.
    """
    family = optimal_family(os_tree, max_l)
    for l in range(2, max_l + 1):  # noqa: E741
        if not family[l - 1] <= family[l]:
            return l, family[l - 1], family[l]
    return None
