"""Open registries for size-l algorithms and OS-generation backends.

The engine used to hard-code an ``ALGORITHMS`` dict; these registries
replace it with an open extension point.  Third-party code registers a new
size-l algorithm or storage backend under a name and it becomes selectable
from :class:`~repro.core.engine.SizeLEngine`,
:class:`~repro.session.Session`, and the CLI (whose ``--algorithm`` /
``--backend`` choices derive from here) without touching ``repro`` source::

    from repro import register_algorithm

    @register_algorithm("greedy_leaves")
    def greedy_leaves(os_tree, l):
        ...  # -> SizeLResult

    Session.from_dataset(data).keyword_query("Faloutsos", l=10,
                                             algorithm="greedy_leaves")

Algorithm entries are callables ``(os_tree, l) -> SizeLResult``; backend
entries are factories ``(engine) -> GenerationBackend`` (the engine hands
them its database, data graph, and query interface).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generic, Iterator, TypeVar

from repro.core.bottom_up import bottom_up_size_l
from repro.core.dp import optimal_size_l
from repro.core.generation import (
    DatabaseBackend,
    DataGraphBackend,
    GenerationBackend,
)
from repro.core.os_tree import ObjectSummary, SizeLResult
from repro.core.top_path import top_path_size_l
from repro.errors import RegistryError, SummaryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import SizeLEngine

T = TypeVar("T")

#: A size-l algorithm: summarise *os_tree* down to *l* tuple occurrences.
AlgorithmFn = Callable[[ObjectSummary, int], SizeLResult]

#: A backend factory: build a generation backend from an engine's resources.
BackendFactory = Callable[["SizeLEngine"], GenerationBackend]


class Registry(Generic[T]):
    """A named, open mapping with decorator-style registration.

    Names are unique; re-registering an existing name raises
    :class:`~repro.errors.RegistryError` unless ``replace=True`` (so typos
    never silently shadow a built-in).  Lookups of unknown names raise
    :class:`~repro.errors.SummaryError` listing the valid choices.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    def register(self, name: str, value: T, *, replace: bool = False) -> T:
        if not isinstance(name, str) or not name:
            raise RegistryError(
                f"{self.kind} name must be a non-empty string, got {name!r}"
            )
        if not replace and name in self._entries:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; "
                f"pass replace=True to override"
            )
        self._entries[name] = value
        return value

    def unregister(self, name: str) -> None:
        if name not in self._entries:
            raise SummaryError(
                f"unknown {self.kind} {name!r}; choose from {sorted(self._entries)}"
            )
        del self._entries[name]

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise SummaryError(
                f"unknown {self.kind} {name!r}; choose from {sorted(self._entries)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def as_dict(self) -> dict[str, T]:
        return dict(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, names={self.names()})"


#: The global algorithm registry (name → ``(os_tree, l) -> SizeLResult``).
ALGORITHM_REGISTRY: Registry[AlgorithmFn] = Registry("algorithm")

#: The global backend registry (name → ``(engine) -> GenerationBackend``).
BACKEND_REGISTRY: Registry[BackendFactory] = Registry("backend")


def register_algorithm(
    name: str, fn: AlgorithmFn | None = None, *, replace: bool = False
):
    """Register a size-l algorithm, directly or as a decorator."""
    if fn is not None:
        return ALGORITHM_REGISTRY.register(name, fn, replace=replace)

    def decorator(func: AlgorithmFn) -> AlgorithmFn:
        ALGORITHM_REGISTRY.register(name, func, replace=replace)
        return func

    return decorator


def register_backend(
    name: str, factory: BackendFactory | None = None, *, replace: bool = False
):
    """Register an OS-generation backend factory, directly or as a decorator."""
    if factory is not None:
        return BACKEND_REGISTRY.register(name, factory, replace=replace)

    def decorator(func: BackendFactory) -> BackendFactory:
        BACKEND_REGISTRY.register(name, func, replace=replace)
        return func

    return decorator


def get_algorithm(name: str) -> AlgorithmFn:
    return ALGORITHM_REGISTRY.get(name)


def get_backend_factory(name: str) -> BackendFactory:
    return BACKEND_REGISTRY.get(name)


def algorithm_names() -> list[str]:
    return ALGORITHM_REGISTRY.names()


def backend_names() -> list[str]:
    return BACKEND_REGISTRY.names()


# --------------------------------------------------------------------- #
# Built-ins (Section 5's algorithms; the paper's two generation backends)
# --------------------------------------------------------------------- #
def _top_path_optimized(os_tree: ObjectSummary, l: int) -> SizeLResult:  # noqa: E741
    return top_path_size_l(os_tree, l, variant="optimized")


ALGORITHM_REGISTRY.register("dp", optimal_size_l)
ALGORITHM_REGISTRY.register("bottom_up", bottom_up_size_l)
ALGORITHM_REGISTRY.register("top_path", top_path_size_l)
ALGORITHM_REGISTRY.register("top_path_optimized", _top_path_optimized)

# The built-ins accept a columnar FlatOS as well as an ObjectSummary; the
# engine only routes generation through the flat hot path when the selected
# algorithm advertises this (plugins default to the legacy representation).
for _fn in (optimal_size_l, bottom_up_size_l, top_path_size_l, _top_path_optimized):
    _fn.supports_flat = True  # type: ignore[attr-defined]
del _fn


@register_backend("datagraph")
def _datagraph_backend(engine: "SizeLEngine") -> GenerationBackend:
    return DataGraphBackend(engine.db, engine.data_graph)


@register_backend("database")
def _database_backend(engine: "SizeLEngine") -> GenerationBackend:
    return DatabaseBackend(engine.query_interface)
