"""Deterministic, seedable fault injection for every tier.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s plus a seed;
installing it (:func:`install`) arms the named **injection sites** wired
through the codebase:

==================  ====================================================
site                where it fires
==================  ====================================================
``db.io``           every counted backend IO in
                    :meth:`repro.db.query.QueryInterface.count_io`
``snapshot.open``   :meth:`repro.persist.snapshot.Snapshot.open` entry
``snapshot.checksum``  each per-file checksum pass during snapshot verify
``transport.send``  :func:`repro.cluster.transport.send_frame`
``transport.recv``  :func:`repro.cluster.transport.recv_frame`
``worker.startup``  :func:`repro.cluster.worker.run_worker` entry
``live.apply``      :meth:`repro.live.state.LiveState.apply`, inside the
                    write lock but *before* any state changes — an
                    injected fault is a clean whole-transaction abort
==================  ====================================================

Each site calls :func:`inject` with its own exception factory, so an
armed ``db.io`` raises :class:`~repro.errors.BackendIOError` (503),
``transport.*`` raise :class:`~repro.cluster.transport.TransportError`
(retried / 503), and ``snapshot.*`` raise
:class:`~repro.errors.SnapshotFormatError` — faults always surface as
the *pinned* error the real failure would, never as a new wire shape.

Determinism: every site draws from its own ``random.Random`` seeded by
``(plan.seed, site)``, so the fire/pass sequence at a site depends only
on the plan and the number of prior evaluations at that site — not on
thread interleaving across sites, wall clock, or hash randomization.

The default state is **disarmed** and the hot-path cost of a disarmed
site is one module-global read and a ``None`` check.  Worker
subprocesses inherit a plan through the :data:`FAULT_PLAN_ENV`
environment variable (the supervisor copies ``os.environ`` at
construction, so exporting the plan before building a
:class:`~repro.cluster.serve.Cluster` arms every worker it ever spawns,
restarts included).
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import FaultInjectionError, ReproError

#: Environment variable carrying a JSON-encoded plan into subprocesses.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_KINDS = ("error", "delay")


@dataclass(frozen=True)
class FaultRule:
    """One site's failure schedule.

    ``probability`` is the per-evaluation fire chance; ``after`` skips
    the first N evaluations (arm "the third IO fails"); ``max_fires``
    bounds total fires (arm "fails exactly once").  ``kind="delay"``
    sleeps ``delay_seconds`` instead of raising — the slow-IO /
    slow-network half of the chaos vocabulary, which is what deadline
    enforcement is tested against.
    """

    site: str
    probability: float = 1.0
    kind: str = "error"
    delay_seconds: float = 0.0
    max_fires: int | None = None
    after: int = 0

    def __post_init__(self) -> None:
        if not self.site or not isinstance(self.site, str):
            raise ReproError(f"fault rule needs a non-empty site name, got {self.site!r}")
        if self.kind not in _KINDS:
            raise ReproError(
                f"fault rule kind must be one of {list(_KINDS)}, got {self.kind!r}"
            )
        if not 0.0 <= float(self.probability) <= 1.0:
            raise ReproError(
                f"fault rule probability must be in [0, 1], got {self.probability!r}"
            )
        if self.delay_seconds < 0:
            raise ReproError(
                f"fault rule delay_seconds must be >= 0, got {self.delay_seconds!r}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ReproError(
                f"fault rule max_fires must be >= 1 or null, got {self.max_fires!r}"
            )
        if self.after < 0:
            raise ReproError(f"fault rule after must be >= 0, got {self.after!r}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "probability": self.probability,
            "kind": self.kind,
            "delay_seconds": self.delay_seconds,
            "max_fires": self.max_fires,
            "after": self.after,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultRule":
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ReproError(f"invalid fault rule {payload!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rules it drives — the unit tests and benchmarks
    install, serialize into worker environments, and record in results."""

    rules: tuple[FaultRule, ...]
    seed: int = 0

    def __init__(self, rules: Iterable[FaultRule] = (), seed: int = 0) -> None:
        object.__setattr__(self, "rules", tuple(rules))
        object.__setattr__(self, "seed", int(seed))

    def as_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.as_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ReproError(f"fault plan must be a JSON object, got {payload!r}")
        rules = payload.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise ReproError(f"fault plan rules must be a list, got {rules!r}")
        return cls(
            rules=[FaultRule.from_dict(rule) for rule in rules],
            seed=payload.get("seed", 0),
        )

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise ReproError(f"undecodable fault plan JSON: {exc}") from exc
        return cls.from_dict(payload)


class FaultInjector:
    """Evaluates a plan's rules site by site, deterministically.

    Thread-safe: per-site RNG draws and counters are serialized under one
    lock (injection sites are failure paths and test paths — never a
    measured hot path while armed)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._rules_for: dict[str, list[FaultRule]] = {}
        for rule in plan.rules:
            self._rules_for.setdefault(rule.site, []).append(rule)
        self._rngs: dict[str, random.Random] = {}
        self._evals: dict[str, int] = {}
        self._fires: dict[int, int] = {}  # id(rule) is stable: rules live in the plan

    def evaluate(self, site: str) -> FaultRule | None:
        """Count one evaluation at *site*; the rule that fires, if any."""
        rules = self._rules_for.get(site)
        if not rules:
            return None
        with self._lock:
            count = self._evals.get(site, 0) + 1
            self._evals[site] = count
            rng = self._rngs.get(site)
            if rng is None:
                # a string seed is hashed deterministically by Random
                # (unlike hash(), which is salted per process)
                rng = self._rngs[site] = random.Random(f"{self.plan.seed}:{site}")
            for rule in rules:
                if count <= rule.after:
                    continue
                fired = self._fires.get(id(rule), 0)
                if rule.max_fires is not None and fired >= rule.max_fires:
                    continue
                if rule.probability < 1.0 and rng.random() >= rule.probability:
                    continue
                self._fires[id(rule)] = fired + 1
                return rule
        return None

    def fired(self, site: str | None = None) -> int:
        """Total fires (across all rules, or one site's rules)."""
        with self._lock:
            if site is None:
                return sum(self._fires.values())
            return sum(
                self._fires.get(id(rule), 0)
                for rule in self._rules_for.get(site, [])
            )


#: The installed injector; ``None`` (the default) disarms every site.
_active: FaultInjector | None = None


def install(plan: FaultPlan) -> FaultInjector:
    """Arm every site *plan* names; returns the live injector."""
    global _active
    _active = FaultInjector(plan)
    return _active


def uninstall() -> None:
    """Disarm all sites (restores the zero-cost default)."""
    global _active
    _active = None


def active() -> FaultInjector | None:
    return _active


def install_from_env(environ: "dict[str, str] | None" = None) -> FaultPlan | None:
    """Arm the plan serialized in :data:`FAULT_PLAN_ENV`, if any.

    Called at worker-process startup so a chaos run covers respawned
    workers too, not just the generation alive when the plan landed.
    """
    raw = (os.environ if environ is None else environ).get(FAULT_PLAN_ENV)
    if not raw:
        return None
    plan = FaultPlan.from_json(raw)
    install(plan)
    return plan


def inject(
    site: str, exc_factory: "Callable[[str], BaseException] | None" = None
) -> None:
    """The per-site hook: no-op unless a plan is installed and fires.

    *exc_factory* builds the site's native exception from a message, so
    an armed site fails exactly the way the real fault would on the wire.
    """
    injector = _active
    if injector is None:
        return
    rule = injector.evaluate(site)
    if rule is None:
        return
    if rule.kind == "delay":
        time.sleep(rule.delay_seconds)
        return
    message = f"injected fault at site {site!r}"
    raise (exc_factory or FaultInjectionError)(message)
