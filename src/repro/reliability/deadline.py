"""End-to-end request deadlines: one budget, checked at every tier.

A :class:`Deadline` pins the instant a request's time budget expires
(monotonic clock).  The service dispatcher installs the request's
deadline in a **thread-local scope** (:func:`deadline_scope`) around the
whole dispatch; long-running loops below it — OS generation, selection
kernels, backend IO — call the module-level :func:`check_deadline`,
which is a cheap no-op when no deadline is active and raises the pinned
:class:`~repro.errors.DeadlineExceededError` (HTTP 504) once the budget
is gone.

Thread-locality is deliberate: a :class:`~repro.session.Session` fans
work out over a long-lived ``ThreadPoolExecutor`` whose threads outlive
any single request, so ``contextvars`` inheritance (captured at thread
*creation*) would be wrong.  Instead ``Session._submit`` captures the
submitting thread's deadline explicitly and re-installs it around each
pooled task.

Checkpoint placement is coarse by design — every ~256 iterations of an
outer per-node loop, every generation level, every counted IO — so an
unarmed request pays nanoseconds and an armed one is cancelled within a
few hundred microseconds of its budget, without regressing the measured
kernel benchmarks.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import DeadlineExceededError

#: How often (iterations) tight loops consult :func:`check_deadline`.
#: Exposed so kernels share one constant: ``if i & CHECK_MASK == 0: ...``.
CHECK_MASK = 255


class Deadline:
    """One request's time budget, pinned to the monotonic clock."""

    __slots__ = ("budget_ms", "expires_at")

    def __init__(self, budget_ms: int, *, now: "float | None" = None) -> None:
        self.budget_ms = int(budget_ms)
        start = time.monotonic() if now is None else now
        self.expires_at = start + self.budget_ms / 1000.0

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def remaining_ms(self) -> int:
        """Whole milliseconds left, floored at 1 — the *forwardable* form
        (a 0 budget would be rejected by the wire validator)."""
        return max(int(self.remaining() * 1000), 1)

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        if time.monotonic() >= self.expires_at:
            raise DeadlineExceededError(self.budget_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget_ms={self.budget_ms}, remaining={self.remaining():.3f}s)"


_local = threading.local()


def current_deadline() -> "Deadline | None":
    """The deadline active on *this* thread, if any."""
    return getattr(_local, "deadline", None)


@contextmanager
def deadline_scope(deadline: "Deadline | None") -> Iterator["Deadline | None"]:
    """Install *deadline* for the dynamic extent of the block.

    ``None`` is a true no-op scope, so call sites need no conditional.
    Scopes nest: an inner scope (e.g. a worker honoring a forwarded
    remaining budget) shadows the outer one and restores it on exit.
    """
    if deadline is None:
        yield None
        return
    previous = getattr(_local, "deadline", None)
    _local.deadline = deadline
    try:
        yield deadline
    finally:
        _local.deadline = previous


def check_deadline() -> None:
    """Raise the pinned 504 error if this thread's deadline has expired.

    The disarmed cost is one thread-local read and a ``None`` test —
    cheap enough for coarse placement inside generation/selection loops.
    """
    deadline = getattr(_local, "deadline", None)
    if deadline is not None and time.monotonic() >= deadline.expires_at:
        raise DeadlineExceededError(deadline.budget_ms)


def bind_deadline(fn, deadline: "Deadline | None"):
    """*fn* wrapped to run under *deadline* — the helper thread-pool
    submitters use to carry the caller's budget across the pool boundary."""
    if deadline is None:
        return fn

    def bound(*args, **kwargs):
        with deadline_scope(deadline):
            return fn(*args, **kwargs)

    return bound
