"""Reliability primitives: fault injection, deadlines, circuit breaking.

Three small, dependency-free modules the serving tiers thread through:

* :mod:`~repro.reliability.faults` — a deterministic, seedable
  :class:`FaultPlan`/:class:`FaultInjector` behind named injection sites
  (``db.io``, ``snapshot.open``, ``snapshot.checksum``,
  ``transport.send``, ``transport.recv``, ``worker.startup``) that cost
  nothing while disarmed;
* :mod:`~repro.reliability.deadline` — per-request time budgets
  (``deadline_ms`` on the wire, ``X-Repro-Deadline-Ms`` over HTTP)
  carried through dispatcher → session pool → engine loops → backend IO
  as a thread-local :class:`Deadline`, raising the pinned
  :class:`~repro.errors.DeadlineExceededError` (504);
* :mod:`~repro.reliability.breaker` — the per-shard
  :class:`CircuitBreaker` the cluster router uses instead of blind
  sleep-retry against a dead worker.
"""

from repro.reliability.breaker import CircuitBreaker
from repro.reliability.deadline import (
    CHECK_MASK,
    Deadline,
    bind_deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.reliability.faults import (
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultRule,
    active,
    inject,
    install,
    install_from_env,
    uninstall,
)

__all__ = [
    "CHECK_MASK",
    "CircuitBreaker",
    "Deadline",
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "active",
    "bind_deadline",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "inject",
    "install",
    "install_from_env",
    "uninstall",
]
