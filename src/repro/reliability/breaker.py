"""A per-dependency circuit breaker (closed → open → half-open).

The cluster router keeps one :class:`CircuitBreaker` per shard.  While
**closed**, calls flow.  After ``failure_threshold`` *consecutive*
transport failures the breaker **opens**: callers stop dialing the dead
shard (no connect timeouts, no socket churn) and pace themselves on the
clock instead.  After ``reset_timeout`` seconds one caller is let
through as the **half-open probe**; its success closes the breaker, its
failure re-opens it for another window.

This replaces nothing about *when* the router gives up — the request
deadline still owns that — it only changes what retrying costs while a
shard is down, and gives ``/v1/healthz`` a third shard state
(``breaker_open``) between "ready" and "restarting".
"""

from __future__ import annotations

import threading
import time

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe three-state breaker over consecutive failures."""

    def __init__(
        self, *, failure_threshold: int = 5, reset_timeout: float = 0.5
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {reset_timeout}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?

        In the open state, the first caller after ``reset_timeout`` gets
        ``True`` and becomes the half-open probe; everyone else keeps
        getting ``False`` until the probe reports back.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if time.monotonic() - self._opened_at >= self.reset_timeout:
                    self._state = HALF_OPEN
                    return True
                return False
            return False  # half-open: exactly one probe is already out

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = time.monotonic()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = time.monotonic()
