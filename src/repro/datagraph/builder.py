"""Builds the data graph from a database (one pass per FK edge).

The per-edge pass produces the ``forward`` array (owner row → target row)
and then derives the CSR reverse direction from it with a counting sort:
``backward_indptr`` via ``np.bincount`` + ``cumsum`` and
``backward_indices`` via a stable argsort of the referenced target rows, so
each target's bucket lists owner rows in ascending order (the order the old
list-of-lists layout produced by appending during the scan).
"""

from __future__ import annotations

import time

import numpy as np

from repro.db.database import Database
from repro.datagraph.graph import DataGraph, FkAdjacency


def _csr_from_forward(
    forward: np.ndarray, n_targets: int
) -> tuple[np.ndarray, np.ndarray]:
    """Invert ``forward`` into CSR (indptr, indices) over target rows."""
    valid = forward >= 0
    owner_rows = np.nonzero(valid)[0]
    targets = forward[valid]
    counts = np.bincount(targets, minlength=n_targets)
    indptr = np.zeros(n_targets + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(targets, kind="stable")
    indices = owner_rows[order].astype(np.int32)
    return indptr, indices


def build_data_graph(db: Database) -> DataGraph:
    """Index every FK relationship of *db* at the tuple level.

    The construction is a single scan per owning table: O(total rows).
    The paper reports 17 s for DBLP and 128 s for TPC-H SF-1 on 2011
    hardware; :func:`timed_build` measures ours for the DGBUILD bench.
    """
    adjacencies: dict[tuple[str, str], FkAdjacency] = {}
    for owner_name, fk in db.foreign_keys():
        owner = db.table(owner_name)
        target = db.table(fk.ref_table)
        col_idx = owner.schema.column_index(fk.column)
        forward = np.full(len(owner), -1, dtype=np.int32)
        for row_id, row in owner.scan():
            ref = row[col_idx]
            if ref is None:
                continue
            forward[row_id] = target.row_id_for_pk(ref)
        indptr, indices = _csr_from_forward(forward, len(target))
        # children_of hands out zero-copy views into these arrays; freezing
        # them turns any accidental caller mutation into an immediate error.
        forward.flags.writeable = False
        indptr.flags.writeable = False
        indices.flags.writeable = False
        adjacencies[(owner_name, fk.column)] = FkAdjacency(
            owner=owner_name,
            column=fk.column,
            target=fk.ref_table,
            forward=forward,
            backward_indptr=indptr,
            backward_indices=indices,
        )
    return DataGraph(adjacencies)


def timed_build(db: Database) -> tuple[DataGraph, float]:
    """Build the data graph and return (graph, seconds)."""
    start = time.perf_counter()
    graph = build_data_graph(db)
    return graph, time.perf_counter() - start
