"""Builds the data graph from a database (one pass per FK edge)."""

from __future__ import annotations

import time

import numpy as np

from repro.db.database import Database
from repro.datagraph.graph import DataGraph, FkAdjacency


def build_data_graph(db: Database) -> DataGraph:
    """Index every FK relationship of *db* at the tuple level.

    The construction is a single scan per owning table: O(total rows).
    The paper reports 17 s for DBLP and 128 s for TPC-H SF-1 on 2011
    hardware; :func:`timed_build` measures ours for the DGBUILD bench.
    """
    adjacencies: dict[tuple[str, str], FkAdjacency] = {}
    for owner_name, fk in db.foreign_keys():
        owner = db.table(owner_name)
        target = db.table(fk.ref_table)
        col_idx = owner.schema.column_index(fk.column)
        forward = np.full(len(owner), -1, dtype=np.int64)
        backward: list[list[int]] = [[] for _ in range(len(target))]
        for row_id, row in owner.scan():
            ref = row[col_idx]
            if ref is None:
                continue
            target_row = target.row_id_for_pk(ref)
            forward[row_id] = target_row
            backward[target_row].append(row_id)
        adjacencies[(owner_name, fk.column)] = FkAdjacency(
            owner=owner_name,
            column=fk.column,
            target=fk.ref_table,
            forward=forward,
            backward=backward,
        )
    return DataGraph(adjacencies)


def timed_build(db: Database) -> tuple[DataGraph, float]:
    """Build the data graph and return (graph, seconds)."""
    start = time.perf_counter()
    graph = build_data_graph(db)
    return graph, time.perf_counter() - start
