"""The data graph: per-FK adjacency over tuple row ids."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.schema_graph.gds import JoinSpec, JunctionJoin, RefJoin, ReverseJoin


@dataclass
class FkAdjacency:
    """Adjacency for one FK edge ``owner.column → target``.

    * ``forward[owner_row] = target_row`` (or -1 for NULL FKs);
    * ``backward[target_row] = [owner_rows...]`` (list-of-lists).
    """

    owner: str
    column: str
    target: str
    forward: np.ndarray
    backward: list[list[int]]

    @property
    def edge_count(self) -> int:
        return int((self.forward >= 0).sum())


class DataGraph:
    """An index of every FK relationship at the tuple level.

    Keyed by ``(owner_table, fk_column)``.  The graph holds row ids only —
    no attribute data — matching the paper's description of the structure.
    """

    def __init__(self, adjacencies: dict[tuple[str, str], FkAdjacency]) -> None:
        self._adj = dict(adjacencies)

    def adjacency(self, owner: str, column: str) -> FkAdjacency:
        try:
            return self._adj[(owner, column)]
        except KeyError:
            raise GraphError(f"no adjacency for FK {owner}.{column}") from None

    @property
    def edge_count(self) -> int:
        return sum(adj.edge_count for adj in self._adj.values())

    def approx_size_bytes(self) -> int:
        """Rough memory footprint (the paper reports 150 MB / 500 MB)."""
        total = 0
        for adj in self._adj.values():
            total += adj.forward.nbytes
            total += sum(8 * len(bucket) + 56 for bucket in adj.backward)
        return total

    # ------------------------------------------------------------------ #
    # Children materialisation per G_DS join spec
    # ------------------------------------------------------------------ #
    def children_of(
        self,
        join: JoinSpec,
        parent_table: str,
        parent_row: int,
        origin_row: int | None = None,
    ) -> list[int]:
        """Row ids of the child tuples reached from *parent_row* via *join*.

        ``origin_row`` implements the co-author exclusion: for a
        :class:`~repro.schema_graph.gds.JunctionJoin` with ``exclude_origin``
        set, a child equal to the tuple the OS arrived from is dropped.
        """
        if isinstance(join, RefJoin):
            adj = self.adjacency(parent_table, join.fk_column)
            target = int(adj.forward[parent_row])
            return [target] if target >= 0 else []
        if isinstance(join, ReverseJoin):
            adj = self.adjacency(join.child_table, join.fk_column)
            return list(adj.backward[parent_row])
        if isinstance(join, JunctionJoin):
            into_parent = self.adjacency(join.junction_table, join.from_column)
            to_target = self.adjacency(join.junction_table, join.to_column)
            children: list[int] = []
            for junction_row in into_parent.backward[parent_row]:
                target = int(to_target.forward[junction_row])
                if target < 0:
                    continue
                if join.exclude_origin and origin_row is not None and target == origin_row:
                    continue
                children.append(target)
            return children
        raise GraphError(f"unknown join spec: {join!r}")  # pragma: no cover

    def __repr__(self) -> str:
        return f"DataGraph(fk_edges={len(self._adj)}, tuple_edges={self.edge_count})"
