"""The data graph: per-FK adjacency over tuple row ids, CSR-packed.

Both directions of every FK edge live in flat numpy arrays:

* ``forward[owner_row] = target_row`` (or -1 for NULL FKs);
* the reverse direction is CSR: ``backward_indices[backward_indptr[t] :
  backward_indptr[t + 1]]`` are the owner rows referencing target row ``t``,
  in ascending row order.

The CSR layout is what makes the columnar OS-generation hot path possible:
a :class:`~repro.schema_graph.gds.ReverseJoin` hop is a zero-copy array
slice, a :class:`~repro.schema_graph.gds.JunctionJoin` hop is one gather
plus a mask, and whole frontiers of parent rows expand with ``np.repeat``
(see :func:`repro.core.generation.generate_os_flat`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.schema_graph.gds import JoinSpec, JunctionJoin, RefJoin, ReverseJoin
from repro.util.arrays import gather_ranges

_EMPTY_ROWS = np.empty(0, dtype=np.int32)


@dataclass
class FkAdjacency:
    """Adjacency for one FK edge ``owner.column → target``.

    * ``forward[owner_row] = target_row`` (or -1 for NULL FKs);
    * ``backward_indptr`` / ``backward_indices`` — CSR over target rows:
      owner rows referencing target row ``t`` are
      ``backward_indices[backward_indptr[t] : backward_indptr[t + 1]]``.
    """

    owner: str
    column: str
    target: str
    forward: np.ndarray
    backward_indptr: np.ndarray
    backward_indices: np.ndarray

    @property
    def edge_count(self) -> int:
        return int(self.backward_indices.size)

    def backward(self, target_row: int) -> np.ndarray:
        """Owner rows referencing *target_row* — a zero-copy CSR slice."""
        return self.backward_indices[
            self.backward_indptr[target_row] : self.backward_indptr[target_row + 1]
        ]

    def backward_many(
        self, target_rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized multi-row backward expansion.

        Returns ``(rep, owner_rows)`` where ``owner_rows`` is the
        concatenation of every target row's referencing owner rows and
        ``rep[k]`` is the position within *target_rows* that produced
        ``owner_rows[k]`` (for ``np.repeat``-style frontier expansion).
        """
        starts = self.backward_indptr[target_rows]
        counts = self.backward_indptr[target_rows + 1] - starts
        rep, positions = gather_ranges(starts, counts)
        return rep, self.backward_indices[positions]

    @property
    def nbytes(self) -> int:
        """Exact memory footprint of the adjacency arrays."""
        return (
            self.forward.nbytes
            + self.backward_indptr.nbytes
            + self.backward_indices.nbytes
        )


class DataGraph:
    """An index of every FK relationship at the tuple level.

    Keyed by ``(owner_table, fk_column)``.  The graph holds row ids only —
    no attribute data — matching the paper's description of the structure.
    """

    def __init__(self, adjacencies: dict[tuple[str, str], FkAdjacency]) -> None:
        self._adj = dict(adjacencies)

    def adjacency(self, owner: str, column: str) -> FkAdjacency:
        try:
            return self._adj[(owner, column)]
        except KeyError:
            raise GraphError(f"no adjacency for FK {owner}.{column}") from None

    def adjacencies(self) -> list[FkAdjacency]:
        """Every FK adjacency, ordered by ``(owner, column)``.

        The deterministic order is what the snapshot store
        (:mod:`repro.persist`) relies on to pack and reload the CSR arrays
        file-for-file."""
        return [self._adj[key] for key in sorted(self._adj)]

    @property
    def edge_count(self) -> int:
        return sum(adj.edge_count for adj in self._adj.values())

    def size_bytes(self) -> int:
        """Exact memory footprint of the adjacency arrays.

        The CSR layout makes this exact (the paper reports 150 MB / 500 MB
        for its graphs); the old list-of-lists layout could only estimate.
        """
        return sum(adj.nbytes for adj in self._adj.values())

    def approx_size_bytes(self) -> int:
        """Backwards-compatible alias for :meth:`size_bytes` (now exact)."""
        return self.size_bytes()

    # ------------------------------------------------------------------ #
    # Children materialisation per G_DS join spec
    # ------------------------------------------------------------------ #
    def children_of(
        self,
        join: JoinSpec,
        parent_table: str,
        parent_row: int,
        origin_row: int | None = None,
    ) -> np.ndarray:
        """Row ids of the child tuples reached from *parent_row* via *join*.

        Returns an int array; the :class:`~repro.schema_graph.gds.ReverseJoin`
        branch is a zero-copy CSR slice — callers must treat the result as
        read-only and must not mutate it.

        ``origin_row`` implements the co-author exclusion: for a
        :class:`~repro.schema_graph.gds.JunctionJoin` with ``exclude_origin``
        set, a child equal to the tuple the OS arrived from is dropped.
        """
        if isinstance(join, RefJoin):
            adj = self.adjacency(parent_table, join.fk_column)
            target = adj.forward[parent_row : parent_row + 1]
            return target if target[0] >= 0 else _EMPTY_ROWS
        if isinstance(join, ReverseJoin):
            adj = self.adjacency(join.child_table, join.fk_column)
            return adj.backward(parent_row)
        if isinstance(join, JunctionJoin):
            into_parent = self.adjacency(join.junction_table, join.from_column)
            to_target = self.adjacency(join.junction_table, join.to_column)
            targets = to_target.forward[into_parent.backward(parent_row)]
            mask = targets >= 0
            if join.exclude_origin and origin_row is not None:
                mask &= targets != origin_row
            return targets[mask]
        raise GraphError(f"unknown join spec: {join!r}")  # pragma: no cover

    def __repr__(self) -> str:
        return f"DataGraph(fk_edges={len(self._adj)}, tuple_edges={self.edge_count})"
