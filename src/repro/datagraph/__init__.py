"""Tuple-level data graph index.

Section 6.3 of the paper: "our data-graph nodes correspond to the database
tuples and edges to tuples relationships (through their primary and foreign
keys).  Note that the data-graph is only an index and does not contain actual
data as nodes capture only keys and global importance."  OSs generate much
faster from this in-memory index than "directly from the database"
(0.2 s vs 12.9 s for Supplier OSs in the paper); both backends are
implemented in :mod:`repro.core.generation` and compared in Figure 10(f).
"""

from repro.datagraph.graph import DataGraph, FkAdjacency
from repro.datagraph.builder import build_data_graph

__all__ = ["DataGraph", "FkAdjacency", "build_data_graph"]
