"""Shared utilities: heaps, RNG helpers, timers, and text rendering.

These are deliberately small, dependency-free building blocks used across the
database engine, the ranking subsystem, and the size-l algorithms.
"""

from repro.util.heaps import BoundedTopHeap, KeyedMinHeap
from repro.util.rng import derive_rng, make_rng
from repro.util.timing import Stopwatch, TimingBreakdown
from repro.util.text import format_table, indent_block, truncate

__all__ = [
    "BoundedTopHeap",
    "KeyedMinHeap",
    "derive_rng",
    "make_rng",
    "Stopwatch",
    "TimingBreakdown",
    "format_table",
    "indent_block",
    "truncate",
]
