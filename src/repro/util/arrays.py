"""Shared numpy array idioms for the columnar hot path."""

from __future__ import annotations

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


def gather_ranges(starts: np.ndarray, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the integer ranges ``[starts[i], starts[i] + counts[i])``.

    Returns ``(rep, values)``: ``values`` is the concatenation of every
    range and ``rep[k]`` is the position ``i`` that produced ``values[k]``.
    This is the CSR multi-row expansion at the heart of frontier-at-a-time
    traversal (one ``np.repeat`` + one ``arange`` instead of a Python loop).
    """
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    rep = np.repeat(np.arange(len(starts), dtype=np.int64), counts)
    ends_cum = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends_cum - counts, counts)
    return rep, np.repeat(starts, counts) + offsets
