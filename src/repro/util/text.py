"""Plain-text rendering helpers for OS trees and report tables."""

from __future__ import annotations

from typing import Iterable, Sequence


def truncate(text: str, width: int, ellipsis: str = "...") -> str:
    """Clip *text* to *width* characters, appending an ellipsis when clipped."""
    if width <= 0:
        return ""
    if len(text) <= width:
        return text
    if width <= len(ellipsis):
        return text[:width]
    return text[: width - len(ellipsis)] + ellipsis


def indent_block(text: str, prefix: str) -> str:
    """Prefix every line of *text* with *prefix* (used by OS renderers)."""
    return "\n".join(prefix + line for line in text.splitlines())


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned plain-text table (the benches print paper series).

    Floats are formatted with *float_format*; all other values with ``str``.
    Column widths adapt to the longest cell.  Returns the table as a single
    string without a trailing newline.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for idx, cell in enumerate(row):
            if idx < len(widths):
                widths[idx] = max(widths[idx], len(cell))
            else:
                widths.append(len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(cells))

    lines = [fmt_line(list(headers)), fmt_line(["-" * w for w in widths])]
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)
