"""Seeded random-number helpers.

All stochastic behaviour in the library (dataset generation, simulated
evaluators, random OS sampling) flows through :func:`make_rng` /
:func:`derive_rng` so that every experiment is reproducible bit-for-bit from
a single integer seed.
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a NumPy Generator from an integer seed (or entropy if None)."""
    return np.random.default_rng(seed)


def derive_rng(seed: int, *labels: object) -> np.random.Generator:
    """Derive an independent, reproducible Generator from a seed and labels.

    The labels (e.g. ``("evaluator", 3)``) are hashed together with the seed,
    so distinct subsystems never share a stream and adding a new consumer
    cannot perturb existing ones.
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode("utf-8"))
    child_seed = int.from_bytes(digest.digest()[:8], "big")
    return np.random.default_rng(child_seed)
