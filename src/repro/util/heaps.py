"""Priority-queue helpers used by the size-l algorithms.

Two structures are provided:

:class:`KeyedMinHeap`
    A min-heap keyed by an arbitrary float score with stable tie-breaking and
    lazy deletion.  This backs the leaf priority queue of the Bottom-Up
    Pruning algorithm (Algorithm 2 in the paper), where entries must be
    removable when a pruned leaf exposes its parent.

:class:`BoundedTopHeap`
    A bounded min-heap that retains the *k* largest scores seen so far, with
    O(log k) insertion.  This backs the ``top-l PQ`` of the prelim-l OS
    generation algorithm (Algorithm 4), whose smallest retained value is the
    ``largest-l`` threshold.
"""

from __future__ import annotations

import heapq
from typing import Generic, Hashable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class KeyedMinHeap(Generic[T]):
    """Min-heap of (score, item) pairs with stable ordering and lazy deletes.

    Ties on score are broken by insertion order, which makes every algorithm
    built on top of this heap fully deterministic.  Items must be hashable
    and unique; re-pushing an existing item raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, T]] = []
        self._live: dict[T, int] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, item: T) -> bool:
        return item in self._live

    def push(self, item: T, score: float) -> None:
        """Insert *item* with *score*; raises ``ValueError`` on duplicates."""
        if item in self._live:
            raise ValueError(f"item already in heap: {item!r}")
        seq = self._counter
        self._counter += 1
        self._live[item] = seq
        heapq.heappush(self._heap, (score, seq, item))

    def discard(self, item: T) -> bool:
        """Lazily remove *item* if present; returns True when removed."""
        if item not in self._live:
            return False
        del self._live[item]
        return True

    def _drop_stale(self) -> None:
        while self._heap:
            _score, seq, item = self._heap[0]
            if self._live.get(item) == seq:
                return
            heapq.heappop(self._heap)

    def peek(self) -> tuple[T, float]:
        """Return (item, score) with the smallest score without removing it."""
        self._drop_stale()
        if not self._heap:
            raise IndexError("peek from empty heap")
        score, _seq, item = self._heap[0]
        return item, score

    def pop(self) -> tuple[T, float]:
        """Remove and return (item, score) with the smallest score."""
        self._drop_stale()
        if not self._heap:
            raise IndexError("pop from empty heap")
        score, _seq, item = heapq.heappop(self._heap)
        del self._live[item]
        return item, score

    def items(self) -> Iterator[T]:
        """Iterate over live items in arbitrary order."""
        return iter(self._live)


class BoundedTopHeap(Generic[T]):
    """Retains the *capacity* items with the largest scores seen so far.

    The structure mirrors the paper's ``top-l PQ``:

    * :meth:`offer` inserts a candidate, evicting the current minimum when
      the heap is full and the candidate beats it.
    * :attr:`threshold` is the paper's ``largest-l``: the smallest retained
      score once the heap is full, and 0.0 before that (Algorithm 4,
      lines 20-23).

    Ties on score are broken in favour of earlier insertions (later equal
    scores do not evict earlier ones), keeping behaviour deterministic.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._heap: list[tuple[float, int, T]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self._capacity

    @property
    def threshold(self) -> float:
        """The paper's ``largest-l``: min retained score, or 0.0 if not full."""
        if not self.is_full:
            return 0.0
        return self._heap[0][0]

    def offer(self, item: T, score: float) -> bool:
        """Offer a candidate; returns True when it was retained."""
        if not self.is_full:
            seq = self._counter
            self._counter += 1
            heapq.heappush(self._heap, (score, seq, item))
            return True
        if score <= self._heap[0][0]:
            return False
        seq = self._counter
        self._counter += 1
        heapq.heapreplace(self._heap, (score, seq, item))
        return True

    def items(self) -> list[tuple[T, float]]:
        """Return retained (item, score) pairs sorted by descending score."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], entry[1]))
        return [(item, score) for score, _seq, item in ordered]
