"""Lightweight timing helpers for the efficiency experiments (Figure 10)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Stopwatch:
    """A context-manager stopwatch measuring wall-clock seconds.

    Usage::

        with Stopwatch() as sw:
            run_algorithm()
        print(sw.elapsed)
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingBreakdown:
    """Accumulates named timing phases, mirroring Figure 10(f)'s cost split.

    The paper breaks total cost into "OS generation" (bottom of the bar) and
    "size-l computation" (top of the bar); this class generalises that to any
    number of named phases.
    """

    phases: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate *seconds* into *phase*."""
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def time(self, phase: str) -> "_PhaseTimer":
        """Context manager that accumulates its duration into *phase*."""
        return _PhaseTimer(self, phase)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def as_row(self) -> dict[str, float]:
        """Return phases plus a ``total`` entry, for report tables."""
        row = dict(self.phases)
        row["total"] = self.total
        return row


class _PhaseTimer:
    def __init__(self, breakdown: TimingBreakdown, phase: str) -> None:
        self._breakdown = breakdown
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._breakdown.add(self._phase, time.perf_counter() - self._start)
