"""Streaming loader for the DBLP XML dump → the paper's relational schema.

``repro load-dblp --xml dblp.xml --out dblp.sqlite`` parses the public
dump incrementally with :func:`xml.etree.ElementTree.iterparse` —
processed record elements are cleared as soon as they close, so the
dump is never materialised in RAM — and writes the Figure 1 schema
(conference/year/paper/author/writes/cites) straight into a SQLite file
in the :mod:`repro.storage.sqlio` layout, batched.  ``--limit N`` stops
after N accepted paper records, which is how CI exercises the real
parser on the bundled fixture.

Record mapping (``article`` and ``inproceedings`` elements):

* ``journal``/``booktitle`` → ``conference`` (deduplicated by name);
* ``(conference, year)`` → one ``year`` row;
* ``title``/``year`` → ``paper``; each ``author`` → ``author``
  (deduplicated by exact name) + one ``writes`` edge;
* ``cite`` elements carry DBLP record keys; citations are resolved to
  ``cites`` edges after the scan, keeping only pairs where both ends
  were accepted (bounded memory: one key→id dict, not the XML).

:func:`write_dblp_xml` is the inverse for testing: it renders any
in-memory DBLP-schema database as a dump-shaped XML file, so property
tests and benchmarks can push ≥100k synthetic tuples through the *real*
parser without committing a large fixture.
"""

from __future__ import annotations

import sqlite3
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterator
from xml.etree import ElementTree
from xml.sax.saxutils import escape

from repro.datasets.dblp import _dblp_schemas
from repro.errors import StorageError
from repro.storage.sqlio import (
    FORMAT_VERSION,
    _INSERT_BATCH,
    _schema_to_json,
    create_table_stmt,
    index_stmts,
    insert_stmt,
)

#: DBLP record elements treated as papers.  (``proceedings``, ``www``,
#: ``phdthesis`` etc. are skipped — the paper's schema models papers.)
RECORD_TAGS = frozenset({"article", "inproceedings"})


@dataclass
class LoadReport:
    """What one ``load-dblp`` run produced."""

    path: Path
    papers: int = 0
    authors: int = 0
    conferences: int = 0
    years: int = 0
    writes: int = 0
    cites: int = 0
    skipped: int = 0
    unresolved_citations: int = 0

    @property
    def total_tuples(self) -> int:
        return (
            self.papers
            + self.authors
            + self.conferences
            + self.years
            + self.writes
            + self.cites
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": str(self.path),
            "papers": self.papers,
            "authors": self.authors,
            "conferences": self.conferences,
            "years": self.years,
            "writes": self.writes,
            "cites": self.cites,
            "skipped": self.skipped,
            "unresolved_citations": self.unresolved_citations,
            "total_tuples": self.total_tuples,
        }


@dataclass
class _Batcher:
    """Batched INSERTs for one table."""

    conn: sqlite3.Connection
    sql: str
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    count: int = 0

    def add(self, row: tuple[Any, ...]) -> None:
        self.rows.append(row)
        self.count += 1
        if len(self.rows) >= _INSERT_BATCH:
            self.flush()

    def flush(self) -> None:
        if self.rows:
            self.conn.executemany(self.sql, self.rows)
            self.rows.clear()


def _record_fields(elem: ElementTree.Element) -> tuple[
    "str | None", "str | None", "int | None", "str | None", list[str], list[str]
]:
    key = elem.get("key")
    title: "str | None" = None
    year: "int | None" = None
    venue: "str | None" = None
    authors: list[str] = []
    citations: list[str] = []
    for child in elem:
        tag = child.tag
        if tag == "author":
            name = "".join(child.itertext()).strip()
            if name and name not in authors:
                authors.append(name)
        elif tag == "title":
            text = "".join(child.itertext()).strip()
            title = text or None
        elif tag == "year":
            text = (child.text or "").strip()
            year = int(text) if text.isdigit() else None
        elif tag in ("journal", "booktitle"):
            text = "".join(child.itertext()).strip()
            venue = venue or (text or None)
        elif tag == "cite":
            ref = (child.text or "").strip()
            if ref and ref != "...":
                citations.append(ref)
    return key, title, year, venue, authors, citations


def _iter_records(
    source: "str | Path | IO[bytes]",
) -> Iterator[ElementTree.Element]:
    """Stream record elements, clearing each (and the root) as it closes."""
    try:
        context = ElementTree.iterparse(source, events=("start", "end"))
        _event, root = next(context)
        for event, elem in context:
            if event != "end" or elem.tag not in RECORD_TAGS:
                continue
            yield elem
            # Free the processed subtree — this is what keeps the full
            # dump (GBs of XML) out of RAM.
            elem.clear()
            root.clear()
    except ElementTree.ParseError as exc:
        raise StorageError(f"malformed DBLP XML: {exc}") from exc
    except StopIteration:
        raise StorageError("malformed DBLP XML: empty document") from None


def load_dblp_xml(
    xml_path: "str | Path | IO[bytes]",
    out_path: "str | Path",
    *,
    limit: "int | None" = None,
    overwrite: bool = True,
) -> LoadReport:
    """Parse a DBLP dump into a SQLite file; returns a :class:`LoadReport`.

    *limit* caps accepted paper records (CI's sampling knob); records
    missing a key, title, year, venue, or any author are skipped and
    counted.  The output loads with :func:`repro.storage.sqlio.
    open_dataset` as a ``dblp`` dataset.
    """
    if isinstance(xml_path, (str, Path)) and not Path(xml_path).exists():
        raise StorageError(f"no such DBLP XML file: {xml_path}")
    out_path = Path(out_path)
    if out_path.exists():
        if not overwrite:
            raise StorageError(f"refusing to overwrite existing file: {out_path}")
        out_path.unlink()
    out_path.parent.mkdir(parents=True, exist_ok=True)

    schemas = {schema.name: schema for schema in _dblp_schemas()}
    report = LoadReport(path=out_path)
    conn = sqlite3.connect(str(out_path))
    try:
        with conn:
            for schema in schemas.values():
                conn.execute(create_table_stmt(schema))
            papers = _Batcher(conn, insert_stmt(schemas["paper"]))
            writes = _Batcher(conn, insert_stmt(schemas["writes"]))
            cites = _Batcher(conn, insert_stmt(schemas["cites"]))

            conf_ids: dict[str, int] = {}
            year_ids: dict[tuple[int, int], int] = {}
            author_ids: dict[str, int] = {}
            paper_ids: dict[str, int] = {}
            #: (citing_key, cited_key) edges, resolved after the scan
            pending_cites: list[tuple[str, str]] = []

            for elem in _iter_records(xml_path):
                if limit is not None and report.papers >= limit:
                    break
                key, title, year, venue, authors, citations = _record_fields(elem)
                if not (key and title and year and venue and authors):
                    report.skipped += 1
                    continue
                conf_id = conf_ids.setdefault(venue, len(conf_ids))
                year_id = year_ids.setdefault(
                    (conf_id, year), len(year_ids)
                )
                if key in paper_ids:
                    report.skipped += 1  # duplicate record key
                    continue
                paper_id = len(paper_ids)
                paper_ids[key] = paper_id
                papers.add((paper_id, paper_id, title, year_id))
                report.papers += 1
                for name in authors:
                    author_id = author_ids.setdefault(name, len(author_ids))
                    writes.add((writes.count, writes.count, author_id, paper_id))
                for cited_key in citations:
                    pending_cites.append((key, cited_key))

            for citing_key, cited_key in pending_cites:
                citing = paper_ids.get(citing_key)
                cited = paper_ids.get(cited_key)
                if citing is None or cited is None or citing == cited:
                    report.unresolved_citations += 1
                    continue
                cites.add((cites.count, cites.count, citing, cited))

            conn.executemany(
                insert_stmt(schemas["conference"]),
                [(cid, cid, name) for name, cid in conf_ids.items()],
            )
            conn.executemany(
                insert_stmt(schemas["year"]),
                [
                    (yid, yid, cid, year)
                    for (cid, year), yid in year_ids.items()
                ],
            )
            conn.executemany(
                insert_stmt(schemas["author"]),
                [(aid, aid, name) for name, aid in author_ids.items()],
            )
            for batcher in (papers, writes, cites):
                batcher.flush()
            report.authors = len(author_ids)
            report.conferences = len(conf_ids)
            report.years = len(year_ids)
            report.writes = writes.count
            report.cites = cites.count

            catalog = [_schema_to_json(schema) for schema in schemas.values()]
            meta = {
                "format_version": str(FORMAT_VERSION),
                "database_name": "dblp",
                "dataset_kind": "dblp",
                "catalog": json.dumps(catalog),
            }
            counts = {
                "conference": report.conferences,
                "year": report.years,
                "paper": report.papers,
                "author": report.authors,
                "writes": report.writes,
                "cites": report.cites,
            }
            for name, count in counts.items():
                meta[f"slots:{name}"] = str(count)
            conn.execute(
                "CREATE TABLE repro_meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            conn.executemany(
                "INSERT INTO repro_meta (key, value) VALUES (?, ?)",
                sorted(meta.items()),
            )
            for schema in schemas.values():
                for stmt in index_stmts(schema):
                    conn.execute(stmt)
    finally:
        conn.close()
    return report


# ---------------------------------------------------------------------- #
# The inverse: render a DBLP-schema database as dump-shaped XML
# ---------------------------------------------------------------------- #
def write_dblp_xml(db: Any, path: "str | Path") -> Path:
    """Render an in-memory DBLP-schema database as a DBLP-format XML file.

    Produces one ``inproceedings`` record per live paper (key
    ``conf/<conf_id>/p<paper_id>``) with its authors, venue, year, and
    ``cite`` elements, so the *real* streaming parser can be exercised at
    any scale from the synthetic generator.  *db* is a
    :class:`~repro.db.database.Database` (or anything with ``.db``).
    """
    database = getattr(db, "db", db)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    paper = database.table("paper")
    year_table = database.table("year")
    conference = database.table("conference")
    author = database.table("author")

    authors_of: dict[int, list[int]] = {}
    for _row_id, row in database.table("writes").scan():
        w = database.table("writes").schema
        authors_of.setdefault(
            row[w.column_index("paper_id")], []
        ).append(row[w.column_index("author_id")])
    cited_by: dict[int, list[int]] = {}
    for _row_id, row in database.table("cites").scan():
        c = database.table("cites").schema
        cited_by.setdefault(
            row[c.column_index("citing_id")], []
        ).append(row[c.column_index("cited_id")])

    def paper_key(paper_pk: int, conf_pk: int) -> str:
        return f"conf/c{conf_pk}/p{paper_pk}"

    p_schema = paper.schema
    y_schema = year_table.schema
    with path.open("w", encoding="utf-8") as out:
        out.write('<?xml version="1.0" encoding="UTF-8"?>\n<dblp>\n')
        for _row_id, row in paper.scan():
            paper_pk = row[p_schema.pk_index]
            year_row = year_table.row(
                year_table.row_id_for_pk(row[p_schema.column_index("year_id")])
            )
            conf_pk = year_row[y_schema.column_index("conference_id")]
            conf_row = conference.row(conference.row_id_for_pk(conf_pk))
            venue = conf_row[conference.schema.column_index("name")]
            out.write(
                f'<inproceedings key="{escape(paper_key(paper_pk, conf_pk))}">\n'
            )
            for author_pk in authors_of.get(paper_pk, []):
                name = author.row(author.row_id_for_pk(author_pk))[
                    author.schema.column_index("name")
                ]
                out.write(f"<author>{escape(str(name))}</author>\n")
            out.write(
                f"<title>{escape(str(row[p_schema.column_index('title')]))}</title>\n"
            )
            out.write(f"<booktitle>{escape(str(venue))}</booktitle>\n")
            out.write(
                f"<year>{year_row[y_schema.column_index('year')]}</year>\n"
            )
            for cited_pk in cited_by.get(paper_pk, []):
                cited_row = paper.row(paper.row_id_for_pk(cited_pk))
                cited_year = year_table.row(
                    year_table.row_id_for_pk(
                        cited_row[p_schema.column_index("year_id")]
                    )
                )
                cited_conf = cited_year[y_schema.column_index("conference_id")]
                out.write(
                    f"<cite>{escape(paper_key(cited_pk, cited_conf))}</cite>\n"
                )
            out.write("</inproceedings>\n")
        out.write("</dblp>\n")
    return path
