"""Round-trip any in-memory :class:`~repro.db.database.Database` to/from SQLite.

The file layout is deliberately boring SQL:

* one SQLite table per relational table, with an explicit
  ``repro_row_id INTEGER PRIMARY KEY`` column pinning each tuple's slot
  position (row ids are load-bearing identity for every derived
  structure — CSR offsets, importance arrays, snapshot arenas — so they
  must survive the round trip bit-for-bit, tombstone gaps included);
* a ``repro_meta`` key/value table holding the schema catalog as JSON
  (column types, nullability, text-searchable flags, PKs, FKs), the
  dataset kind, and a format version;
* an index on every FK column and a unique index on every declared PK,
  so the :class:`~repro.storage.sqlite_backend.SQLiteBackend`'s join
  statements run indexed.

:func:`open_dataset` re-wraps an imported database in its dataset
family's wrapper (``dblp``/``tpch``) so :class:`~repro.core.builder.
EngineBuilder.from_dataset` gets the paper's G_DS and importance store.
Missing files, non-SQLite bytes, and unsupported format versions all
raise :class:`~repro.errors.StorageError` — which the CLI maps to the
pinned usage-error exit code 2.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import threading
from pathlib import Path
from typing import Any

from repro.db.database import Database
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.types import ColumnType
from repro.errors import StorageError

#: Bumped on any incompatible change to the file layout.
FORMAT_VERSION = 1

_SQLITE_TYPE = {
    ColumnType.INT: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.TEXT: "TEXT",
    ColumnType.BOOL: "INTEGER",
}

_INSERT_BATCH = 2000


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def _schema_to_json(schema: TableSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "primary_key": schema.primary_key,
        "columns": [
            {
                "name": col.name,
                "type": col.type.name,
                "nullable": col.nullable,
                "text_searchable": col.text_searchable,
                "display": col.display,
            }
            for col in schema.columns
        ],
        "foreign_keys": [
            {
                "column": fk.column,
                "ref_table": fk.ref_table,
                "ref_column": fk.ref_column,
            }
            for fk in schema.foreign_keys
        ],
    }


def _schema_from_json(payload: dict[str, Any]) -> TableSchema:
    try:
        columns = [
            Column(
                name=col["name"],
                type=ColumnType[col["type"]],
                nullable=col["nullable"],
                text_searchable=col["text_searchable"],
                display=col["display"],
            )
            for col in payload["columns"]
        ]
        foreign_keys = [
            ForeignKey(fk["column"], fk["ref_table"], fk["ref_column"])
            for fk in payload["foreign_keys"]
        ]
        return TableSchema(
            name=payload["name"],
            columns=columns,
            primary_key=payload["primary_key"],
            foreign_keys=foreign_keys,
        )
    except (KeyError, TypeError) as exc:
        raise StorageError(f"corrupt schema catalog entry: {exc}") from exc


def _to_sqlite_value(value: Any, column_type: ColumnType) -> Any:
    if value is None:
        return None
    if column_type is ColumnType.BOOL:
        return int(value)
    return value


def _from_sqlite_value(value: Any, column_type: ColumnType) -> Any:
    if value is None:
        return None
    if column_type is ColumnType.BOOL:
        return bool(value)
    if column_type is ColumnType.FLOAT:
        return float(value)
    return value


# ---------------------------------------------------------------------- #
# Export
# ---------------------------------------------------------------------- #
def export_database(
    db: Database,
    path: "str | Path",
    *,
    dataset_kind: "str | None" = None,
    overwrite: bool = True,
) -> Path:
    """Write *db* to a SQLite file at *path*; returns the path.

    *dataset_kind* ("dblp"/"tpch") records which dataset family the
    schema belongs to so :func:`open_dataset` can rebuild the G_DS and
    importance store; ``None`` leaves the file loadable by
    :func:`import_database` only.
    """
    path = Path(path)
    if path.exists():
        if not overwrite:
            raise StorageError(f"refusing to overwrite existing file: {path}")
        path.unlink()
    path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(str(path))
    try:
        with conn:
            conn.execute(
                "CREATE TABLE repro_meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            catalog = [_schema_to_json(db.table(name).schema) for name in db.table_names]
            meta = {
                "format_version": str(FORMAT_VERSION),
                "database_name": db.name,
                "dataset_kind": dataset_kind or "",
                "catalog": json.dumps(catalog),
            }
            conn.executemany(
                "INSERT INTO repro_meta (key, value) VALUES (?, ?)",
                sorted(meta.items()),
            )
            for name in db.table_names:
                _export_table(conn, db, name)
    finally:
        conn.close()
    return path


def create_table_stmt(schema: TableSchema) -> str:
    """The ``CREATE TABLE`` statement for *schema*, slot column included."""
    col_defs = ["repro_row_id INTEGER PRIMARY KEY"]
    for col in schema.columns:
        null = "" if col.nullable else " NOT NULL"
        col_defs.append(f"{_quote(col.name)} {_SQLITE_TYPE[col.type]}{null}")
    return f"CREATE TABLE {_quote(schema.name)} ({', '.join(col_defs)})"


def index_stmts(schema: TableSchema) -> list[str]:
    """Unique PK index + one index per FK column (the backend's joins)."""
    name = schema.name
    stmts = [
        f"CREATE UNIQUE INDEX {_quote('ux_' + name + '_pk')} "
        f"ON {_quote(name)} ({_quote(schema.primary_key)})"
    ]
    for fk in schema.foreign_keys:
        stmts.append(
            f"CREATE INDEX {_quote('ix_' + name + '_' + fk.column)} "
            f"ON {_quote(name)} ({_quote(fk.column)})"
        )
    return stmts


def insert_stmt(schema: TableSchema) -> str:
    placeholders = ", ".join(["?"] * (len(schema.columns) + 1))
    return f"INSERT INTO {_quote(schema.name)} VALUES ({placeholders})"


def _export_table(conn: sqlite3.Connection, db: Database, name: str) -> None:
    table = db.table(name)
    schema = table.schema
    conn.execute(create_table_stmt(schema))
    insert_sql = insert_stmt(schema)
    types = [col.type for col in schema.columns]
    batch: list[tuple[Any, ...]] = []
    for row_id, row in table.scan():
        batch.append(
            (row_id, *(_to_sqlite_value(v, t) for v, t in zip(row, types)))
        )
        if len(batch) >= _INSERT_BATCH:
            conn.executemany(insert_sql, batch)
            batch.clear()
    if batch:
        conn.executemany(insert_sql, batch)
    # Tombstone gaps are implicit (missing repro_row_id values); record the
    # slot count so the importer can restore the exact slot list length.
    conn.execute(
        "INSERT INTO repro_meta (key, value) VALUES (?, ?)",
        (f"slots:{name}", str(len(table))),
    )
    for stmt in index_stmts(schema):
        conn.execute(stmt)


# ---------------------------------------------------------------------- #
# Import
# ---------------------------------------------------------------------- #
def _read_meta(conn: sqlite3.Connection, path: Path) -> dict[str, str]:
    try:
        rows = conn.execute("SELECT key, value FROM repro_meta").fetchall()
    except sqlite3.DatabaseError as exc:
        raise StorageError(
            f"not a repro SQLite file (missing or unreadable repro_meta): "
            f"{path}: {exc}"
        ) from exc
    return dict(rows)


def import_database(path: "str | Path") -> Database:
    """Load a SQLite file written by :func:`export_database`.

    The returned database is slot-for-slot identical to the exported one
    (tombstone gaps restored as ``None`` slots) and carries
    ``sqlite_path`` so the ``sqlite`` backend can reattach the file.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no such SQLite file: {path}")
    try:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    except sqlite3.Error as exc:  # pragma: no cover - connect rarely fails
        raise StorageError(f"cannot open SQLite file {path}: {exc}") from exc
    try:
        meta = _read_meta(conn, path)
        version = meta.get("format_version")
        if version != str(FORMAT_VERSION):
            raise StorageError(
                f"unsupported storage format version {version!r} in {path} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        try:
            catalog = json.loads(meta["catalog"])
        except (KeyError, ValueError) as exc:
            raise StorageError(f"corrupt schema catalog in {path}: {exc}") from exc
        db = Database(meta.get("database_name") or path.stem)
        for payload in catalog:
            db.create_table(_schema_from_json(payload))
        for payload in catalog:
            _import_table(conn, db, payload["name"], meta, path)
    except sqlite3.DatabaseError as exc:
        raise StorageError(f"corrupt SQLite file {path}: {exc}") from exc
    finally:
        conn.close()
    db.ensure_fk_indexes()
    db.sqlite_path = str(path)  # type: ignore[attr-defined]
    return db


def _import_table(
    conn: sqlite3.Connection,
    db: Database,
    name: str,
    meta: dict[str, str],
    path: Path,
) -> None:
    table = db.table(name)
    types = [col.type for col in table.schema.columns]
    cols = ", ".join(_quote(c.name) for c in table.schema.columns)
    cursor = conn.execute(
        f"SELECT repro_row_id, {cols} FROM {_quote(name)} ORDER BY repro_row_id"
    )
    for record in cursor:
        row_id, values = record[0], record[1:]
        # Restore tombstone gaps so live rows land on their original slots.
        while len(table._rows) < row_id:
            table._rows.append(None)
            table._deleted += 1
            table._mutations += 1
        got = table.insert(
            [_from_sqlite_value(v, t) for v, t in zip(values, types)]
        )
        if got != row_id:  # pragma: no cover - defensive
            raise StorageError(
                f"row-id drift importing {name!r} from {path}: "
                f"expected {row_id}, landed on {got}"
            )
    slots = int(meta.get(f"slots:{name}", len(table)))
    while len(table._rows) < slots:
        table._rows.append(None)
        table._deleted += 1
        table._mutations += 1


def dataset_kind(path: "str | Path") -> str:
    """The dataset family recorded in the file ("" when none)."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no such SQLite file: {path}")
    conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    try:
        return _read_meta(conn, path).get("dataset_kind", "")
    finally:
        conn.close()


def open_dataset(path: "str | Path") -> Any:
    """Import a SQLite file and wrap it in its dataset-family wrapper.

    The wrapper supplies ``default_gds()`` and ``default_store()`` so the
    result plugs straight into
    :meth:`~repro.core.builder.EngineBuilder.from_dataset`.
    """
    path = Path(path)
    kind = dataset_kind(path)
    db = import_database(path)
    if kind == "dblp":
        from repro.datasets.dblp import DBLPConfig, DBLPDataset

        return DBLPDataset(db=db, config=DBLPConfig(), family_author_ids=[])
    if kind == "tpch":
        from repro.datasets.tpch import TPCHConfig, TPCHDataset

        return TPCHDataset(db=db, config=TPCHConfig())
    raise StorageError(
        f"SQLite file {path} records no known dataset kind (got {kind!r}); "
        "re-export with dataset_kind='dblp' or 'tpch'"
    )


# ---------------------------------------------------------------------- #
# Mirrors: the sqlite backend's handle on a database
# ---------------------------------------------------------------------- #
class SQLiteMirror:
    """A live connection to the SQLite twin of an in-memory database.

    One mirror is cached per :class:`Database`; a database imported from
    a file reattaches that file, anything else is exported once to a
    temporary file on first use.  A single connection is shared across
    the session's worker threads behind a lock (SQLite serialises writes
    anyway, and the backend is read-only)."""

    def __init__(self, db: Database, path: Path) -> None:
        self.db = db
        self.path = path
        #: the dataset version the file reflects; a committed mutation
        #: bumps the database's version past it and the mirror re-exports
        self.data_version = db.data_version
        self.conn = sqlite3.connect(
            f"file:{path}?mode=ro", uri=True, check_same_thread=False
        )
        self.lock = threading.Lock()
        self.statements_executed = 0

    def execute(self, sql: str, params: tuple[Any, ...]) -> list[tuple[Any, ...]]:
        with self.lock:
            self.statements_executed += 1
            return self.conn.execute(sql, params).fetchall()


_MIRROR_LOCK = threading.Lock()


def mirror_for(db: Database) -> SQLiteMirror:
    """The cached :class:`SQLiteMirror` for *db*, creating it on demand.

    A database imported from a file reattaches that file; anything else
    (or a database mutated since its mirror was built) is exported to a
    temporary file — the original file is never overwritten."""
    mirror = getattr(db, "_sqlite_mirror", None)
    if mirror is not None and mirror.data_version == db.data_version:
        return mirror
    with _MIRROR_LOCK:
        mirror = getattr(db, "_sqlite_mirror", None)
        if mirror is not None and mirror.data_version == db.data_version:
            return mirror
        path_str = getattr(db, "sqlite_path", None)
        if (
            mirror is None
            and db.data_version == 0
            and path_str is not None
            and Path(path_str).exists()
        ):
            path = Path(path_str)
        else:
            fd, tmp_name = tempfile.mkstemp(
                prefix=f"repro-{db.name}-", suffix=".sqlite"
            )
            os.close(fd)
            path = export_database(db, tmp_name)
        mirror = SQLiteMirror(db, path)
        db._sqlite_mirror = mirror  # type: ignore[attr-defined]
        return mirror
