"""repro.storage — the real-data storage tier.

Three pieces turn the RAM-resident reproduction into a disk-backed
system (ROADMAP item 4):

* :mod:`repro.storage.sqlio` + :mod:`repro.storage.sqlite_backend` — a
  SQLite twin of any :class:`~repro.db.database.Database` and a real SQL
  generation backend (``QueryOptions(backend="sqlite")``) whose FK joins
  execute as indexed statements with one honest IO billed per statement;
* :mod:`repro.storage.dblp_loader` — ``repro load-dblp``: a streaming
  parser for the public DBLP XML dump into the paper's schema;
* :mod:`repro.storage.bufferpool` — a page-granular LRU pool over the
  PR 4 mmap CSR arenas with pin/unpin and hit/miss/eviction counters,
  plus the page-ordered frontier traversal hook in
  :func:`~repro.core.generation.generate_os_flat`.

Importing this package registers the ``sqlite`` backend; the top-level
``repro`` package imports it so ``--backend sqlite`` is always a valid
CLI choice.
"""

from repro.storage.bufferpool import (
    DEFAULT_PAGE_BYTES,
    BufferPool,
    PagedArray,
    PagedDataGraph,
    paged_data_graph,
)
from repro.storage.dblp_loader import LoadReport, load_dblp_xml, write_dblp_xml
from repro.storage.sqlio import (
    export_database,
    import_database,
    dataset_kind,
    open_dataset,
)
from repro.storage.sqlite_backend import SQLiteBackend  # registers "sqlite"

__all__ = [
    "BufferPool",
    "PagedArray",
    "PagedDataGraph",
    "paged_data_graph",
    "DEFAULT_PAGE_BYTES",
    "LoadReport",
    "load_dblp_xml",
    "write_dblp_xml",
    "export_database",
    "import_database",
    "dataset_kind",
    "open_dataset",
    "SQLiteBackend",
]
