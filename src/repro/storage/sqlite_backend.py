"""A real SQL generation backend: FK joins executed as SQLite statements.

Registered as ``sqlite`` in the PR 1 backend registry, this replaces the
simulated 100us/IO cost model of the ``database`` backend with honest
accounting: every executed SQL statement bills exactly one IO access
(and its fetched row count) through the engine's shared
:class:`~repro.db.query.QueryInterface.count_io` — so deadline checks,
``db.io`` fault injection, and the per-query ``ResultStats`` IO counters
all keep working unchanged.

The statement templates mirror the paper's cost model one-for-one with
:class:`~repro.core.generation.DatabaseBackend`:

* ``RefJoin`` — one join from the parent slot to the target PK (a NULL
  FK still executes, and still bills, one statement);
* ``ReverseJoin`` — one indexed select of child slots ordered by
  ``repro_row_id`` (ascending row order, the hash-index/CSR order);
* ``JunctionJoin`` — one two-hop join through the junction table,
  ordered by junction slot, with the co-author origin exclusion pushed
  into the WHERE clause.

Results are row ids (``repro_row_id`` is slot identity — see
:mod:`repro.storage.sqlio`), so trees generated through SQL are
node-for-node identical to the in-memory backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.generation import _origin_row
from repro.core.os_tree import OSNode
from repro.core.registry import register_backend
from repro.db.database import Database
from repro.errors import SummaryError
from repro.ranking.store import ImportanceStore
from repro.schema_graph.gds import GDSNode, JunctionJoin, RefJoin, ReverseJoin
from repro.storage.sqlio import SQLiteMirror, mirror_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import SizeLEngine


def _q(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


class SQLiteBackend:
    """Child fetches via SQL statements against the database's SQLite twin."""

    def __init__(self, engine: "SizeLEngine") -> None:
        self.engine = engine
        self._db = engine.db
        self.qi = engine.query_interface
        self.mirror: SQLiteMirror = mirror_for(engine.db)
        #: statement-template cache keyed by (parent_table, id(join_spec))
        self._sql: dict[tuple[str, int], str] = {}

    @property
    def db(self) -> Database:
        return self._db

    @property
    def io_accesses(self) -> int:
        return self.qi.io_accesses

    # ------------------------------------------------------------------ #
    # Statement templates
    # ------------------------------------------------------------------ #
    def _template(self, parent_table: str, gds_child: GDSNode) -> str:
        join = gds_child.join
        assert join is not None
        key = (parent_table, id(join))
        sql = self._sql.get(key)
        if sql is not None:
            return sql
        if isinstance(join, RefJoin):
            target_pk = self._db.table(join.target_table).schema.primary_key
            sql = (
                f"SELECT t.repro_row_id FROM {_q(join.target_table)} t "
                f"JOIN {_q(parent_table)} p ON t.{_q(target_pk)} = p.{_q(join.fk_column)} "
                f"WHERE p.repro_row_id = ?"
            )
        elif isinstance(join, ReverseJoin):
            parent_pk = self._db.table(parent_table).schema.primary_key
            sql = (
                f"SELECT c.repro_row_id FROM {_q(join.child_table)} c "
                f"JOIN {_q(parent_table)} p ON c.{_q(join.fk_column)} = p.{_q(parent_pk)} "
                f"WHERE p.repro_row_id = ? ORDER BY c.repro_row_id"
            )
        elif isinstance(join, JunctionJoin):
            parent_pk = self._db.table(parent_table).schema.primary_key
            target_pk = self._db.table(join.target_table).schema.primary_key
            sql = (
                f"SELECT t.repro_row_id FROM {_q(join.junction_table)} j "
                f"JOIN {_q(parent_table)} p ON j.{_q(join.from_column)} = p.{_q(parent_pk)} "
                f"JOIN {_q(join.target_table)} t ON t.{_q(target_pk)} = j.{_q(join.to_column)} "
                f"WHERE p.repro_row_id = ? ORDER BY j.repro_row_id"
            )
        else:  # pragma: no cover - exhaustive over JoinSpec
            raise SummaryError(f"unknown join spec: {join!r}")
        self._sql[key] = sql
        return sql

    def _select(self, sql: str, params: tuple) -> list[int]:
        rows = self.mirror.execute(sql, params)
        # One executed statement == one IO access (fault injection and
        # deadline checks ride the same call, like every other backend).
        self.qi.count_io(rows_fetched=len(rows))
        return [row[0] for row in rows]

    # ------------------------------------------------------------------ #
    # GenerationBackend protocol
    # ------------------------------------------------------------------ #
    def children(self, gds_child: GDSNode, parent: OSNode) -> list[int]:
        sql = self._template(parent.table, gds_child)
        join = gds_child.join
        origin = _origin_row(gds_child, parent)
        if isinstance(join, JunctionJoin) and origin is not None:
            return self._select(
                sql.replace(
                    "WHERE p.repro_row_id = ?",
                    "WHERE p.repro_row_id = ? AND t.repro_row_id != ?",
                ),
                (parent.row_id, origin),
            )
        return self._select(sql, (parent.row_id,))

    def children_top(
        self,
        gds_child: GDSNode,
        parent: OSNode,
        store: ImportanceStore,
        threshold: float,
        limit: int,
    ) -> list[int]:
        # One statement fetches the candidates; the li > threshold filter
        # and the (score desc, row asc) order are applied client-side,
        # exactly as DatabaseBackend.children_top / select_top_where_eq do.
        scored = []
        for row in self.children(gds_child, parent):
            score = store.local_importance(gds_child, row)
            if score > threshold:
                scored.append((score, -row, row))
        scored.sort(reverse=True)
        return [row for _score, _neg, row in scored[:limit]]


@register_backend("sqlite")
def _sqlite_backend(engine: "SizeLEngine") -> SQLiteBackend:
    return SQLiteBackend(engine)
