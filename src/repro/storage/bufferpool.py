"""A page-granular LRU buffer pool over mmap'd CSR arenas.

The snapshot store (:mod:`repro.persist`) already keeps every derived
array on disk in an mmap-attachable layout; this module adds the piece
EMBANKS-style disk-based generation needs for graphs too big for RAM: a
bounded pool of RAM-resident *pages* with pin/unpin semantics and
hit/miss/eviction accounting, plus :class:`PagedArray` — an ndarray-like
wrapper that routes every read through the pool so at most
``capacity_bytes`` of arena data is materialised at once.

Wrap a whole data graph with :func:`paged_data_graph`; the returned
graph advertises ``prefers_page_order`` so
:func:`repro.core.generation.generate_os_flat` visits each expansion
frontier in ascending row (and therefore page) order — sequential reads
instead of random ones, without changing the generated tree.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from repro.datagraph.graph import DataGraph, FkAdjacency
from repro.errors import StorageError

#: Default page size: 64 KiB — large enough that a sequential frontier
#: sweep amortises the per-page bookkeeping, small enough that a 10%-of-
#: arena pool still holds hundreds of pages on the bench datasets.
DEFAULT_PAGE_BYTES = 64 * 1024

PageKey = tuple[str, int]


class BufferPool:
    """A thread-safe LRU pool of array pages with pin counts.

    Pages are keyed ``(array_id, page_no)``.  :meth:`fetch` returns the
    page pinned; callers must :meth:`unpin` when done — pinned pages are
    never evicted, so a reader holding a page across an eviction storm
    cannot have it yanked mid-gather.  Eviction only ever happens on the
    insert path, walking unpinned pages in LRU order until the pool is
    back under ``capacity_bytes`` (pinned pages may transiently push the
    pool over budget rather than deadlock the reader).
    """

    def __init__(
        self, capacity_bytes: int, *, page_bytes: int = DEFAULT_PAGE_BYTES
    ) -> None:
        if capacity_bytes <= 0:
            raise StorageError(
                f"buffer pool capacity must be positive, got {capacity_bytes}"
            )
        if page_bytes <= 0:
            raise StorageError(
                f"buffer pool page size must be positive, got {page_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.page_bytes = int(page_bytes)
        self._pages: "OrderedDict[PageKey, np.ndarray]" = OrderedDict()
        self._pins: dict[PageKey, int] = {}
        self._resident_bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # Pin / unpin
    # ------------------------------------------------------------------ #
    def fetch(
        self, array_id: str, page_no: int, loader: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """Return page ``(array_id, page_no)`` pinned, loading on miss."""
        key = (array_id, page_no)
        with self._lock:
            page = self._pages.get(key)
            if page is not None:
                self.hits += 1
                self._pages.move_to_end(key)
                self._pins[key] = self._pins.get(key, 0) + 1
                return page
            self.misses += 1
            page = loader()
            self._pages[key] = page
            self._pins[key] = self._pins.get(key, 0) + 1
            self._resident_bytes += page.nbytes
            self._evict_locked()
            return page

    def unpin(self, array_id: str, page_no: int) -> None:
        key = (array_id, page_no)
        with self._lock:
            count = self._pins.get(key, 0)
            if count <= 1:
                self._pins.pop(key, None)
            else:
                self._pins[key] = count - 1

    def _evict_locked(self) -> None:
        if self._resident_bytes <= self.capacity_bytes:
            return
        for key in list(self._pages):
            if self._resident_bytes <= self.capacity_bytes:
                break
            if self._pins.get(key, 0) > 0:
                continue  # pinned pages are never evicted
            page = self._pages.pop(key)
            self._resident_bytes -= page.nbytes
            self.evictions += 1

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "pool_hits": self.hits,
                "pool_misses": self.misses,
                "pool_evictions": self.evictions,
                "pool_resident_bytes": self._resident_bytes,
                "pool_capacity_bytes": self.capacity_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferPool(capacity={self.capacity_bytes}, "
            f"resident={self._resident_bytes}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )


class PagedArray:
    """A read-only 1-D ndarray facade that reads through a :class:`BufferPool`.

    Supports exactly the access patterns the CSR hot path uses — scalar
    indexing, contiguous slices, and integer fancy indexing — each
    implemented as pin → gather → unpin over the pages it touches, so the
    RAM-resident working set never exceeds the pool budget (plus pinned
    pages in flight).  ``__array__`` falls back to the backing array so
    unforeseen numpy operations stay correct (at the cost of bypassing
    the pool for that one call).
    """

    __slots__ = ("_base", "_pool", "_id", "_page_len", "dtype")

    def __init__(self, base: np.ndarray, pool: BufferPool, array_id: str) -> None:
        if base.ndim != 1:
            raise StorageError(
                f"PagedArray wraps 1-D arrays only, got ndim={base.ndim} "
                f"for {array_id!r}"
            )
        self._base = base
        self._pool = pool
        self._id = array_id
        self._page_len = max(1, pool.page_bytes // max(1, base.dtype.itemsize))
        self.dtype = base.dtype

    # -- ndarray-protocol surface used by the CSR hot path ------------- #
    @property
    def size(self) -> int:
        return int(self._base.size)

    @property
    def shape(self) -> tuple[int, ...]:
        return self._base.shape

    @property
    def ndim(self) -> int:
        return 1

    @property
    def nbytes(self) -> int:
        return int(self._base.nbytes)

    def __len__(self) -> int:
        return int(self._base.size)

    def __array__(self, dtype: Any = None) -> np.ndarray:
        # Correctness escape hatch: materialises the whole base array.
        return np.asarray(self._base, dtype=dtype)

    # -- paged reads ---------------------------------------------------- #
    def _load_page(self, page_no: int) -> np.ndarray:
        lo = page_no * self._page_len
        hi = min(lo + self._page_len, self._base.size)
        # np.array copies the mmap slice: the pool owns RAM-resident bytes
        # the OS page cache is free to drop from the arena file.
        return np.array(self._base[lo:hi])

    def _page(self, page_no: int) -> np.ndarray:
        return self._pool.fetch(
            self._id, page_no, lambda: self._load_page(page_no)
        )

    def __getitem__(self, key: Any) -> Any:
        if isinstance(key, (int, np.integer)):
            index = int(key)
            if index < 0:
                index += self._base.size
            if not 0 <= index < self._base.size:
                raise IndexError(
                    f"index {key} out of bounds for PagedArray of size "
                    f"{self._base.size}"
                )
            page_no, offset = divmod(index, self._page_len)
            page = self._page(page_no)
            try:
                return page[offset]
            finally:
                self._pool.unpin(self._id, page_no)
        if isinstance(key, slice):
            start, stop, step = key.indices(self._base.size)
            if step != 1:
                return self[np.arange(start, stop, step, dtype=np.int64)]
            return self._gather_slice(start, stop)
        indices = np.asarray(key)
        if indices.dtype == np.bool_:
            indices = np.nonzero(indices)[0]
        return self._gather_fancy(indices)

    def _gather_slice(self, start: int, stop: int) -> np.ndarray:
        if stop <= start:
            return np.empty(0, dtype=self.dtype)
        out = np.empty(stop - start, dtype=self.dtype)
        first_page = start // self._page_len
        last_page = (stop - 1) // self._page_len
        for page_no in range(first_page, last_page + 1):
            page_lo = page_no * self._page_len
            lo = max(start, page_lo)
            hi = min(stop, page_lo + self._page_len)
            page = self._page(page_no)
            try:
                out[lo - start : hi - start] = page[lo - page_lo : hi - page_lo]
            finally:
                self._pool.unpin(self._id, page_no)
        return out

    def _gather_fancy(self, indices: np.ndarray) -> np.ndarray:
        if indices.size == 0:
            return np.empty(indices.shape, dtype=self.dtype)
        flat = indices.reshape(-1).astype(np.int64, copy=False)
        out = np.empty(flat.size, dtype=self.dtype)
        page_nos = flat // self._page_len
        offsets = flat - page_nos * self._page_len
        # One pinned fetch per distinct page; ascending page order so a
        # page-ordered frontier turns into a sequential arena sweep.
        for page_no in np.unique(page_nos):
            mask = page_nos == page_no
            page = self._page(int(page_no))
            try:
                out[mask] = page[offsets[mask]]
            finally:
                self._pool.unpin(self._id, int(page_no))
        return out.reshape(indices.shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PagedArray({self._id!r}, size={self._base.size}, "
            f"dtype={self.dtype})"
        )


class PagedDataGraph(DataGraph):
    """A :class:`~repro.datagraph.graph.DataGraph` whose CSR arrays read
    through a :class:`BufferPool`.

    ``prefers_page_order`` tells :func:`generate_os_flat` to visit each
    expansion frontier in ascending row order (the IO-aware ordering);
    the generated tree is unchanged because level ordering keys encode
    original frontier positions and the level ends in a stable sort.
    """

    prefers_page_order = True

    def __init__(
        self,
        adjacencies: dict[tuple[str, str], FkAdjacency],
        pool: BufferPool,
        base: DataGraph,
    ) -> None:
        super().__init__(adjacencies)
        self.pool = pool
        self.base = base


def paged_data_graph(graph: DataGraph, pool: BufferPool) -> PagedDataGraph:
    """Wrap every CSR array of *graph* in a :class:`PagedArray` over *pool*."""
    adjacencies: dict[tuple[str, str], FkAdjacency] = {}
    for adj in graph.adjacencies():
        array_id = f"{adj.owner}.{adj.column}"
        adjacencies[(adj.owner, adj.column)] = FkAdjacency(
            owner=adj.owner,
            column=adj.column,
            target=adj.target,
            forward=PagedArray(adj.forward, pool, array_id + ":forward"),
            backward_indptr=PagedArray(
                adj.backward_indptr, pool, array_id + ":indptr"
            ),
            backward_indices=PagedArray(
                adj.backward_indices, pool, array_id + ":indices"
            ),
        )
    return PagedDataGraph(adjacencies, pool, graph)
