"""The consistent-hash ring that assigns Data Subjects to shards.

Every request that names a subject — ``/v1/size-l``, a ``/v1/batch``
element, the per-match OS work of a paged ``/v1/query`` — is owned by
exactly one shard, chosen by hashing ``(dataset, table, row_id)`` onto a
ring of virtual nodes.  Ownership is what makes sharding *additive*: a
subject's complete-OS tree and size-l memos live in one worker's cache,
so N workers hold N disjoint cache partitions instead of N copies of the
same hot set.

Properties the tests pin (``tests/test_cluster_ring.py``):

* **deterministic** — placement is a pure function of the shard set and
  the ring parameters; two processes that build the same ring (the router
  and a rebuilt router after a supervisor restart) agree on every key;
* **bounded movement** — adding a shard only moves keys *onto* the new
  shard; removing one only moves *its* keys, spread over the survivors.
  The hot caches of the untouched shards stay warm through a resize;
* **balanced** — :data:`DEFAULT_REPLICAS` virtual nodes per shard keep
  the max/mean key-load ratio low without making lookups slower than a
  binary search.

The hash is BLAKE2b (stable across processes and Python versions —
``hash()`` is salted per process and would shard nothing consistently).
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b
from typing import Iterable, Sequence

from repro.errors import ClusterError

#: Virtual nodes per shard (the balance/lookup-cost tradeoff).
DEFAULT_REPLICAS = 128

#: Namespace folded into every ring-point hash so ring points can never
#: collide with key hashes by construction.
_POINT_SALT = b"repro-cluster-point"
_KEY_SALT = b"repro-cluster-key"


def _hash64(salt: bytes, payload: str) -> int:
    digest = blake2b(payload.encode("utf-8"), digest_size=8, key=salt)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """Consistent hashing of subject keys over an explicit shard set.

    ``shards`` is either a shard count (ring over ``0..count-1`` — what
    the serving cluster uses) or an explicit id sequence (what the
    join/leave property tests use to model membership changes).
    """

    def __init__(
        self,
        shards: int | Sequence[int] | Iterable[int],
        *,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if isinstance(shards, int):
            if shards < 1:
                raise ClusterError(f"a ring needs at least one shard, got {shards}")
            members = tuple(range(shards))
        else:
            members = tuple(shards)
            if not members:
                raise ClusterError("a ring needs at least one shard, got none")
            if len(set(members)) != len(members):
                raise ClusterError(f"duplicate shard ids in ring: {sorted(members)}")
        if replicas < 1:
            raise ClusterError(f"replicas must be >= 1, got {replicas}")
        self.members = members
        self.replicas = replicas
        points = [
            (_hash64(_POINT_SALT, f"{shard}/{vnode}"), shard)
            for shard in members
            for vnode in range(replicas)
        ]
        points.sort()
        self._hashes = [point for point, _shard in points]
        self._owners = [shard for _point, shard in points]

    def owner(self, dataset: str, table: str, row_id: int) -> int:
        """The shard id owning subject ``(dataset, table, row_id)``."""
        return self.owner_of_hash(
            _hash64(_KEY_SALT, f"{dataset}\x1f{table}\x1f{row_id}")
        )

    def owner_of_hash(self, key_hash: int) -> int:
        """Ring lookup of a precomputed 64-bit key hash (clockwise walk:
        the first ring point at or after the key, wrapping at the top)."""
        index = bisect_right(self._hashes, key_hash)
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(members={self.members}, replicas={self.replicas})"
