"""The supervisor: worker processes kept alive, restarted, and drained.

One :class:`Supervisor` owns N worker subprocesses (one per shard).  Its
job is the robustness half of the cluster:

* **startup handshake** — each worker writes a per-generation ready file
  once its sessions are built and its port is bound; a worker that dies
  or stays silent past the deadline raises
  :class:`~repro.errors.WorkerStartupError` with its stderr tail;
* **health checking** — a background thread pings every worker over the
  cluster transport; a dead process or repeated ping failures trigger a
  restart with *bounded exponential backoff* (a crash-looping spec can
  never busy-spin the machine), and the backoff resets once the worker
  has been healthy again;
* **crash isolation** — a restart replaces one process; the other shards'
  processes, caches, and connections are untouched, so one bad worker
  degrades exactly its key range;
* **graceful stop** — SIGTERM to every worker (they drain in-flight
  frames and exit 0), escalation to SIGKILL only for stragglers.

The supervisor never *routes*: request traffic goes through
:class:`~repro.cluster.router.ClusterRouter`, which asks this class for a
shard's :class:`~repro.cluster.transport.WorkerClient` and treats "no
healthy client" as a retryable :class:`~repro.errors.ShardUnavailableError`.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.cluster.transport import TransportError, WorkerClient
from repro.cluster.worker import PING_ENDPOINT, WorkerSpec
from repro.errors import ShardUnavailableError, WorkerStartupError

#: Consecutive ping failures that condemn a live-looking process.
_PING_STRIKES = 3

#: Rotation defaults for per-spawn worker stderr capture: how many old
#: generations to keep per shard, and the size at which a kept log is
#: truncated to its tail.  A crash-looping worker spawns a new generation
#: (and a new log) every backoff window — unbounded, that fills the disk
#: the supervisor is trying to survive on.
DEFAULT_STDERR_KEEP = 3
DEFAULT_STDERR_CAP_BYTES = 1024 * 1024


def _prune_stderr_logs(
    run_dir: Path, shard: int, *, keep: int, cap_bytes: int
) -> None:
    """Bound one shard's ``stderr-{shard}-{generation}.log`` files.

    Keeps the *keep* newest generations (deleting older ones) and
    truncates any survivor above *cap_bytes* to its final *cap_bytes*
    (the tail is where a crash's traceback lives).  Called before each
    spawn, so the bound holds across restarts without a background task.
    """
    prefix = f"stderr-{shard}-"

    def generation_of(path: Path) -> int:
        try:
            return int(path.stem[len(prefix):])
        except ValueError:
            return -1

    logs = sorted(
        (p for p in run_dir.glob(f"{prefix}*.log") if generation_of(p) >= 0),
        key=generation_of,
    )
    for stale in logs[: max(0, len(logs) - keep)]:
        try:
            stale.unlink()
        except OSError:
            pass
    for survivor in logs[max(0, len(logs) - keep):]:
        try:
            size = survivor.stat().st_size
            if size <= cap_bytes:
                continue
            with open(survivor, "rb") as fh:
                fh.seek(size - cap_bytes)
                tail = fh.read()
            survivor.write_bytes(tail)
        except OSError:
            pass


def _worker_env() -> dict[str, str]:
    """The subprocess environment: this library's ``src`` on PYTHONPATH."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    if existing:
        if src_dir not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src_dir + os.pathsep + existing
    else:
        env["PYTHONPATH"] = src_dir
    return env


@dataclass
class _Handle:
    """One shard's live state (guarded by the handle's lock)."""

    index: int
    spec: WorkerSpec
    lock: threading.Lock = field(default_factory=threading.Lock)
    process: subprocess.Popen | None = None
    client: WorkerClient | None = None
    ready: bool = False
    generation: int = 0
    restarts: int = 0
    consecutive_failures: int = 0
    ping_strikes: int = 0
    #: monotonic time before which no restart attempt may run (backoff)
    not_before: float = 0.0
    #: monotonic time the worker last became ready (backoff reset clock)
    ready_since: float = 0.0


class Supervisor:
    """Spawn, babysit, and stop one worker process per shard."""

    def __init__(
        self,
        specs: list[WorkerSpec],
        *,
        python: str = sys.executable,
        startup_timeout: float = 120.0,
        health_interval: float = 0.5,
        ping_timeout: float = 2.0,
        backoff_base: float = 0.25,
        backoff_cap: float = 5.0,
        backoff_reset_after: float = 10.0,
        run_dir: "str | Path | None" = None,
        stderr_keep: int = DEFAULT_STDERR_KEEP,
        stderr_cap_bytes: int = DEFAULT_STDERR_CAP_BYTES,
    ) -> None:
        self.python = python
        self.startup_timeout = startup_timeout
        self.health_interval = health_interval
        self.ping_timeout = ping_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_reset_after = backoff_reset_after
        self.stderr_keep = max(1, int(stderr_keep))
        self.stderr_cap_bytes = max(1, int(stderr_cap_bytes))
        if run_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            self.run_dir = Path(self._tempdir.name)
        else:
            self._tempdir = None
            self.run_dir = Path(run_dir)
            self.run_dir.mkdir(parents=True, exist_ok=True)
        self._handles = [_Handle(index=i, spec=spec) for i, spec in enumerate(specs)]
        self._env = _worker_env()
        self._stopping = threading.Event()
        self._health_thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shard_count(self) -> int:
        return len(self._handles)

    def describe(self) -> list[dict[str, Any]]:
        """Per-shard liveness (the router's ``healthz`` reads this)."""
        out = []
        for handle in self._handles:
            with handle.lock:
                out.append(
                    {
                        "shard": handle.index,
                        "ready": handle.ready,
                        "pid": None if handle.process is None else handle.process.pid,
                        "restarts": handle.restarts,
                    }
                )
        return out

    def ready_count(self) -> int:
        count = 0
        for handle in self._handles:
            with handle.lock:
                count += handle.ready
        return count

    def restarts(self, shard: int) -> int:
        handle = self._handles[shard]
        with handle.lock:
            return handle.restarts

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "Supervisor":
        """Spawn every worker concurrently and wait for all handshakes."""
        threads = [
            threading.Thread(target=self._spawn_checked, args=(handle,), daemon=True)
            for handle in self._handles
        ]
        errors: list[BaseException] = []
        self._spawn_errors = errors
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            self.stop(graceful=False)
            raise errors[0]
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-cluster-health", daemon=True
        )
        self._health_thread.start()
        return self

    def _spawn_checked(self, handle: _Handle) -> None:
        try:
            self._spawn(handle)
        except BaseException as exc:  # noqa: BLE001 - collected by start()
            self._spawn_errors.append(exc)

    def _spawn(self, handle: _Handle) -> None:
        """Launch one worker and block until its ready record lands."""
        with handle.lock:
            handle.generation += 1
            generation = handle.generation
            ready_file = self.run_dir / f"ready-{handle.index}-{generation}.json"
            spec = WorkerSpec(
                **{
                    **handle.spec.as_dict(),
                    "ready_file": str(ready_file),
                    "datasets": handle.spec.datasets,
                }
            )
            _prune_stderr_logs(
                self.run_dir,
                handle.index,
                keep=self.stderr_keep,
                cap_bytes=self.stderr_cap_bytes,
            )
            stderr_path = self.run_dir / f"stderr-{handle.index}-{generation}.log"
            stderr = open(stderr_path, "wb")
            try:
                process = subprocess.Popen(
                    [
                        self.python,
                        "-m",
                        "repro.cluster.worker",
                        json.dumps(spec.as_dict()),
                    ],
                    env=self._env,
                    stdout=subprocess.DEVNULL,
                    stderr=stderr,
                )
            finally:
                stderr.close()
            handle.process = process
            handle.ready = False
        deadline = time.monotonic() + self.startup_timeout
        while True:
            if ready_file.is_file():
                record = json.loads(ready_file.read_text(encoding="utf-8"))
                break
            if process.poll() is not None:
                tail = stderr_path.read_text(encoding="utf-8", errors="replace")
                raise WorkerStartupError(
                    handle.index,
                    f"exited with code {process.returncode}: {tail[-2000:]}",
                )
            if time.monotonic() > deadline:
                process.kill()
                raise WorkerStartupError(
                    handle.index, f"no ready record after {self.startup_timeout}s"
                )
            if self._stopping.is_set():
                process.kill()
                raise WorkerStartupError(handle.index, "supervisor stopping")
            time.sleep(0.02)
        client = WorkerClient(spec.host, int(record["port"]))
        with handle.lock:
            old_client, handle.client = handle.client, client
            handle.ready = True
            handle.ready_since = time.monotonic()
            handle.ping_strikes = 0
        if old_client is not None:
            old_client.close()

    def client(self, shard: int) -> WorkerClient:
        """The shard's transport client; raises when it is down/restarting."""
        handle = self._handles[shard]
        with handle.lock:
            if not handle.ready or handle.client is None:
                raise ShardUnavailableError(shard, "worker is down or restarting")
            return handle.client

    def request(
        self,
        shard: int,
        endpoint: str,
        payload: Any = None,
        *,
        timeout: float = 30.0,
        ctx: "dict[str, Any] | None" = None,
    ) -> tuple[int, dict[str, Any]]:
        """One round-trip to *shard*; transport failures become
        :class:`ShardUnavailableError` (retryable by the caller).  *ctx*
        is the edge request's wire identity, forwarded to the worker."""
        client = self.client(shard)
        try:
            return client.request(endpoint, payload, timeout=timeout, ctx=ctx)
        except TransportError as exc:
            raise ShardUnavailableError(shard, str(exc)) from exc

    def kill(self, shard: int) -> None:
        """SIGKILL one worker (crash injection for tests and benchmarks)."""
        handle = self._handles[shard]
        with handle.lock:
            process = handle.process
        if process is not None and process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    def stop(self, *, graceful: bool = True, timeout: float = 10.0) -> None:
        """Stop the health loop and every worker; escalate to SIGKILL."""
        self._stopping.set()
        thread = self._health_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=max(timeout, self.health_interval * 4))
        for handle in self._handles:
            with handle.lock:
                process, client = handle.process, handle.client
                handle.ready = False
                handle.client = None
            if client is not None:
                client.close()
            if process is not None and process.poll() is None:
                process.send_signal(signal.SIGTERM if graceful else signal.SIGKILL)
        deadline = time.monotonic() + timeout
        for handle in self._handles:
            with handle.lock:
                process = handle.process
            if process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Health loop
    # ------------------------------------------------------------------ #
    def _health_loop(self) -> None:
        while not self._stopping.wait(self.health_interval):
            for handle in self._handles:
                if self._stopping.is_set():
                    return
                try:
                    self._check(handle)
                except WorkerStartupError:
                    # the restart itself failed: count it and back off more
                    self._note_failure(handle)

    def _check(self, handle: _Handle) -> None:
        with handle.lock:
            process, client, ready = handle.process, handle.client, handle.ready
            not_before = handle.not_before
            ready_since = handle.ready_since
            failures = handle.consecutive_failures
        if process is None:
            return
        if process.poll() is not None:
            # the process is gone: restart once the backoff window opens
            if ready:
                self._note_failure(handle)  # first observation of this death
                return
            if time.monotonic() >= not_before:
                with handle.lock:
                    handle.restarts += 1
                self._spawn(handle)
            return
        if not ready or client is None:
            return
        # liveness probe: a wedged-but-alive worker must also be replaced
        try:
            status, body = client.request(
                PING_ENDPOINT, timeout=self.ping_timeout
            )
            ok = status == 200 and body.get("ok") is True
        except TransportError:
            ok = False
        with handle.lock:
            if ok:
                handle.ping_strikes = 0
            else:
                handle.ping_strikes += 1
                strikes = handle.ping_strikes
        if not ok and strikes >= _PING_STRIKES:
            process.kill()
            self._note_failure(handle)
        elif ok and failures and time.monotonic() - ready_since >= self.backoff_reset_after:
            with handle.lock:
                handle.consecutive_failures = 0

    def _backoff_delay(self, consecutive_failures: int) -> float:
        """Restart delay after N consecutive failures: exponential from
        ``backoff_base``, capped at ``backoff_cap``."""
        if consecutive_failures <= 0:
            return 0.0
        return min(
            self.backoff_base * (2 ** (consecutive_failures - 1)),
            self.backoff_cap,
        )

    def _note_failure(self, handle: _Handle) -> None:
        """Mark a shard down and arm the (bounded, exponential) backoff."""
        with handle.lock:
            handle.ready = False
            client, handle.client = handle.client, None
            handle.consecutive_failures += 1
            delay = self._backoff_delay(handle.consecutive_failures)
            handle.not_before = time.monotonic() + delay
            handle.ping_strikes = 0
        if client is not None:
            client.close()
