"""The router: one dispatcher-shaped front end over many shard workers.

:class:`ClusterRouter` implements the same ``dispatch_safe(endpoint,
payload) -> (status, body)`` surface as
:class:`~repro.service.dispatch.ServiceDispatcher`, which is the whole
trick: the HTTP front end plugs into either without knowing which it got,
and every pinned status code and error body of the single-process service
survives sharding because the *workers* still run the real dispatcher.

Routing policy (the subject key is ``(dataset, table, row_id)`` on the
:class:`~repro.cluster.hashring.HashRing`):

* ``/v1/size-l`` — forwarded to the subject's owning shard (malformed
  payloads go to shard 0, whose dispatcher produces the pinned 400);
* ``/v1/batch`` — split by owner and scattered; entries are re-indexed to
  the caller's subject order, per-worker cache counters merged;
* ``/v1/query`` — one cheap ``cluster/matches`` call computes the ranked
  match list (and runs the full request validation), the router applies
  the cursor/page window exactly as the single-process dispatcher does,
  then scatters the expensive per-subject OS work to each match's owning
  shard as ``/v1/batch`` and merges by global rank — so cursors minted by
  a 1-shard server page correctly on an 8-shard one and vice versa;
* ``/v1/admin/invalidate`` — row-scoped requests go only to the owning
  shard (the only cache that can hold that subject); broader scopes
  broadcast;
* ``/v1/admin/reload`` — broadcast (every worker re-opens the snapshot);
* ``/v1/stats`` — scattered and merged with
  :meth:`~repro.core.cache.CacheStats.merge`, plus a ``cluster`` section;
* ``/v1/datasets`` — any healthy shard (they are replicas of the recipe).

Failure budget: every request gets one deadline (``request_timeout``).  A
shard that is down is retried until the deadline (worker restarts are
invisible to patient clients); past it the router answers the pinned 503
body — the request was *not* served, retrying is safe.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.cluster.hashring import HashRing
from repro.cluster.supervisor import Supervisor
from repro.cluster.worker import MATCHES_ENDPOINT
from repro.core.cache import CacheStats
from repro.errors import RequestValidationError, ShardUnavailableError
from repro.service.dispatch import ENDPOINTS, UnknownEndpointError, status_for
from repro.service.protocol import (
    MAX_BATCH_SUBJECTS,
    PROTOCOL_VERSION,
    Cursor,
    encode_error,
)

#: Keys a batch payload may carry; anything else is forwarded whole to a
#: worker so its decoder produces the pinned unknown-field 400.
_BATCH_KEYS = {"protocol_version", "dataset", "subjects", "options"}


def _is_row_id(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _valid_subject(item: object) -> bool:
    return (
        isinstance(item, (list, tuple))
        and len(item) == 2
        and isinstance(item[0], str)
        and _is_row_id(item[1])
    )


class ClusterRouter:
    """Scatter/gather dispatch over a :class:`Supervisor`'s workers."""

    def __init__(
        self,
        supervisor: Supervisor,
        *,
        replicas: int | None = None,
        request_timeout: float = 30.0,
        retry_interval: float = 0.05,
    ) -> None:
        self.supervisor = supervisor
        ring_args = {} if replicas is None else {"replicas": replicas}
        self.ring = HashRing(supervisor.shard_count, **ring_args)
        self.request_timeout = request_timeout
        self.retry_interval = retry_interval
        self._rotation = itertools.count()
        self._pool = ThreadPoolExecutor(
            max_workers=max(8, supervisor.shard_count * 2),
            thread_name_prefix="repro-router",
        )
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._inflight_zero = threading.Condition(self._inflight_lock)

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _deadline(self) -> float:
        return time.monotonic() + self.request_timeout

    def _call(
        self, shard: int, endpoint: str, payload: Any, deadline: float
    ) -> tuple[int, dict[str, Any]]:
        """One shard, retried across restarts until the deadline."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardUnavailableError(
                    shard, f"request deadline ({self.request_timeout}s) exhausted"
                )
            try:
                return self.supervisor.request(
                    shard, endpoint, payload, timeout=remaining
                )
            except ShardUnavailableError:
                if deadline - time.monotonic() <= self.retry_interval:
                    raise
                time.sleep(self.retry_interval)

    def _call_any(
        self, endpoint: str, payload: Any, deadline: float
    ) -> tuple[int, dict[str, Any]]:
        """Any healthy shard (rotated for balance), same deadline rules."""
        count = self.supervisor.shard_count
        while True:
            start = next(self._rotation)
            last: ShardUnavailableError | None = None
            for offset in range(count):
                shard = (start + offset) % count
                try:
                    return self.supervisor.request(
                        shard,
                        endpoint,
                        payload,
                        timeout=max(deadline - time.monotonic(), 1e-3),
                    )
                except ShardUnavailableError as exc:
                    last = exc
            if deadline - time.monotonic() <= self.retry_interval:
                assert last is not None
                raise last
            time.sleep(self.retry_interval)

    def _scatter(
        self, calls: list[Callable[[], tuple[int, dict[str, Any]]]]
    ) -> list[tuple[int, dict[str, Any]]]:
        """Run the calls concurrently; the first exception propagates."""
        if len(calls) == 1:
            return [calls[0]()]
        futures = [self._pool.submit(call) for call in calls]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _size_l(self, payload: Any, deadline: float) -> tuple[int, dict[str, Any]]:
        shard = 0
        if (
            isinstance(payload, dict)
            and isinstance(payload.get("dataset"), str)
            and isinstance(payload.get("table"), str)
            and _is_row_id(payload.get("row_id"))
        ):
            shard = self.ring.owner(
                payload["dataset"], payload["table"], payload["row_id"]
            )
        return self._call(shard, "/v1/size-l", payload, deadline)

    def _batch(self, payload: Any, deadline: float) -> tuple[int, dict[str, Any]]:
        splittable = (
            isinstance(payload, dict)
            and set(payload) <= _BATCH_KEYS
            and isinstance(payload.get("dataset"), str)
            and isinstance(payload.get("subjects"), (list, tuple))
            and 0 < len(payload["subjects"]) <= MAX_BATCH_SUBJECTS
            and all(_valid_subject(item) for item in payload["subjects"])
        )
        if not splittable:
            # let a real dispatcher produce the pinned validation error
            return self._call(0, "/v1/batch", payload, deadline)
        dataset = payload["dataset"]
        groups: dict[int, list[int]] = {}
        for index, (table, row_id) in enumerate(payload["subjects"]):
            shard = self.ring.owner(dataset, table, row_id)
            groups.setdefault(shard, []).append(index)

        def sub_payload(indices: list[int]) -> dict[str, Any]:
            sub = {
                key: payload[key]
                for key in ("protocol_version", "dataset", "options")
                if key in payload
            }
            sub["subjects"] = [list(payload["subjects"][i]) for i in indices]
            return sub

        shards = sorted(groups)
        replies = self._scatter(
            [
                (lambda s=shard: self._call(
                    s, "/v1/batch", sub_payload(groups[s]), deadline
                ))
                for shard in shards
            ]
        )
        entries: list[dict[str, Any] | None] = [None] * len(payload["subjects"])
        caches: list[dict[str, int]] = []
        for shard, (status, body) in zip(shards, replies):
            if status != 200:
                return status, body
            for index, entry in zip(groups[shard], body["results"]):
                entry = dict(entry)
                entry["rank"] = index
                entries[index] = entry
            caches.append(body.get("cache", {}))
        return 200, {
            "protocol_version": PROTOCOL_VERSION,
            "dataset": dataset,
            "cache": CacheStats.merge(*caches).as_dict(),
            "results": entries,
        }

    def _query(self, payload: Any, deadline: float) -> tuple[int, dict[str, Any]]:
        """The split keyword query: one match call, one batch per shard.

        The window arithmetic below (cursor verification, page slice,
        next-cursor minting) mirrors ``ServiceDispatcher.query`` line for
        line — it must, or cursors would not round-trip between shard
        counts.
        """
        status, found = self._call_any(MATCHES_ENDPOINT, payload, deadline)
        if status != 200:
            return status, found
        matches = found["matches"]
        dataset = found["dataset"]
        start = 0
        raw_cursor = payload.get("cursor") if isinstance(payload, dict) else None
        if raw_cursor is not None:
            cursor = Cursor.decode(raw_cursor)  # already validated by the worker
            stable = cursor.rank < len(matches) and (
                matches[cursor.rank]["table"] == cursor.table
                and matches[cursor.rank]["row_id"] == cursor.row_id
            )
            if not stable:
                exc = RequestValidationError(
                    f"stale cursor: rank {cursor.rank} is no longer "
                    f"{cursor.table}#{cursor.row_id} in the current ranking; "
                    "restart the query without a cursor"
                )
                return 400, encode_error(exc, 400)
            start = cursor.rank + 1
        page = matches[start:]
        page_size = payload.get("page_size") if isinstance(payload, dict) else None
        if page_size is not None:
            page = page[:page_size]

        groups: dict[int, list[int]] = {}
        for offset, match in enumerate(page):
            shard = self.ring.owner(dataset, match["table"], match["row_id"])
            groups.setdefault(shard, []).append(offset)

        def sub_payload(offsets: list[int]) -> dict[str, Any]:
            sub: dict[str, Any] = {"dataset": dataset}
            if isinstance(payload, dict) and "options" in payload:
                sub["options"] = payload["options"]
            sub["subjects"] = [
                [page[o]["table"], page[o]["row_id"]] for o in offsets
            ]
            return sub

        shards = sorted(groups)
        replies = self._scatter(
            [
                (lambda s=shard: self._call(
                    s, "/v1/batch", sub_payload(groups[s]), deadline
                ))
                for shard in shards
            ]
        )
        entries: list[dict[str, Any] | None] = [None] * len(page)
        caches: list[dict[str, int]] = []
        for shard, (batch_status, body) in zip(shards, replies):
            if batch_status != 200:
                return batch_status, body
            for offset, entry in zip(groups[shard], body["results"]):
                entry = dict(entry)
                entry["rank"] = start + offset
                entry["match_importance"] = float(page[offset]["importance"])
                entries[offset] = entry
            caches.append(body.get("cache", {}))
        next_cursor = None
        if page and start + len(page) < len(matches):
            last = page[-1]
            next_cursor = Cursor(
                rank=start + len(page) - 1,
                table=last["table"],
                row_id=last["row_id"],
            ).encode()
        return 200, {
            "protocol_version": PROTOCOL_VERSION,
            "dataset": dataset,
            "cache": CacheStats.merge(*caches).as_dict(),
            "keywords": found["keywords"],
            "results": entries,
            "total_matches": found["total"],
            "next_cursor": next_cursor,
        }

    def _stats(self, payload: Any, deadline: float) -> tuple[int, dict[str, Any]]:
        shards = range(self.supervisor.shard_count)
        replies = self._scatter(
            [
                (lambda s=shard: self._call(s, "/v1/stats", payload, deadline))
                for shard in shards
            ]
        )
        for status, body in replies:
            if status != 200:
                return status, body
        bodies = [body for _status, body in replies]
        merged = dict(bodies[0])
        if isinstance(payload, dict) and payload.get("dataset") is not None:
            merged["cache"] = CacheStats.merge(
                *(body.get("cache", {}) for body in bodies)
            ).as_dict()
        else:
            for name, info in merged.items():
                if isinstance(info, dict) and "cache" in info:
                    info = dict(info)
                    info["cache"] = CacheStats.merge(
                        *(body[name]["cache"] for body in bodies if "cache" in body.get(name, {}))
                    ).as_dict()
                    merged[name] = info
        merged["cluster"] = {
            "shards": self.supervisor.shard_count,
            "ready": self.supervisor.ready_count(),
        }
        return 200, merged

    def _invalidate(self, payload: Any, deadline: float) -> tuple[int, dict[str, Any]]:
        row_scoped = (
            isinstance(payload, dict)
            and set(payload) <= {"dataset", "table", "row_id"}
            and isinstance(payload.get("dataset"), str)
            and isinstance(payload.get("table"), str)
            and _is_row_id(payload.get("row_id"))
        )
        if row_scoped:
            shard = self.ring.owner(
                payload["dataset"], payload["table"], payload["row_id"]
            )
            return self._call(shard, "/v1/admin/invalidate", payload, deadline)
        return self._broadcast("/v1/admin/invalidate", payload, deadline)

    def _broadcast(
        self, endpoint: str, payload: Any, deadline: float
    ) -> tuple[int, dict[str, Any]]:
        """Every shard must apply the mutation; first failure wins."""
        shards = range(self.supervisor.shard_count)
        replies = self._scatter(
            [
                (lambda s=shard: self._call(s, endpoint, payload, deadline))
                for shard in shards
            ]
        )
        for status, body in replies:
            if status != 200:
                return status, body
        return replies[0]

    # ------------------------------------------------------------------ #
    # The dispatcher-shaped surface
    # ------------------------------------------------------------------ #
    def dispatch_safe(
        self, endpoint: str, payload: object = None
    ) -> tuple[int, dict[str, Any]]:
        """Route one request; never raises (same contract as the
        single-process ``ServiceDispatcher.dispatch_safe``)."""
        with self._inflight_lock:
            self._inflight += 1
        try:
            deadline = self._deadline()
            if endpoint == "/v1/query":
                return self._query(payload, deadline)
            if endpoint == "/v1/size-l":
                return self._size_l(payload, deadline)
            if endpoint == "/v1/batch":
                return self._batch(payload, deadline)
            if endpoint == "/v1/datasets":
                return self._call_any("/v1/datasets", payload, deadline)
            if endpoint == "/v1/stats":
                return self._stats(payload, deadline)
            if endpoint == "/v1/admin/invalidate":
                return self._invalidate(payload, deadline)
            if endpoint == "/v1/admin/reload":
                return self._broadcast("/v1/admin/reload", payload, deadline)
            exc = UnknownEndpointError(endpoint)
            return 404, encode_error(exc, 404)
        except ShardUnavailableError as exc:
            return 503, encode_error(exc, 503)
        except Exception as exc:  # noqa: BLE001 - the dispatch_safe contract
            status = status_for(exc, endpoint)
            return status, encode_error(exc, status)
        finally:
            with self._inflight_zero:
                self._inflight -= 1
                if self._inflight == 0:
                    self._inflight_zero.notify_all()

    def healthz(self) -> dict[str, Any]:
        """Cluster liveness: the router is up; per-shard detail inside."""
        shards = self.supervisor.describe()
        return {
            "ok": all(info["ready"] for info in shards),
            "role": "router",
            "shards": shards,
            "endpoints": list(ENDPOINTS),
        }

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait for in-flight requests to finish (graceful-shutdown half)."""
        deadline = time.monotonic() + timeout
        with self._inflight_zero:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_zero.wait(remaining)
        return True

    def close(self) -> None:
        self._pool.shutdown(wait=False)
