"""The router: one dispatcher-shaped front end over many shard workers.

:class:`ClusterRouter` implements the same ``dispatch_safe(endpoint,
payload) -> (status, body)`` surface as
:class:`~repro.service.dispatch.ServiceDispatcher`, which is the whole
trick: the HTTP front end plugs into either without knowing which it got,
and every pinned status code and error body of the single-process service
survives sharding because the *workers* still run the real dispatcher.

Routing policy (the subject key is ``(dataset, table, row_id)`` on the
:class:`~repro.cluster.hashring.HashRing`):

* ``/v1/size-l`` — forwarded to the subject's owning shard (malformed
  payloads go to shard 0, whose dispatcher produces the pinned 400);
* ``/v1/batch`` — split by owner and scattered; entries are re-indexed to
  the caller's subject order, per-worker cache counters merged;
* ``/v1/query`` — one cheap ``cluster/matches`` call computes the ranked
  match list (and runs the full request validation), the router applies
  the cursor/page window exactly as the single-process dispatcher does,
  then scatters the expensive per-subject OS work to each match's owning
  shard as ``/v1/batch`` and merges by global rank — so cursors minted by
  a 1-shard server page correctly on an 8-shard one and vice versa;
* ``/v1/admin/invalidate`` — row-scoped requests go only to the owning
  shard (the only cache that can hold that subject); broader scopes
  broadcast;
* ``/v1/admin/reload`` — broadcast (every worker re-opens the snapshot);
* ``/v1/stats`` — scattered and merged with
  :meth:`~repro.core.cache.CacheStats.merge`, plus a ``cluster`` section;
* ``/v1/datasets`` — any healthy shard (they are replicas of the recipe).

Failure budget: every request gets one deadline — the router's flat
``request_timeout``, tightened to the client's ``deadline_ms`` when the
request carries one.  A shard that is down is retried until that budget
runs out (worker restarts are invisible to patient clients), paced by a
**per-shard circuit breaker**: after ``breaker_threshold`` consecutive
transport failures the breaker opens and retries stop dialing the dead
socket, waiting on the clock instead; every ``breaker_reset`` seconds one
half-open probe tests whether the worker is back.  Past the budget the
router answers the pinned 503 body — or the pinned **504**
(:class:`~repro.errors.DeadlineExceededError`, byte-identical to the
single-process body) when the client's own ``deadline_ms`` is what
expired.  Forwarded sub-requests carry the *remaining* budget, so a
worker cancels exactly when its router would have given up on it.

Degraded mode: a query with ``allow_partial: true`` answers from the
healthy shards when some owners are unavailable — ``degraded: true``
plus the missing-shard list instead of a 503 — bounded per missing shard
by ``partial_patience`` (a dead shard must not eat the whole budget).
``/v1/stats`` honors the same flag with a partial merge.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.cluster.hashring import HashRing
from repro.cluster.supervisor import Supervisor
from repro.cluster.worker import MATCHES_ENDPOINT
from repro.core.cache import CacheStats
from repro.errors import (
    DeadlineExceededError,
    RequestValidationError,
    ShardUnavailableError,
)
from repro.reliability.breaker import CLOSED, CircuitBreaker
from repro.service.dispatch import ENDPOINTS, UnknownEndpointError, status_for
from repro.service.middleware.context import current_context
from repro.service.protocol import (
    MAX_BATCH_SUBJECTS,
    PROTOCOL_VERSION,
    Cursor,
    encode_error,
)

#: Keys a batch payload may carry; anything else is forwarded whole to a
#: worker so its decoder produces the pinned unknown-field 400.
_BATCH_KEYS = {"protocol_version", "dataset", "subjects", "options", "deadline_ms"}


def _is_row_id(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _stable_key(value: object) -> object:
    """A hash-ring-safe stand-in for a mutation's primary key.

    Scalars route by value; anything else (an insert's values dict, a
    malformed payload) pins to a fixed key so the owner choice is at
    least deterministic.
    """
    if isinstance(value, (str, int)) and not isinstance(value, bool):
        return value
    return 0


def _valid_subject(item: object) -> bool:
    return (
        isinstance(item, (list, tuple))
        and len(item) == 2
        and isinstance(item[0], str)
        and _is_row_id(item[1])
    )


class _Budget:
    """One request's routing deadline: flat timeout or client budget.

    ``budget_ms`` is the client's ``deadline_ms`` when that is what set
    the deadline — its presence decides which pinned error exhaustion
    raises (504 :class:`DeadlineExceededError`) versus the router's own
    flat timeout (503 :class:`ShardUnavailableError`).

    ``ctx`` is the edge request's wire identity (request id, principal),
    captured once at ``dispatch_safe`` — scatter calls run on pool
    threads, where the edge's thread-local context is invisible, so the
    budget object is what carries it to every sub-request.
    """

    __slots__ = ("timeout", "budget_ms", "expires_at", "ctx")

    def __init__(self, timeout: float, budget_ms: "int | None" = None) -> None:
        self.timeout = timeout
        self.budget_ms = budget_ms
        self.expires_at = time.monotonic() + timeout
        self.ctx: "dict[str, Any] | None" = None

    def remaining(self) -> float:
        return self.expires_at - time.monotonic()

    def remaining_ms(self) -> int:
        """The forwardable remainder (workers must see a valid budget)."""
        return max(int(self.remaining() * 1000), 1)

    def exhausted_error(self, shard: int) -> Exception:
        if self.budget_ms is not None:
            return DeadlineExceededError(self.budget_ms)
        return ShardUnavailableError(
            shard, f"request deadline ({self.timeout}s) exhausted"
        )


class ClusterRouter:
    """Scatter/gather dispatch over a :class:`Supervisor`'s workers."""

    def __init__(
        self,
        supervisor: Supervisor,
        *,
        replicas: int | None = None,
        request_timeout: float = 30.0,
        retry_interval: float = 0.05,
        breaker_threshold: int = 5,
        breaker_reset: float = 0.5,
        partial_patience: float = 1.0,
    ) -> None:
        self.supervisor = supervisor
        ring_args = {} if replicas is None else {"replicas": replicas}
        self.ring = HashRing(supervisor.shard_count, **ring_args)
        self.request_timeout = request_timeout
        self.retry_interval = retry_interval
        self.partial_patience = partial_patience
        self._breakers = [
            CircuitBreaker(
                failure_threshold=breaker_threshold, reset_timeout=breaker_reset
            )
            for _ in range(supervisor.shard_count)
        ]
        self._rotation = itertools.count()
        self._pool = ThreadPoolExecutor(
            max_workers=max(8, supervisor.shard_count * 2),
            thread_name_prefix="repro-router",
        )
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._inflight_zero = threading.Condition(self._inflight_lock)

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _budget(self, payload: Any) -> _Budget:
        """The request's deadline: ``min(request_timeout, deadline_ms)``.

        An *invalid* ``deadline_ms`` (wrong type, < 1) is deliberately
        ignored here — the payload is forwarded untouched so a worker's
        decoder produces the pinned 400, exactly as single-process would.
        """
        if isinstance(payload, dict):
            raw = payload.get("deadline_ms")
            if isinstance(raw, int) and not isinstance(raw, bool) and raw >= 1:
                budget = raw / 1000.0
                if budget <= self.request_timeout:
                    return _Budget(budget, raw)
        return _Budget(self.request_timeout)

    def _forwarded(self, payload: Any, budget: _Budget) -> Any:
        """*payload* with ``deadline_ms`` rewritten to the budget's
        remainder — workers must enforce what is *left*, not what the
        client originally asked this router for."""
        if (
            budget.budget_ms is None
            or not isinstance(payload, dict)
            or "deadline_ms" not in payload
        ):
            return payload
        sub = dict(payload)
        sub["deadline_ms"] = budget.remaining_ms()
        return sub

    def _call(
        self,
        shard: int,
        endpoint: str,
        payload: Any,
        budget: _Budget,
        *,
        patience: "float | None" = None,
    ) -> tuple[int, dict[str, Any]]:
        """One shard, retried across restarts until the budget runs out.

        The shard's circuit breaker paces the loop: while open, retries
        wait on the clock instead of dialing the dead socket, and one
        half-open probe per reset window tests for recovery.  *patience*
        (degraded mode) bounds how long this call keeps waiting for an
        unavailable shard, independent of the overall budget.
        """
        breaker = self._breakers[shard]
        start = time.monotonic()
        last: ShardUnavailableError | None = None
        while True:
            remaining = budget.remaining()
            if remaining <= 0:
                raise budget.exhausted_error(shard)
            if patience is not None and time.monotonic() - start >= patience:
                raise last if last is not None else ShardUnavailableError(
                    shard, f"no healthy worker within {patience}s (partial mode)"
                )
            if breaker.allow():
                try:
                    reply = self.supervisor.request(
                        shard,
                        endpoint,
                        self._forwarded(payload, budget),
                        timeout=remaining,
                        ctx=budget.ctx,
                    )
                except ShardUnavailableError as exc:
                    breaker.record_failure()
                    last = exc
                else:
                    breaker.record_success()
                    return reply
            # pace the next attempt; the sleep is clamped to what remains
            # of the budget (and patience) so the call fails *at* its
            # deadline, never up to retry_interval past it
            sleep = min(self.retry_interval, budget.remaining())
            if patience is not None:
                sleep = min(sleep, patience - (time.monotonic() - start))
            if sleep > 0:
                time.sleep(sleep)

    def _call_any(
        self, endpoint: str, payload: Any, budget: _Budget
    ) -> tuple[int, dict[str, Any]]:
        """Any healthy shard (rotated for balance), same budget rules."""
        count = self.supervisor.shard_count
        last: ShardUnavailableError | None = None
        while True:
            start = next(self._rotation)
            for offset in range(count):
                shard = (start + offset) % count
                breaker = self._breakers[shard]
                if not breaker.allow():
                    continue
                try:
                    reply = self.supervisor.request(
                        shard,
                        endpoint,
                        self._forwarded(payload, budget),
                        timeout=max(budget.remaining(), 1e-3),
                        ctx=budget.ctx,
                    )
                except ShardUnavailableError as exc:
                    breaker.record_failure()
                    last = exc
                else:
                    breaker.record_success()
                    return reply
            remaining = budget.remaining()
            if remaining <= 0:
                if budget.budget_ms is not None or last is None:
                    raise budget.exhausted_error(start % count)
                raise last
            time.sleep(min(self.retry_interval, remaining))

    def _scatter(
        self, calls: list[Callable[[], tuple[int, dict[str, Any]]]]
    ) -> list[tuple[int, dict[str, Any]]]:
        """Run the calls concurrently; the first exception propagates."""
        if len(calls) == 1:
            return [calls[0]()]
        futures = [self._pool.submit(call) for call in calls]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _size_l(self, payload: Any, budget: _Budget) -> tuple[int, dict[str, Any]]:
        shard = 0
        if (
            isinstance(payload, dict)
            and isinstance(payload.get("dataset"), str)
            and isinstance(payload.get("table"), str)
            and _is_row_id(payload.get("row_id"))
        ):
            shard = self.ring.owner(
                payload["dataset"], payload["table"], payload["row_id"]
            )
        return self._call(shard, "/v1/size-l", payload, budget)

    def _batch(self, payload: Any, budget: _Budget) -> tuple[int, dict[str, Any]]:
        splittable = (
            isinstance(payload, dict)
            and set(payload) <= _BATCH_KEYS
            and isinstance(payload.get("dataset"), str)
            and isinstance(payload.get("subjects"), (list, tuple))
            and 0 < len(payload["subjects"]) <= MAX_BATCH_SUBJECTS
            and all(_valid_subject(item) for item in payload["subjects"])
        )
        if not splittable:
            # let a real dispatcher produce the pinned validation error
            return self._call(0, "/v1/batch", payload, budget)
        dataset = payload["dataset"]
        groups: dict[int, list[int]] = {}
        for index, (table, row_id) in enumerate(payload["subjects"]):
            shard = self.ring.owner(dataset, table, row_id)
            groups.setdefault(shard, []).append(index)

        def sub_payload(indices: list[int]) -> dict[str, Any]:
            sub = {
                key: payload[key]
                for key in ("protocol_version", "dataset", "options", "deadline_ms")
                if key in payload
            }
            sub["subjects"] = [list(payload["subjects"][i]) for i in indices]
            return sub

        shards = sorted(groups)
        replies = self._scatter(
            [
                (lambda s=shard: self._call(
                    s, "/v1/batch", sub_payload(groups[s]), budget
                ))
                for shard in shards
            ]
        )
        entries: list[dict[str, Any] | None] = [None] * len(payload["subjects"])
        caches: list[dict[str, int]] = []
        version = 0
        for shard, (status, body) in zip(shards, replies):
            if status != 200:
                return status, body
            for index, entry in zip(groups[shard], body["results"]):
                entry = dict(entry)
                entry["rank"] = index
                entries[index] = entry
            caches.append(body.get("cache", {}))
            version = max(version, int(body.get("dataset_version", 0)))
        return 200, {
            "protocol_version": PROTOCOL_VERSION,
            "dataset": dataset,
            "cache": CacheStats.merge(*caches).as_dict(),
            "dataset_version": version,
            "results": entries,
        }

    def _query(self, payload: Any, budget: _Budget) -> tuple[int, dict[str, Any]]:
        """The split keyword query: one match call, one batch per shard.

        The window arithmetic below (cursor verification, page slice,
        next-cursor minting) mirrors ``ServiceDispatcher.query`` line for
        line — it must, or cursors would not round-trip between shard
        counts.
        """
        allow_partial = (
            isinstance(payload, dict) and payload.get("allow_partial") is True
        )
        status, found = self._call_any(MATCHES_ENDPOINT, payload, budget)
        if status != 200:
            return status, found
        matches = found["matches"]
        dataset = found["dataset"]
        start = 0
        raw_cursor = payload.get("cursor") if isinstance(payload, dict) else None
        if raw_cursor is not None:
            cursor = Cursor.decode(raw_cursor)  # already validated by the worker
            stable = cursor.rank < len(matches) and (
                matches[cursor.rank]["table"] == cursor.table
                and matches[cursor.rank]["row_id"] == cursor.row_id
            )
            if not stable:
                exc = RequestValidationError(
                    f"stale cursor: rank {cursor.rank} is no longer "
                    f"{cursor.table}#{cursor.row_id} in the current ranking; "
                    "restart the query without a cursor"
                )
                return 400, encode_error(exc, 400)
            start = cursor.rank + 1
        page = matches[start:]
        page_size = payload.get("page_size") if isinstance(payload, dict) else None
        if page_size is not None:
            page = page[:page_size]

        groups: dict[int, list[int]] = {}
        for offset, match in enumerate(page):
            shard = self.ring.owner(dataset, match["table"], match["row_id"])
            groups.setdefault(shard, []).append(offset)

        def sub_payload(offsets: list[int]) -> dict[str, Any]:
            sub: dict[str, Any] = {"dataset": dataset}
            if isinstance(payload, dict) and "options" in payload:
                sub["options"] = payload["options"]
            if isinstance(payload, dict) and "deadline_ms" in payload:
                sub["deadline_ms"] = payload["deadline_ms"]
            sub["subjects"] = [
                [page[o]["table"], page[o]["row_id"]] for o in offsets
            ]
            return sub

        def call_shard(shard: int) -> "tuple[int, dict[str, Any]] | None":
            sub = sub_payload(groups[shard])
            if not allow_partial:
                return self._call(shard, "/v1/batch", sub, budget)
            try:
                return self._call(
                    shard, "/v1/batch", sub, budget,
                    patience=self.partial_patience,
                )
            except ShardUnavailableError:
                return None  # degraded: this shard's entries are dropped

        shards = sorted(groups)
        replies = self._scatter([(lambda s=shard: call_shard(s)) for shard in shards])
        entries: list[dict[str, Any] | None] = [None] * len(page)
        caches: list[dict[str, int]] = []
        missing: list[int] = []
        version = int(found.get("dataset_version", 0))
        for shard, reply in zip(shards, replies):
            if reply is None or (allow_partial and reply[0] == 503):
                missing.append(shard)
                continue
            batch_status, body = reply
            if batch_status != 200:
                return batch_status, body
            for offset, entry in zip(groups[shard], body["results"]):
                entry = dict(entry)
                entry["rank"] = start + offset
                entry["match_importance"] = float(page[offset]["importance"])
                entries[offset] = entry
            caches.append(body.get("cache", {}))
            version = max(version, int(body.get("dataset_version", 0)))
        next_cursor = None
        if page and start + len(page) < len(matches):
            last = page[-1]
            next_cursor = Cursor(
                rank=start + len(page) - 1,
                table=last["table"],
                row_id=last["row_id"],
            ).encode()
        body = {
            "protocol_version": PROTOCOL_VERSION,
            "dataset": dataset,
            "cache": CacheStats.merge(*caches).as_dict(),
            "dataset_version": version,
            "keywords": found["keywords"],
            "results": [entry for entry in entries if entry is not None],
            "total_matches": found["total"],
            "next_cursor": next_cursor,
        }
        # the marker appears only on actually-degraded answers, so healthy
        # allow_partial responses stay byte-identical to normal ones
        if missing:
            body["degraded"] = True
            body["missing_shards"] = sorted(missing)
        return 200, body

    def _stats(self, payload: Any, budget: _Budget) -> tuple[int, dict[str, Any]]:
        allow_partial = (
            isinstance(payload, dict) and payload.get("allow_partial") is True
        )
        shards = range(self.supervisor.shard_count)

        def call_shard(shard: int) -> "tuple[int, dict[str, Any]] | None":
            if not allow_partial:
                return self._call(shard, "/v1/stats", payload, budget)
            try:
                return self._call(
                    shard, "/v1/stats", payload, budget,
                    patience=self.partial_patience,
                )
            except ShardUnavailableError:
                return None

        replies = self._scatter([(lambda s=shard: call_shard(s)) for shard in shards])
        missing = [shard for shard, reply in zip(shards, replies) if reply is None]
        healthy = [reply for reply in replies if reply is not None]
        if not healthy:
            raise ShardUnavailableError(
                missing[0], "no shard could answer the stats broadcast"
            )
        for status, body in healthy:
            if status != 200:
                return status, body
        bodies = [body for _status, body in healthy]
        merged = dict(bodies[0])
        if isinstance(payload, dict) and payload.get("dataset") is not None:
            merged["cache"] = CacheStats.merge(
                *(body.get("cache", {}) for body in bodies)
            ).as_dict()
        else:
            for name, info in merged.items():
                if isinstance(info, dict) and "cache" in info:
                    info = dict(info)
                    info["cache"] = CacheStats.merge(
                        *(body[name]["cache"] for body in bodies if "cache" in body.get(name, {}))
                    ).as_dict()
                    merged[name] = info
        merged["cluster"] = {
            "shards": self.supervisor.shard_count,
            "ready": self.supervisor.ready_count(),
        }
        if missing:
            merged["degraded"] = True
            merged["missing_shards"] = sorted(missing)
        return 200, merged

    def _mutate(self, payload: Any, budget: _Budget) -> tuple[int, dict[str, Any]]:
        """Owner-first transactional write, then broadcast to the replicas.

        Every shard holds a full replica of the dataset, so a committed
        transaction must reach all of them.  The shard owning the first
        operation's ``(dataset, table, pk)`` commits first and its body is
        the response — the client observes its own write on that shard
        immediately (read-your-writes per shard).  A failure on the owner
        aborts the whole request before any replica has seen it; a failure
        mid-broadcast returns that shard's error (replicas may then lag
        until the client retries — mutations never degrade silently).
        """
        owner = 0
        if isinstance(payload, dict) and isinstance(payload.get("dataset"), str):
            operations = payload.get("operations")
            if isinstance(operations, (list, tuple)) and operations:
                first = operations[0]
                if isinstance(first, dict) and isinstance(first.get("table"), str):
                    key = first.get("pk", first.get("values"))
                    owner = self.ring.owner(
                        payload["dataset"], first["table"], _stable_key(key)
                    )
        status, body = self._call(owner, "/v1/mutate", payload, budget)
        if status != 200:
            return status, body
        replicas = [
            shard
            for shard in range(self.supervisor.shard_count)
            if shard != owner
        ]
        if replicas:
            replies = self._scatter(
                [
                    (lambda s=shard: self._call(s, "/v1/mutate", payload, budget))
                    for shard in replicas
                ]
            )
            for replica_status, replica_body in replies:
                if replica_status != 200:
                    return replica_status, replica_body
        return status, body

    def _watch_register(
        self, payload: Any, budget: _Budget
    ) -> tuple[int, dict[str, Any]]:
        """Broadcast a watch registration under one router-minted id.

        Every shard evaluates every commit it applies, so registering the
        same watch id everywhere makes notifications available wherever a
        later poll lands; the first shard's body (baseline top-k) answers.
        """
        if isinstance(payload, dict) and "watch_id" not in payload:
            payload = dict(payload)
            payload["watch_id"] = uuid.uuid4().hex[:16]
        return self._broadcast("/v1/watch", payload, budget)

    def _watch_poll(self, payload: Any, budget: _Budget) -> tuple[int, dict[str, Any]]:
        """Fan a poll out to every shard and merge by dataset version.

        Replicas apply the same commits, so their notification streams
        agree version-for-version; the merge dedupes on the version key
        and a shard that lost its registry (restart) is simply outvoted by
        the shards that still hold the watch.  Only when *no* shard knows
        the watch does the 404 propagate.
        """
        shards = range(self.supervisor.shard_count)

        def call_shard(shard: int) -> "tuple[int, dict[str, Any]] | None":
            try:
                return self._call(shard, "/v1/watch/poll", payload, budget)
            except ShardUnavailableError:
                return None

        replies = self._scatter([(lambda s=shard: call_shard(s)) for shard in shards])
        merged: dict[int, dict[str, Any]] = {}
        version = 0
        template: "dict[str, Any] | None" = None
        failure: "tuple[int, dict[str, Any]] | None" = None
        for reply in replies:
            if reply is None:
                continue
            status, body = reply
            if status != 200:
                if failure is None:
                    failure = (status, body)
                continue
            template = template if template is not None else body
            version = max(version, int(body.get("dataset_version", 0)))
            for notification in body.get("notifications", ()):
                merged.setdefault(
                    int(notification["dataset_version"]), notification
                )
        if template is None:
            if failure is not None:
                return failure
            raise ShardUnavailableError(
                0, "no shard could answer the watch poll"
            )
        return 200, {
            "protocol_version": PROTOCOL_VERSION,
            "dataset": template["dataset"],
            "watch_id": template["watch_id"],
            "dataset_version": version,
            "notifications": [merged[key] for key in sorted(merged)],
        }

    def _watch_cancel(
        self, payload: Any, budget: _Budget
    ) -> tuple[int, dict[str, Any]]:
        """Broadcast a cancel; ``cancelled`` is true if any shard held it."""
        shards = range(self.supervisor.shard_count)
        replies = self._scatter(
            [
                (lambda s=shard: self._call(s, "/v1/watch/cancel", payload, budget))
                for shard in shards
            ]
        )
        for status, body in replies:
            if status != 200:
                return status, body
        merged = dict(replies[0][1])
        merged["cancelled"] = any(body.get("cancelled") for _s, body in replies)
        return 200, merged

    def _invalidate(self, payload: Any, budget: _Budget) -> tuple[int, dict[str, Any]]:
        row_scoped = (
            isinstance(payload, dict)
            and set(payload) <= {"dataset", "table", "row_id"}
            and isinstance(payload.get("dataset"), str)
            and isinstance(payload.get("table"), str)
            and _is_row_id(payload.get("row_id"))
        )
        if row_scoped:
            shard = self.ring.owner(
                payload["dataset"], payload["table"], payload["row_id"]
            )
            return self._call(shard, "/v1/admin/invalidate", payload, budget)
        return self._broadcast("/v1/admin/invalidate", payload, budget)

    def _broadcast(
        self, endpoint: str, payload: Any, budget: _Budget
    ) -> tuple[int, dict[str, Any]]:
        """Every shard must apply the mutation; first failure wins.

        Mutations never degrade: a partial invalidate/reload would leave
        shards serving different generations of the same dataset.
        """
        shards = range(self.supervisor.shard_count)
        replies = self._scatter(
            [
                (lambda s=shard: self._call(s, endpoint, payload, budget))
                for shard in shards
            ]
        )
        for status, body in replies:
            if status != 200:
                return status, body
        return replies[0]

    # ------------------------------------------------------------------ #
    # The dispatcher-shaped surface
    # ------------------------------------------------------------------ #
    def dispatch_safe(
        self, endpoint: str, payload: object = None
    ) -> tuple[int, dict[str, Any]]:
        """Route one request; never raises (same contract as the
        single-process ``ServiceDispatcher.dispatch_safe``)."""
        with self._inflight_lock:
            self._inflight += 1
        try:
            budget = self._budget(payload)
            # capture the edge context here, on the edge thread — scatter
            # work runs on pool threads where the thread-local is unset
            edge_ctx = current_context()
            if edge_ctx is not None:
                budget.ctx = edge_ctx.wire_identity()
            if endpoint == "/v1/query":
                return self._query(payload, budget)
            if endpoint == "/v1/size-l":
                return self._size_l(payload, budget)
            if endpoint == "/v1/batch":
                return self._batch(payload, budget)
            if endpoint == "/v1/datasets":
                return self._call_any("/v1/datasets", payload, budget)
            if endpoint == "/v1/stats":
                return self._stats(payload, budget)
            if endpoint == "/v1/admin/invalidate":
                return self._invalidate(payload, budget)
            if endpoint == "/v1/admin/reload":
                return self._broadcast("/v1/admin/reload", payload, budget)
            if endpoint == "/v1/mutate":
                return self._mutate(payload, budget)
            if endpoint == "/v1/watch":
                return self._watch_register(payload, budget)
            if endpoint == "/v1/watch/poll":
                return self._watch_poll(payload, budget)
            if endpoint == "/v1/watch/cancel":
                return self._watch_cancel(payload, budget)
            exc = UnknownEndpointError(endpoint)
            return 404, encode_error(exc, 404)
        except ShardUnavailableError as exc:
            return 503, encode_error(exc, 503)
        except Exception as exc:  # noqa: BLE001 - the dispatch_safe contract
            status = status_for(exc, endpoint)
            return status, encode_error(exc, status)
        finally:
            with self._inflight_zero:
                self._inflight -= 1
                if self._inflight == 0:
                    self._inflight_zero.notify_all()

    def cache_stats_by_dataset(self) -> "dict[str, CacheStats]":
        """Typed per-dataset cache counters, merged across shards.

        The metrics endpoint's hook: each shard answers its non-building
        aggregate ``/v1/stats`` under a short flat timeout, unavailable
        shards are skipped (a scrape must not block on a restarting
        worker), and each dataset's counters merge via
        :meth:`CacheStats.merge`.  Datasets no shard has built yet simply
        do not appear.
        """
        per_dataset: dict[str, list[dict[str, int]]] = {}
        for shard in range(self.supervisor.shard_count):
            try:
                status, body = self.supervisor.request(
                    shard, "/v1/stats", None, timeout=self.partial_patience
                )
            except ShardUnavailableError:
                continue
            if status != 200 or not isinstance(body, dict):
                continue
            for name, info in body.items():
                if isinstance(info, dict) and isinstance(info.get("cache"), dict):
                    per_dataset.setdefault(name, []).append(info["cache"])
        return {
            name: CacheStats.merge(*counters)
            for name, counters in sorted(per_dataset.items())
        }

    def live_stats_by_dataset(self) -> "dict[str, dict[str, int]]":
        """Per-dataset live gauges, merged across shards with ``max``.

        ``dataset_version`` takes the newest shard (during a mutation
        broadcast shards briefly disagree; the scrape reports the front
        of the convergence) and ``watch_active`` the largest registry —
        watches are replicated everywhere, so on a healthy cluster the
        shards agree and max is exact.
        """
        merged: dict[str, dict[str, int]] = {}
        for shard in range(self.supervisor.shard_count):
            try:
                status, body = self.supervisor.request(
                    shard, "/v1/stats", None, timeout=self.partial_patience
                )
            except ShardUnavailableError:
                continue
            if status != 200 or not isinstance(body, dict):
                continue
            for name, info in body.items():
                if not isinstance(info, dict) or "dataset_version" not in info:
                    continue
                entry = merged.setdefault(
                    name, {"dataset_version": 0, "watch_active": 0}
                )
                entry["dataset_version"] = max(
                    entry["dataset_version"], int(info.get("dataset_version", 0))
                )
                entry["watch_active"] = max(
                    entry["watch_active"], int(info.get("watch_active", 0))
                )
        return dict(sorted(merged.items()))

    def healthz(self) -> dict[str, Any]:
        """Cluster liveness: the router is up; per-shard detail inside.

        Each shard reports a ``state``: ``ok`` (ready, breaker closed),
        ``breaker_open`` (ready per the supervisor but the router's
        breaker is holding traffic after consecutive transport failures),
        or ``restarting`` (supervisor is respawning it).
        """
        shards = self.supervisor.describe()
        for info in shards:
            if not info["ready"]:
                info["state"] = "restarting"
            elif self._breakers[info["shard"]].state != CLOSED:
                info["state"] = "breaker_open"
            else:
                info["state"] = "ok"
        return {
            "ok": all(info["ready"] for info in shards),
            "role": "router",
            "shards": shards,
            "endpoints": list(ENDPOINTS),
        }

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait for in-flight requests to finish (graceful-shutdown half)."""
        deadline = time.monotonic() + timeout
        with self._inflight_zero:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_zero.wait(remaining)
        return True

    def close(self) -> None:
        self._pool.shutdown(wait=False)
