"""Cluster bootstrap: specs in, a serving router out.

:class:`Cluster` is the one object ``repro serve --shards N`` (and the
cluster benchmark, and the e2e tests) constructs: it fans one dataset
recipe list out into N :class:`~repro.cluster.worker.WorkerSpec`\\ s —
every worker hosts every dataset; the :class:`~repro.cluster.hashring`
ring decides which worker's *cache* owns which subject — starts the
:class:`~repro.cluster.supervisor.Supervisor`, and wraps it in a
:class:`~repro.cluster.router.ClusterRouter` that plugs into the HTTP
front end wherever a dispatcher is expected::

    with Cluster([DatasetSpec(name="dblp", database="dblp")], shards=4) as cluster:
        server = cluster.create_http_server(port=8077)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...

Shutdown order matters and :meth:`stop` owns it: stop accepting (the
caller closes its HTTP server first), drain the router's in-flight
scatters, then SIGTERM the workers so each drains its own socket loop.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import Supervisor
from repro.cluster.worker import DatasetSpec, WorkerSpec
from repro.errors import ClusterError
from repro.service.http import ServiceHTTPServer


class Cluster:
    """A worker pool plus its router, with one lifecycle."""

    def __init__(
        self,
        datasets: Sequence[DatasetSpec],
        shards: int,
        *,
        cache_size: int = 64,
        workers: int = 1,
        ordered: bool = True,
        request_timeout: float = 30.0,
        startup_timeout: float = 120.0,
        health_interval: float = 0.5,
        backoff_base: float = 0.25,
        backoff_cap: float = 5.0,
        run_dir: "str | Path | None" = None,
        access_log: str = "",
    ) -> None:
        if shards < 1:
            raise ClusterError(f"a cluster needs at least one shard, got {shards}")
        if not datasets:
            raise ClusterError("a cluster needs at least one dataset")
        self.datasets = tuple(datasets)
        self.shards = shards
        self.request_timeout = request_timeout
        specs = [
            WorkerSpec(
                shard_index=index,
                shard_count=shards,
                datasets=self.datasets,
                ready_file="",  # the supervisor assigns a per-generation file
                cache_size=cache_size,
                workers=workers,
                ordered=ordered,
                # workers append hop lines (stamped with their shard) to the
                # same file the edge logs to; "" keeps hop logging off
                access_log=access_log,
            )
            for index in range(shards)
        ]
        self.supervisor = Supervisor(
            specs,
            startup_timeout=startup_timeout,
            health_interval=health_interval,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            run_dir=run_dir,
        )
        self.router: ClusterRouter | None = None

    def start(self) -> "Cluster":
        """Boot every worker (blocking until all are serviceable)."""
        self.supervisor.start()
        self.router = ClusterRouter(
            self.supervisor, request_timeout=self.request_timeout
        )
        return self

    def create_http_server(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        middleware: Any = None,
    ) -> ServiceHTTPServer:
        """An HTTP front end over the router (bind only, like
        :func:`repro.service.http.create_server`).  *middleware* is a
        :class:`~repro.service.middleware.MiddlewareConfig` or pre-built
        pipeline; the stack runs once, at this edge — never in workers."""
        if self.router is None:
            raise ClusterError("cluster is not started; call start() first")
        return ServiceHTTPServer(
            (host, port), self.router, verbose=verbose, middleware=middleware
        )

    def dispatch_safe(
        self, endpoint: str, payload: object = None
    ) -> tuple[int, dict[str, Any]]:
        """In-process dispatch through the router (tests, benchmarks)."""
        if self.router is None:
            raise ClusterError("cluster is not started; call start() first")
        return self.router.dispatch_safe(endpoint, payload)

    def stop(self, *, drain_timeout: float = 30.0) -> None:
        """Drain in-flight requests, then stop the workers (idempotent)."""
        router, self.router = self.router, None
        if router is not None:
            router.drain(drain_timeout)
            router.close()
        self.supervisor.stop()

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
