"""Length-prefixed JSON framing between the router and its workers.

The cluster's internal fabric is deliberately boring: one TCP connection
carries a sequence of frames, each a 4-byte big-endian length followed by
a UTF-8 JSON document.  Requests and responses are the same envelopes the
HTTP layer speaks (endpoint + payload in, status + body out), so a worker
is PR 5's :class:`~repro.service.dispatch.ServiceDispatcher` behind a
socket instead of behind ``ThreadingHTTPServer`` — no second protocol to
keep correct.

:class:`WorkerClient` is the router side: a small pool of persistent
connections per worker (one in-flight request per connection; concurrency
comes from using several).  Any transport failure closes the affected
connection and surfaces as :class:`TransportError` — the router decides
whether to retry (the worker may be restarting) or to answer 503.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any

from repro.errors import ClusterError
from repro.reliability import inject

#: Frame header: payload byte length, 4-byte big-endian.
_HEADER = struct.Struct(">I")

#: Frames above this are rejected before allocation (same ceiling as the
#: HTTP front end's request-body cap).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class TransportError(ClusterError):
    """A connection-level failure (EOF, reset, timeout, oversized or
    malformed frame).  The connection it happened on is unusable; the
    request itself was not necessarily served — callers retry or 503."""


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    """Serialize and write one frame (raises :class:`TransportError`)."""
    inject("transport.send", TransportError)
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly *n* bytes; ``None`` on clean EOF before the first byte.

    A timeout *before any byte arrived* propagates as ``socket.timeout`` —
    that is the idle case pollers (the worker's drain check) act on.  A
    timeout mid-read means a half-sent frame: the connection is
    desynchronized and only :class:`TransportError` is correct.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            if not chunks:
                raise
            raise TransportError(
                f"timed out mid-read ({n - remaining}/{n} bytes)"
            ) from None
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        if not chunk:
            if not chunks:
                return None
            raise TransportError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    inject("transport.recv", TransportError)
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})"
        )
    try:
        payload = _recv_exact(sock, length) if length else b""
    except socket.timeout:  # the header is consumed: this is mid-frame
        raise TransportError("timed out between header and payload") from None
    if payload is None:
        raise TransportError("connection closed between header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise TransportError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise TransportError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


class WorkerClient:
    """The router's connection pool to one worker process.

    Each :meth:`request` checks a connection out of the idle pool (or
    dials a new one), performs exactly one framed round-trip under the
    caller's deadline, and returns the connection on success.  A failed
    connection is closed, never pooled — the next request dials fresh,
    which is what makes a worker restart transparent to callers that
    retry.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        max_idle: int = 8,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.max_idle = max_idle
        self._idle: list[socket.socket] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._closed:
                raise TransportError("client is closed")
            if self._idle:
                return self._idle.pop()
        try:
            return socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise TransportError(
                f"cannot connect to worker at {self.host}:{self.port}: {exc}"
            ) from exc

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.max_idle:
                self._idle.append(sock)
                return
        sock.close()

    def request(
        self,
        endpoint: str,
        payload: Any = None,
        *,
        timeout: float = 30.0,
        ctx: "dict[str, Any] | None" = None,
    ) -> tuple[int, dict[str, Any]]:
        """One ``(status, body)`` round-trip within *timeout* seconds.

        *ctx* is the edge request's wire identity (request id, principal)
        — carried as an optional ``"ctx"`` frame field so the worker's
        access log attributes hop work to the originating request.  When
        absent the frame is byte-identical to the pre-middleware wire
        format; old workers ignore the extra field either way.
        """
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
        frame: dict[str, Any] = {
            "id": request_id,
            "endpoint": endpoint,
            "payload": payload,
        }
        if ctx:
            frame["ctx"] = ctx
        sock = self._checkout()
        try:
            sock.settimeout(max(timeout, 1e-3))
            send_frame(sock, frame)
            message = recv_frame(sock)
        except TransportError:
            sock.close()
            raise
        except OSError as exc:  # settimeout on a dead socket, timeouts
            sock.close()
            raise TransportError(f"round-trip failed: {exc}") from exc
        if message is None:
            sock.close()
            raise TransportError("worker closed the connection before replying")
        if message.get("id") != request_id:
            # a desynchronized connection can only serve wrong answers
            sock.close()
            raise TransportError(
                f"response id {message.get('id')!r} != request id {request_id}"
            )
        status = message.get("status")
        body = message.get("body")
        if not isinstance(status, int) or not isinstance(body, dict):
            sock.close()
            raise TransportError(f"malformed response envelope: {message!r}")
        self._checkin(sock)
        return status, body

    def close(self) -> None:
        """Close every pooled connection (in-flight ones close themselves)."""
        with self._lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for sock in idle:
            sock.close()
