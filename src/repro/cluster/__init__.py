"""Sharded multi-process serving: workers, supervisor, router, bootstrap.

The package splits one serving deployment across N worker *processes*,
each owning a disjoint cache partition chosen by consistent hashing on
``(dataset, table, row_id)``.  See :mod:`repro.cluster.serve` for the
one-object entry point ``repro serve --shards N`` uses.
"""

from repro.cluster.hashring import DEFAULT_REPLICAS, HashRing
from repro.cluster.router import ClusterRouter
from repro.cluster.serve import Cluster
from repro.cluster.supervisor import Supervisor
from repro.cluster.transport import (
    MAX_FRAME_BYTES,
    TransportError,
    WorkerClient,
    recv_frame,
    send_frame,
)
from repro.cluster.worker import (
    MATCHES_ENDPOINT,
    PING_ENDPOINT,
    DatasetSpec,
    WorkerServer,
    WorkerSpec,
    run_worker,
)

__all__ = [
    "DEFAULT_REPLICAS",
    "HashRing",
    "ClusterRouter",
    "Cluster",
    "Supervisor",
    "MAX_FRAME_BYTES",
    "TransportError",
    "WorkerClient",
    "recv_frame",
    "send_frame",
    "MATCHES_ENDPOINT",
    "PING_ENDPOINT",
    "DatasetSpec",
    "WorkerServer",
    "WorkerSpec",
    "run_worker",
]
