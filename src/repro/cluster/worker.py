"""The shard worker: a full serving stack behind a framed socket.

``python -m repro.cluster.worker '<spec json>'`` boots one worker
process: it builds (or snapshot-attaches) every dataset in its spec,
binds a loopback TCP port, writes a ready record, and then serves the
PR 5 wire protocol — each frame is ``{"id", "endpoint", "payload"}`` in
and ``{"id", "status", "body"}`` out, handled by an unmodified
:class:`~repro.service.dispatch.ServiceDispatcher`.  The process is the
isolation unit: its GIL, its heap, its cache partition; a crash here
takes down one shard's key range and nothing else.

Two cluster-internal endpoints exist only on this transport (they are
*fabric*, not public API, so they are deliberately not mounted on HTTP):

* ``cluster/ping`` — the supervisor's health probe: pinned cheap, no
  session work;
* ``cluster/matches`` — the front half of a keyword query (the ranked
  ``t_DS`` match list).  The router calls it once per ``/v1/query`` and
  then scatters the expensive per-subject OS work to each match's
  *owning* shard as ``/v1/batch`` requests.

Snapshots are attached read-only via ``mmap``, so N workers pointed at
one snapshot directory share its arenas through the page cache with
near-zero incremental RSS — the spec's ``snapshot`` field is how a
cluster distributes a precomputed dataset to every shard for free.

Shutdown: SIGTERM/SIGINT stop the accept loop, let in-flight frames
finish (connection threads notice within ``_IDLE_POLL_SECONDS``), close
every session, and exit 0.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import socketserver
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.options import ParallelConfig
from repro.errors import ClusterError
from repro.cluster.transport import TransportError, recv_frame, send_frame
from repro.reliability import inject, install_from_env
from repro.reliability.deadline import deadline_scope
from repro.service.deployment import Deployment
from repro.service.dispatch import ServiceDispatcher, status_for
from repro.service.middleware.accesslog import AccessLog
from repro.service.middleware.context import RequestContext, context_scope
from repro.service.protocol import decode_query_request, encode_error, request_deadline

#: Cluster-internal endpoints (never mounted on the HTTP front end).
PING_ENDPOINT = "cluster/ping"
MATCHES_ENDPOINT = "cluster/matches"

#: How often an idle connection thread rechecks the shutdown flag.
_IDLE_POLL_SECONDS = 0.5


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset a worker hosts: the same recipe fields ``repro serve``
    resolves, serialized so a subprocess can rebuild it bit-identically."""

    name: str
    database: str
    seed: int = 7
    scale: float = 1.0
    snapshot: str | None = None
    verify: bool = True

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "database": self.database,
            "seed": self.seed,
            "scale": self.scale,
            "snapshot": self.snapshot,
            "verify": self.verify,
        }


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs, JSON-serializable (argv)."""

    shard_index: int
    shard_count: int
    datasets: tuple[DatasetSpec, ...]
    ready_file: str
    host: str = "127.0.0.1"
    port: int = 0
    cache_size: int = 64
    workers: int = 1
    ordered: bool = True
    #: append-target for per-hop access-log lines ("" disables; a shared
    #: file is safe — lines are written atomically and stamped ``shard``)
    access_log: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "datasets": [spec.as_dict() for spec in self.datasets],
            "ready_file": self.ready_file,
            "host": self.host,
            "port": self.port,
            "cache_size": self.cache_size,
            "workers": self.workers,
            "ordered": self.ordered,
            "access_log": self.access_log,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "WorkerSpec":
        try:
            datasets = tuple(
                DatasetSpec(**entry) for entry in payload["datasets"]
            )
            return cls(
                shard_index=payload["shard_index"],
                shard_count=payload["shard_count"],
                datasets=datasets,
                ready_file=payload["ready_file"],
                host=payload.get("host", "127.0.0.1"),
                port=payload.get("port", 0),
                cache_size=payload.get("cache_size", 64),
                workers=payload.get("workers", 1),
                ordered=payload.get("ordered", True),
                access_log=payload.get("access_log", ""),
                extra=payload.get("extra", {}),
            )
        except (KeyError, TypeError) as exc:
            raise ClusterError(f"invalid worker spec: {exc}") from exc


def build_deployment(spec: WorkerSpec) -> Deployment:
    """The spec's datasets as one Deployment, every session built eagerly.

    Eager because "ready" must mean *serviceable*: the supervisor's ready
    handshake doubles as the restart-recovery clock, and a lazily built
    entry would bill the first unlucky request for the rebuild instead.
    """
    deployment = Deployment()
    for entry in spec.datasets:
        deployment.add(
            entry.name,
            named=entry.database,
            seed=entry.seed,
            scale=entry.scale,
            snapshot=entry.snapshot,
            verify=entry.verify,
            cache_size=spec.cache_size,
            parallel=ParallelConfig(workers=spec.workers, ordered=spec.ordered),
        )
        deployment.session(entry.name)
    return deployment


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One persistent connection: a loop of framed request/response pairs."""

    server: "WorkerServer"

    def handle(self) -> None:
        sock = self.request
        sock.settimeout(_IDLE_POLL_SECONDS)
        while not self.server.draining:
            try:
                message = recv_frame(sock)
            except socket.timeout:
                continue  # idle between frames: recheck the drain flag
            except TransportError:
                return  # mid-frame corruption/reset: drop the connection
            if message is None:
                return  # clean EOF
            # a frame has landed: answer it even if drain starts meanwhile
            sock.settimeout(None)
            try:
                send_frame(sock, self.server.handle_message(message))
            except TransportError:
                return
            sock.settimeout(_IDLE_POLL_SECONDS)


class WorkerServer(socketserver.ThreadingTCPServer):
    """The worker's socket server around one dispatcher."""

    allow_reuse_address = True
    daemon_threads = False
    block_on_close = True  # graceful: server_close() joins in-flight frames

    def __init__(self, spec: WorkerSpec, deployment: Deployment) -> None:
        super().__init__((spec.host, spec.port), _ConnectionHandler)
        self.spec = spec
        self.deployment = deployment
        self.dispatcher = ServiceDispatcher(deployment)
        self.draining = False
        self.access_log: "AccessLog | None" = None
        if spec.access_log:
            self.access_log = AccessLog(
                spec.access_log, extra={"shard": spec.shard_index}
            )

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #
    def handle_message(self, message: dict[str, Any]) -> dict[str, Any]:
        endpoint = message.get("endpoint")
        payload = message.get("payload")
        if endpoint == PING_ENDPOINT:
            # health probes carry no edge context and are never hop-logged
            return {"id": message.get("id"), "status": 200, "body": self._ping()}
        # the frame's optional "ctx" field is the edge request's identity:
        # installing it thread-locally is what makes one request id span
        # the router→worker hop (from_wire tolerates absent/garbage ctx)
        ctx = RequestContext.from_wire(message.get("ctx"), endpoint=str(endpoint))
        with context_scope(ctx):
            if endpoint == MATCHES_ENDPOINT:
                status, body = self._matches_safe(payload)
            else:
                status, body = self.dispatcher.dispatch_safe(endpoint, payload)
            if self.access_log is not None:
                if isinstance(payload, dict) and isinstance(
                    payload.get("dataset"), str
                ):
                    ctx.dataset = payload["dataset"]
                self.access_log.write(ctx, str(endpoint), status)
        return {"id": message.get("id"), "status": status, "body": body}

    def _ping(self) -> dict[str, Any]:
        return {
            "ok": True,
            "shard": self.spec.shard_index,
            "shards": self.spec.shard_count,
            "pid": os.getpid(),
            "datasets": [entry.name for entry in self.spec.datasets],
        }

    def _matches_safe(self, payload: Any) -> tuple[int, dict[str, Any]]:
        """The ranked match list of a keyword query (no OS work).

        Decodes the *full* ``/v1/query`` payload — so field validation,
        option validation, and unknown-dataset failures surface here with
        exactly the single-process status codes — but only runs the cheap
        search half.  Cursor staleness is the router's job (it holds the
        match list this response returns).
        """
        try:
            with deadline_scope(request_deadline(payload)):
                defaults = self.dispatcher._session_defaults(payload)
                request = decode_query_request(payload, defaults=defaults)
                session = self.deployment.session(request.dataset)
                matches = session.engine.search_matches(
                    list(request.keywords), request.options
                )
        except Exception as exc:  # noqa: BLE001 - errors become status bodies
            status = status_for(exc, MATCHES_ENDPOINT)
            return status, encode_error(exc, status)
        return 200, {
            "dataset": request.dataset,
            "keywords": list(request.keywords),
            "matches": [
                {
                    "table": match.table,
                    "row_id": match.row_id,
                    "importance": float(match.importance),
                }
                for match in matches
            ],
            "total": len(matches),
            "dataset_version": session.dataset_version,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def announce_ready(self) -> None:
        """Atomically publish the bound port for the supervisor to read."""
        ready = Path(self.spec.ready_file)
        record = json.dumps(
            {"port": self.port, "pid": os.getpid(), "shard": self.spec.shard_index}
        )
        tmp = ready.with_suffix(ready.suffix + ".tmp")
        tmp.write_text(record + "\n", encoding="utf-8")
        tmp.rename(ready)

    def drain_and_shutdown(self) -> None:
        """Stop accepting, let in-flight frames finish, release sessions."""
        self.draining = True
        self.shutdown()

    def server_close(self) -> None:
        super().server_close()
        if self.access_log is not None:
            self.access_log.close()


def run_worker(spec: WorkerSpec) -> int:
    """Build, bind, announce, serve — the whole worker lifecycle."""
    # chaos plans ride the environment so respawned generations stay armed
    install_from_env()
    inject("worker.startup", ClusterError)
    deployment = build_deployment(spec)
    server = WorkerServer(spec, deployment)

    def _terminate(signum: int, _frame: Any) -> None:
        # shutdown() blocks until the accept loop exits; hand it to a
        # helper thread — this handler runs *on* the serving main thread
        threading.Thread(target=server.drain_and_shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    server.announce_ready()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()  # joins connection threads (block_on_close)
        deployment.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.cluster.worker '<spec json>'", file=sys.stderr)
        return 2
    try:
        spec = WorkerSpec.from_dict(json.loads(argv[0]))
        return run_worker(spec)
    except ClusterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
