"""Authority Transfer Schema Graphs (G_A) and tuple-edge enumeration.

A G_A (Figure 13 of the paper, after Balmin et al.'s ObjectRank) annotates
each schema relationship with two *authority transfer rates* — one per
direction.  At the tuple level, a relationship instance (u, v) transfers

    d · rate · share(u → v) · importance(u)

per iteration, where ``share`` splits the rate among u's neighbours of that
relationship type: evenly for ObjectRank, proportionally to a tuple *value
function* for ValueRank (e.g. TPC-H orders receive authority from their
customer proportionally to TotalPrice — the paper's "a customer with five
orders of $10 may get lower importance than another customer with three
orders of $100").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.db.database import Database
from repro.errors import RankingError


@dataclass(frozen=True)
class ValueFunction:
    """Value extractor for ValueRank shares.

    ``column`` is read from the *receiving* tuple's relation; ``transform``
    maps the raw value to a non-negative weight ("linear" or "log").  Weights
    are normalised among the competing receivers, so only relative magnitude
    matters.
    """

    table: str
    column: str
    transform: str = "linear"

    def weight(self, raw: object) -> float:
        if raw is None:
            return 0.0
        value = float(raw)  # type: ignore[arg-type]
        if value < 0:
            value = 0.0
        if self.transform == "linear":
            return value
        if self.transform == "log":
            return math.log1p(value)
        raise RankingError(f"unknown value transform: {self.transform!r}")


@dataclass(frozen=True)
class AuthorityRelationship:
    """One schema relationship with transfer rates in both directions.

    Two kinds are supported, mirroring the schema graph:

    * ``kind="fk"`` — ``table_a.column_a`` is a FK referencing ``table_b``;
      tuple edges connect each owner row to its referenced row.
    * ``kind="junction"`` — ``junction`` is a pure M:N table whose
      ``column_a`` references ``table_a`` and ``column_b`` references
      ``table_b``; tuple edges connect the two referenced rows.

    ``rate_forward`` is the a→b transfer rate; ``rate_backward`` b→a.

    ValueRank attaches value functions in two distinct roles:

    * ``value_forward`` / ``value_backward`` — *receiver weighting*: the
      direction's rate is split among the competing receivers proportionally
      to their values (a customer's 0.5 rate flows mostly into the big
      orders);
    * ``source_value_forward`` / ``source_value_backward`` — *source
      scaling*: the direction's rate is multiplied by the sending tuple's
      normalised value (a $100 order passes more authority to its customer
      than a $10 order does).  This is what makes "three $100 orders beat
      five $10 orders" — without it, plain edge counting would reward the
      many cheap orders.
    """

    name: str
    kind: str  # "fk" | "junction"
    table_a: str
    table_b: str
    column_a: str
    column_b: str | None
    rate_forward: float
    rate_backward: float
    junction: str | None = None
    value_forward: ValueFunction | None = None
    value_backward: ValueFunction | None = None
    source_value_forward: ValueFunction | None = None
    source_value_backward: ValueFunction | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("fk", "junction"):
            raise RankingError(f"unknown relationship kind: {self.kind!r}")
        if self.kind == "junction" and (self.junction is None or self.column_b is None):
            raise RankingError(
                f"junction relationship {self.name!r} needs junction and column_b"
            )
        for rate in (self.rate_forward, self.rate_backward):
            if rate < 0:
                raise RankingError(
                    f"negative transfer rate on relationship {self.name!r}"
                )


class AuthorityTransferGraph:
    """A set of authority relationships over a database schema (a G_A)."""

    def __init__(self, relationships: list[AuthorityRelationship]) -> None:
        names = [r.name for r in relationships]
        if len(set(names)) != len(names):
            raise RankingError("duplicate relationship names in G_A")
        self.relationships = list(relationships)

    def with_uniform_rates(self, rate: float) -> "AuthorityTransferGraph":
        """Return a copy with every (non-zero-capable) rate set to *rate* and
        all value functions dropped.

        This is the paper's G_A2 construction for DBLP ("common transfer
        rates (0.3) for all edges") and, with values neglected, its TPC-H
        G_A2 ("neglects values, i.e. becomes an ObjectRank G_A").
        """
        uniform = [
            AuthorityRelationship(
                name=r.name,
                kind=r.kind,
                table_a=r.table_a,
                table_b=r.table_b,
                column_a=r.column_a,
                column_b=r.column_b,
                rate_forward=rate,
                rate_backward=rate,
                junction=r.junction,
            )
            for r in self.relationships
        ]
        return AuthorityTransferGraph(uniform)

    def without_values(self) -> "AuthorityTransferGraph":
        """Return a copy with value functions dropped (ObjectRank shares)."""
        plain = [
            AuthorityRelationship(
                name=r.name,
                kind=r.kind,
                table_a=r.table_a,
                table_b=r.table_b,
                column_a=r.column_a,
                column_b=r.column_b,
                rate_forward=r.rate_forward,
                rate_backward=r.rate_backward,
                junction=r.junction,
            )
            for r in self.relationships
        ]
        return AuthorityTransferGraph(plain)

    def tables(self) -> set[str]:
        involved: set[str] = set()
        for r in self.relationships:
            involved.add(r.table_a)
            involved.add(r.table_b)
        return involved

    # ------------------------------------------------------------------ #
    # Tuple-edge enumeration
    # ------------------------------------------------------------------ #
    def tuple_pairs(
        self, db: Database, relationship: AuthorityRelationship
    ) -> Iterator[tuple[int, int]]:
        """Yield (row_a, row_b) tuple pairs for a relationship instance.

        Row ids are table-local; callers combine them with table offsets.
        Rows with NULL FKs contribute no pairs.
        """
        if relationship.kind == "fk":
            owner = db.table(relationship.table_a)
            target = db.table(relationship.table_b)
            col_idx = owner.schema.column_index(relationship.column_a)
            for row_id, row in owner.scan():
                ref = row[col_idx]
                if ref is None:
                    continue
                yield row_id, target.row_id_for_pk(ref)
        else:
            junction = db.table(relationship.junction)  # type: ignore[arg-type]
            table_a = db.table(relationship.table_a)
            table_b = db.table(relationship.table_b)
            idx_a = junction.schema.column_index(relationship.column_a)
            idx_b = junction.schema.column_index(relationship.column_b)  # type: ignore[arg-type]
            for _row_id, row in junction.scan():
                pk_a, pk_b = row[idx_a], row[idx_b]
                if pk_a is None or pk_b is None:
                    continue
                yield table_a.row_id_for_pk(pk_a), table_b.row_id_for_pk(pk_b)


WeightFn = Callable[[int], float]


def receiver_weights(
    db: Database, value_fn: ValueFunction | None
) -> WeightFn:
    """Build a row-id → weight function for value-proportional shares.

    Returns a constant 1.0 weight when *value_fn* is None (ObjectRank's even
    split); otherwise reads the configured column of the receiving tuple.
    """
    if value_fn is None:
        return lambda _row_id: 1.0
    table = db.table(value_fn.table)
    col_idx = table.schema.column_index(value_fn.column)

    def weight(row_id: int) -> float:
        return value_fn.weight(table.row(row_id)[col_idx])

    return weight


def source_scalers(db: Database, value_fn: ValueFunction | None) -> WeightFn:
    """Build a row-id → rate multiplier in [0, 1] for source scaling.

    The raw value is normalised by the relation's maximum so the multiplier
    stays in [0, 1] and the iteration's spectral radius cannot grow.  An
    all-zero value column degenerates to a constant 1.0 (no scaling).
    """
    if value_fn is None:
        return lambda _row_id: 1.0
    table = db.table(value_fn.table)
    col_idx = table.schema.column_index(value_fn.column)
    max_weight = 0.0
    for _row_id, row in table.scan():
        max_weight = max(max_weight, value_fn.weight(row[col_idx]))
    if max_weight <= 0.0:
        return lambda _row_id: 1.0

    def scaler(row_id: int) -> float:
        return value_fn.weight(table.row(row_id)[col_idx]) / max_weight

    return scaler
