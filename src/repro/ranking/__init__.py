"""Global tuple-importance ranking.

The paper scores tuples with *global* authority-flow metrics: global
ObjectRank [3] for DBLP and ValueRank [9] for TPC-H (Section 2.2).  Both are
computed here by sparse power iteration over the tuple graph, parameterised
by an Authority Transfer Schema Graph (G_A, Figure 13) that assigns per-
relationship transfer rates — optionally scaled by tuple values (ValueRank).

The size-l algorithms are orthogonal to the importance definition (the paper
says so explicitly); a plain PageRank baseline is included to demonstrate
that.
"""

from repro.ranking.authority import (
    AuthorityRelationship,
    AuthorityTransferGraph,
    ValueFunction,
)
from repro.ranking.power import (
    NodeNumbering,
    build_transfer_matrix,
    power_iterate,
)
from repro.ranking.objectrank import compute_objectrank
from repro.ranking.valuerank import compute_valuerank
from repro.ranking.pagerank import compute_pagerank
from repro.ranking.store import ImportanceStore, annotate_gds

__all__ = [
    "AuthorityRelationship",
    "AuthorityTransferGraph",
    "ValueFunction",
    "NodeNumbering",
    "build_transfer_matrix",
    "power_iterate",
    "compute_objectrank",
    "compute_valuerank",
    "compute_pagerank",
    "ImportanceStore",
    "annotate_gds",
]
