"""Plain PageRank over the tuple graph (baseline).

The paper notes that solely mapping a relational database to a graph "as in
the case of the web" is not accurate — that observation is ObjectRank's
motivation.  This baseline implements exactly that naive mapping (every FK
edge becomes an undirected pair of links, authority split evenly over *all*
neighbours regardless of relationship type), so experiments can demonstrate
what the G_A buys.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.db.database import Database
from repro.ranking.power import NodeNumbering, power_iterate
from repro.ranking.store import ImportanceStore


def compute_pagerank(
    db: Database,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
    mean_scale: float = 1.0,
) -> ImportanceStore:
    """PageRank on the undirected tuple graph induced by all FK edges."""
    numbering = NodeNumbering.for_database(db)
    n = numbering.total
    rows: list[int] = []
    cols: list[int] = []
    for owner_name, fk in db.foreign_keys():
        owner = db.table(owner_name)
        target = db.table(fk.ref_table)
        col_idx = owner.schema.column_index(fk.column)
        owner_offset = numbering.offsets[owner_name]
        target_offset = numbering.offsets[fk.ref_table]
        for row_id, row in owner.scan():
            ref = row[col_idx]
            if ref is None:
                continue
            u = owner_offset + row_id
            v = target_offset + target.row_id_for_pk(ref)
            rows.extend((v, u))
            cols.extend((u, v))
    if rows:
        ones = np.ones(len(rows))
        adjacency = sparse.csr_matrix(
            (ones, (np.asarray(rows), np.asarray(cols))), shape=(n, n)
        )
    else:
        adjacency = sparse.csr_matrix((n, n))
    out_degree = np.asarray(adjacency.sum(axis=0)).ravel()
    out_degree[out_degree == 0] = 1.0
    transition = adjacency @ sparse.diags(1.0 / out_degree)
    vector, _iterations = power_iterate(
        transition.tocsr(), damping=damping, tol=tol, max_iterations=max_iterations
    )
    store = ImportanceStore.from_vector(db, vector, numbering.offsets)
    return store.normalised_to_mean(mean_scale)
