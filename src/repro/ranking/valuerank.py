"""ValueRank (Fakas & Cai — ICDE DBRank 2009).

ValueRank extends ObjectRank by weighting authority transfer with tuple
*values*, which makes authority-flow ranking meaningful on databases without
citation-like structure — the paper uses it for TPC-H (Figure 13b: e.g.
orders receive 0.5·f(TotalPrice) of their customer's authority).

Implementation-wise the only difference from ObjectRank is the share
computation: where ObjectRank splits a relationship's rate evenly among
neighbours, ValueRank splits it proportionally to each receiving tuple's
value function.  The G_A carries those value functions
(:class:`~repro.ranking.authority.ValueFunction`); this wrapper simply keeps
them (where :func:`~repro.ranking.objectrank.compute_objectrank` drops them).
"""

from __future__ import annotations

from repro.db.database import Database
from repro.ranking.authority import AuthorityTransferGraph
from repro.ranking.power import NodeNumbering, build_transfer_matrix, power_iterate
from repro.ranking.store import ImportanceStore


def compute_valuerank(
    db: Database,
    ga: AuthorityTransferGraph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
    mean_scale: float = 1.0,
) -> ImportanceStore:
    """Compute ValueRank scores for every tuple in *db*.

    The value functions attached to *ga*'s relationships drive the
    value-proportional shares; a G_A without value functions degenerates to
    ObjectRank (that degenerate case is the paper's TPC-H G_A2 setting).
    """
    numbering = NodeNumbering.for_database(db)
    matrix, numbering = build_transfer_matrix(db, ga, numbering)
    vector, _iterations = power_iterate(
        matrix, damping=damping, tol=tol, max_iterations=max_iterations
    )
    store = ImportanceStore.from_vector(db, vector, numbering.offsets)
    return store.normalised_to_mean(mean_scale)
