"""The importance store: per-tuple global importance + G_DS annotations.

Wraps the raw power-iteration vector into per-table arrays, provides the
local-importance product of Equation 3, and annotates G_DS nodes with the
max(R_i)/mmax(R_i) statistics that drive the prelim-l avoidance conditions
(Section 5.3, Figure 2's annotations).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.db.database import Database
from repro.errors import RankingError
from repro.schema_graph.gds import GDS, GDSNode


class ImportanceStore:
    """Global importance Im(t_i) per tuple, stored as per-table arrays."""

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        self._arrays = {name: np.asarray(arr, dtype=float) for name, arr in arrays.items()}

    @classmethod
    def from_vector(
        cls, db: Database, vector: np.ndarray, offsets: Mapping[str, int]
    ) -> "ImportanceStore":
        arrays: dict[str, np.ndarray] = {}
        for name in db.table_names:
            start = offsets[name]
            size = len(db.table(name))
            arrays[name] = np.array(vector[start : start + size], dtype=float)
        return cls(arrays)

    @classmethod
    def uniform(cls, db: Database, value: float = 1.0) -> "ImportanceStore":
        """A constant-importance store (useful for tests and ablations)."""
        return cls({name: np.full(len(db.table(name)), value) for name in db.table_names})

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def importance(self, table: str, row_id: int) -> float:
        """Global importance Im(t_i) of one tuple."""
        try:
            return float(self._arrays[table][row_id])
        except KeyError:
            raise RankingError(f"no importance scores for table {table!r}") from None

    def array(self, table: str) -> np.ndarray:
        try:
            return self._arrays[table]
        except KeyError:
            raise RankingError(f"no importance scores for table {table!r}") from None

    def max_importance(self, table: str) -> float:
        """Max global importance within a relation (feeds max(R_i))."""
        arr = self.array(table)
        return float(arr.max()) if arr.size else 0.0

    def extend(self, table: str, new_size: int) -> None:
        """Grow a table's array to ``new_size`` rows, padding with the
        table's current mean importance.

        This is the live write path's policy for inserted tuples:
        importance is frozen between compactions, and the mean keeps every
        max(R_i)/mmax(R_i) G_DS annotation valid without re-running power
        iteration on each commit."""
        arr = self.array(table)
        if new_size <= arr.size:
            return
        fill = float(arr.mean()) if arr.size else 1.0
        self._arrays[table] = np.concatenate(
            [arr, np.full(new_size - arr.size, fill)]
        )

    def local_importance(self, node: GDSNode, row_id: int) -> float:
        """Equation 3: Im(OS, t_i) = Im(t_i) · Af(t_i)."""
        return self.importance(node.table, row_id) * node.affinity

    def local_importance_many(self, node: GDSNode, row_ids: np.ndarray) -> np.ndarray:
        """Vectorized Equation 3: one gather + scale for a batch of rows.

        This is the columnar generation hot path's replacement for N scalar
        :meth:`local_importance` calls; *row_ids* is any integer array-like.
        """
        try:
            arr = self._arrays[node.table]
        except KeyError:
            raise RankingError(
                f"no importance scores for table {node.table!r}"
            ) from None
        ids = np.asarray(row_ids)
        if ids.dtype.kind not in "iu":  # e.g. an empty or object list
            ids = ids.astype(np.int64)
        return arr[ids] * node.affinity

    def tables(self) -> list[str]:
        return list(self._arrays)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float) -> "ImportanceStore":
        """Return a copy with every score multiplied by *factor*.

        Authority-flow scores are tiny (they sum to ~1 over millions of
        tuples); scaling to a readable magnitude changes nothing about any
        algorithm (all comparisons are relative) but makes rendered OSs look
        like the paper's examples.
        """
        return ImportanceStore({name: arr * factor for name, arr in self._arrays.items()})

    def normalised_to_mean(self, target_mean: float = 1.0) -> "ImportanceStore":
        """Scale so the global mean importance equals *target_mean*."""
        total = sum(float(arr.sum()) for arr in self._arrays.values())
        count = sum(int(arr.size) for arr in self._arrays.values())
        if count == 0 or total == 0.0:
            return self
        return self.scaled(target_mean * count / total)


def annotate_gds(gds: GDS, store: ImportanceStore) -> None:
    """Annotate every G_DS node with max(R_i) and mmax(R_i) (Section 5.3).

    * ``max(R_i)`` — the maximum *local* importance any tuple of R_i can
      have under this node: max global importance in the relation times the
      node's affinity.
    * ``mmax(R_i)`` — the maximum of max(R_j) over R_i's *descendant* nodes,
      or 0 for leaves.

    Note: the paper's Figure 2 annotates Author's mmax as 7.381 while its
    descendant Paper has max 8.818; we follow the paper's textual definition
    ("the max_j{max(R_j)}; j ranges over all such [descendant] relations"),
    which is the definition required for Avoidance Condition 1 to be safe.
    """

    def visit(node: GDSNode) -> float:
        node.max_local = store.max_importance(node.table) * node.affinity
        descendant_max = 0.0
        for child in node.children:
            child_subtree_max = visit(child)
            descendant_max = max(descendant_max, child_subtree_max)
        node.mmax_local = descendant_max
        return max(node.max_local, descendant_max)

    visit(gds.root)
