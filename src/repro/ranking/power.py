"""Sparse power iteration for authority-flow rankings.

Builds the tuple-level transfer matrix from a G_A and iterates

    a ← d · M · a + (1 − d) · base

until the L1 change falls below tolerance (or max_iterations, matching how
ObjectRank implementations bound runs in practice).  ``base`` is the uniform
vector — this is *global* ObjectRank/ValueRank, the variant the paper uses
for Im(t_i); query-specific ObjectRank is out of scope (the paper does not
use it).

Matrix entry M[v, u] is Σ over relationship directions (u → v) of
``rate · share(u → v)``, where the share splits each direction's rate among
u's neighbours of that relationship type — evenly, or value-proportionally
for ValueRank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.db.database import Database
from repro.errors import ConvergenceError
from repro.ranking.authority import (
    AuthorityRelationship,
    AuthorityTransferGraph,
    receiver_weights,
    source_scalers,
)


@dataclass
class NodeNumbering:
    """Global numbering of tuples across tables: offset + row_id."""

    offsets: dict[str, int]
    sizes: dict[str, int]
    total: int

    @classmethod
    def for_database(cls, db: Database) -> "NodeNumbering":
        offsets: dict[str, int] = {}
        sizes: dict[str, int] = {}
        cursor = 0
        for name in db.table_names:
            offsets[name] = cursor
            size = len(db.table(name))
            sizes[name] = size
            cursor += size
        return cls(offsets=offsets, sizes=sizes, total=cursor)

    def global_id(self, table: str, row_id: int) -> int:
        return self.offsets[table] + row_id

    def slice_of(self, table: str) -> slice:
        start = self.offsets[table]
        return slice(start, start + self.sizes[table])


def _accumulate_direction(
    db: Database,
    relationship: AuthorityRelationship,
    pairs: list[tuple[int, int]],
    forward: bool,
    numbering: NodeNumbering,
    rows: list[int],
    cols: list[int],
    vals: list[float],
) -> None:
    """Append matrix entries for one direction of one relationship."""
    rate = relationship.rate_forward if forward else relationship.rate_backward
    if rate == 0.0 or not pairs:
        return
    if forward:
        src_table, dst_table = relationship.table_a, relationship.table_b
        value_fn = relationship.value_forward
        source_fn = relationship.source_value_forward
        directed = pairs
    else:
        src_table, dst_table = relationship.table_b, relationship.table_a
        value_fn = relationship.value_backward
        source_fn = relationship.source_value_backward
        directed = [(b, a) for a, b in pairs]

    weight_of = receiver_weights(db, value_fn)
    scale_of = source_scalers(db, source_fn)

    # Group receivers per source to compute shares.
    by_source: dict[int, list[int]] = {}
    for src, dst in directed:
        by_source.setdefault(src, []).append(dst)

    src_offset = numbering.offsets[src_table]
    dst_offset = numbering.offsets[dst_table]
    for src, receivers in by_source.items():
        effective_rate = rate * scale_of(src)
        if effective_rate <= 0.0:
            continue
        weights = [weight_of(dst) for dst in receivers]
        total = sum(weights)
        if total <= 0.0:
            # All-zero values (or plain even split over an empty total):
            # fall back to even split so the rate is not silently dropped.
            share = effective_rate / len(receivers)
            for dst in receivers:
                rows.append(dst_offset + dst)
                cols.append(src_offset + src)
                vals.append(share)
        else:
            for dst, weight in zip(receivers, weights):
                if weight <= 0.0:
                    continue
                rows.append(dst_offset + dst)
                cols.append(src_offset + src)
                vals.append(effective_rate * weight / total)


def build_transfer_matrix(
    db: Database, ga: AuthorityTransferGraph, numbering: NodeNumbering | None = None
) -> tuple[sparse.csr_matrix, NodeNumbering]:
    """Build the sparse tuple-level transfer matrix M (M[v, u] = rate·share)."""
    if numbering is None:
        numbering = NodeNumbering.for_database(db)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for relationship in ga.relationships:
        pairs = list(ga.tuple_pairs(db, relationship))
        _accumulate_direction(db, relationship, pairs, True, numbering, rows, cols, vals)
        _accumulate_direction(db, relationship, pairs, False, numbering, rows, cols, vals)
    matrix = sparse.csr_matrix(
        (np.asarray(vals), (np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64))),
        shape=(numbering.total, numbering.total),
    )
    return matrix, numbering


def power_iterate(
    matrix: sparse.csr_matrix,
    damping: float,
    tol: float = 1e-8,
    max_iterations: int = 200,
    strict: bool = False,
) -> tuple[np.ndarray, int]:
    """Run a ← d·M·a + (1−d)·base to fixpoint; returns (scores, iterations).

    ``strict=True`` raises :class:`~repro.errors.ConvergenceError` when the
    tolerance is not reached; by default the last iterate is returned
    (fixed-iteration behaviour, as in practical ObjectRank deployments).
    """
    n = matrix.shape[0]
    if n == 0:
        return np.zeros(0), 0
    base = np.full(n, 1.0 / n)
    scores = base.copy()
    residual = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        updated = damping * (matrix @ scores) + (1.0 - damping) * base
        residual = float(np.abs(updated - scores).sum())
        scores = updated
        if residual < tol:
            break
    if strict and residual >= tol:
        raise ConvergenceError(iterations, residual, tol)
    return scores, iterations
