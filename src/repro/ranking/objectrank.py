"""Global ObjectRank (Balmin, Hristidis, Papakonstantinou — VLDB 2004).

The paper uses *global* ObjectRank as Im(t_i) for the DBLP database: an
extension of PageRank where authority flows along schema relationships with
per-relationship transfer rates taken from a G_A (Figure 13a).  Well-cited
papers accumulate authority from the papers citing them; authors accumulate
from their papers; and so on.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.ranking.authority import AuthorityTransferGraph
from repro.ranking.power import NodeNumbering, build_transfer_matrix, power_iterate
from repro.ranking.store import ImportanceStore

#: The damping factors evaluated in Section 6: d1 (default), d2, d3.
DAMPING_D1 = 0.85
DAMPING_D2 = 0.10
DAMPING_D3 = 0.99


def compute_objectrank(
    db: Database,
    ga: AuthorityTransferGraph,
    damping: float = DAMPING_D1,
    tol: float = 1e-10,
    max_iterations: int = 200,
    mean_scale: float = 1.0,
) -> ImportanceStore:
    """Compute global ObjectRank scores for every tuple in *db*.

    Any value functions present in *ga* are ignored (dropped) — ObjectRank
    splits authority evenly among neighbours.  Scores are scaled to a mean of
    *mean_scale* for readability; scaling does not affect any algorithm.
    """
    plain_ga = ga.without_values()
    numbering = NodeNumbering.for_database(db)
    matrix, numbering = build_transfer_matrix(db, plain_ga, numbering)
    vector, _iterations = power_iterate(
        matrix, damping=damping, tol=tol, max_iterations=max_iterations
    )
    store = ImportanceStore.from_vector(db, vector, numbering.offsets)
    return store.normalised_to_mean(mean_scale)
