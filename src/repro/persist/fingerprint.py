"""Dataset / engine fingerprinting for snapshot validation.

A snapshot records derived structures (data graph, inverted index, FlatOS
trees, importance arrays) of one concrete (database, G_DS set, θ)
configuration.  Serving those structures to a *different* configuration
would silently return wrong trees, so every snapshot carries:

* :func:`engine_fingerprint` — a SHA-256 over the database schema, the
  table contents, the θ-pruned annotated G_DS structure of every R_DS
  root, and θ itself.  Computed identically at precompute time and attach
  time; any difference rejects the snapshot.
* :func:`store_digest` — a SHA-256 over the per-table importance arrays.
  Importance is *derived* state (the store may itself be loaded from the
  snapshot), so it is digested separately: an engine that brings its own
  store is checked against the digest, while an engine whose store came
  from the snapshot is consistent by construction.

Fingerprints are content hashes of deterministic Python reprs — no
pickling, no floating-point round-tripping through text files.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database
    from repro.ranking.store import ImportanceStore
    from repro.schema_graph.gds import GDS, GDSNode


def _feed(h: "hashlib._Hash", *parts: object) -> None:
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")  # unit separator: ("ab", "c") != ("a", "bc")


def _feed_schema(h: "hashlib._Hash", db: "Database") -> None:
    for name in sorted(db.table_names):
        table = db.table(name)
        schema = table.schema
        _feed(h, "table", name, schema.primary_key)
        for column in schema.columns:
            _feed(h, "column", column.name, column.type.name, column.nullable,
                  getattr(column, "text_searchable", False))
        for fk in schema.foreign_keys:
            _feed(h, "fk", fk.column, fk.ref_table, fk.ref_column)


def _feed_rows(h: "hashlib._Hash", db: "Database") -> None:
    for name in sorted(db.table_names):
        table = db.table(name)
        # Delegated to the table's cached content fingerprint: append-only
        # storage makes the row count a valid cache version, so repeated
        # attach-time validations against an unchanged database are O(1).
        _feed(h, "rows", name, len(table), table.content_fingerprint())


def _feed_gds_node(h: "hashlib._Hash", node: "GDSNode") -> None:
    parent_id = None if node.parent is None else node.parent.node_id
    _feed(
        h,
        "gds-node",
        node.node_id,
        node.label,
        node.table,
        parent_id,
        node.join,
        f"{node.affinity:.12g}",
        tuple(node.attributes),
    )


def engine_fingerprint(
    db: "Database", gds_by_root: Mapping[str, "GDS"], theta: float
) -> str:
    """The identity of one (database, pruned G_DS set, θ) configuration.

    *gds_by_root* must be the engine's **θ-pruned** G_DS trees (the ones
    node ids in snapshotted FlatOS arrays refer to).  The max/mmax
    annotations are deliberately excluded — they derive from the
    importance store, which :func:`store_digest` covers separately.
    """
    h = hashlib.sha256()
    _feed(h, "repro-snapshot-fingerprint", db.name, f"{theta:.12g}")
    _feed_schema(h, db)
    _feed_rows(h, db)
    for root in sorted(gds_by_root):
        _feed(h, "gds-root", root)
        for node in gds_by_root[root].nodes():
            _feed_gds_node(h, node)
    return h.hexdigest()


def store_digest(store: "ImportanceStore") -> str:
    """A content hash of the per-table global-importance arrays."""
    h = hashlib.sha256()
    for table in sorted(store.tables()):
        arr = store.array(table)
        _feed(h, "store", table, arr.shape)
        h.update(arr.tobytes())
    return h.hexdigest()
