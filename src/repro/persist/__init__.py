"""Persistence tier: offline OS precompute + mmap snapshot store.

The paper treats OS generation as preprocessing-friendly (Section 6.3:
the DS/OS derive mechanically from the R_DS and G_DS, and the expensive
part is I/O-bound tree generation); this package makes that preprocessing
a first-class production feature:

* :mod:`repro.persist.fingerprint` — content hashes tying a snapshot to
  one (database, G_DS, θ, importance store) configuration;
* :mod:`repro.persist.snapshot` — the versioned on-disk format
  (``manifest.json`` + numpy ``.npy`` arenas) with atomic writes and a
  zero-copy ``mmap`` reader;
* :mod:`repro.persist.precompute` — the offline pipeline behind
  ``repro precompute``.

Serving integration lives where serving lives: the
:class:`~repro.core.cache.SummaryCache` disk tier,
:meth:`EngineBuilder.with_snapshot <repro.core.builder.EngineBuilder.with_snapshot>`,
and ``Session(snapshot=...)``.
"""

from repro.persist.fingerprint import engine_fingerprint, store_digest
from repro.persist.precompute import (
    PrecomputeReport,
    precompute_snapshot,
    select_subjects,
)
from repro.persist.snapshot import FORMAT_VERSION, Snapshot, write_snapshot

__all__ = [
    "FORMAT_VERSION",
    "PrecomputeReport",
    "Snapshot",
    "engine_fingerprint",
    "precompute_snapshot",
    "select_subjects",
    "store_digest",
    "write_snapshot",
]
