"""The offline OS precompute pipeline (``repro precompute``).

Selects Data Subjects, generates their complete columnar OSs through the
engine's flat hot path, and writes a :mod:`repro.persist.snapshot`
directory.  ``workers`` is validated through the serving layer's
:class:`~repro.core.options.ParallelConfig` and executed as a bounded
thread-pool fan-out: at most ``workers`` generations in flight, results
kept in subject order.

Subject selection supports the three production shapes:

* **by table** — every row of one R_DS table (full precompute);
* **explicit ids** — an operator-provided list (targeted refresh);
* **top-K keyword frequency** — the subjects the most frequent index
  tokens resolve to, best first (warm the cache for the head of the
  query distribution without paying for the tail).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.core.options import ParallelConfig
from repro.errors import PersistError
from repro.persist.snapshot import (
    Snapshot,
    ensure_absent_or_overwrite,
    ensure_snapshotable_index,
    write_snapshot,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import SizeLEngine


@dataclass(frozen=True)
class PrecomputeReport:
    """What one precompute run produced (the CLI prints this)."""

    path: Path
    subjects: int
    tree_nodes: int
    size_bytes: int
    seconds: float


def select_subjects(
    engine: "SizeLEngine",
    *,
    table: str | None = None,
    row_ids: Sequence[int] | None = None,
    top_keywords: int | None = None,
) -> list[tuple[str, int]]:
    """Resolve one selector into an ``(rds_table, row_id)`` subject list.

    Exactly one selection shape must be given — ``table=`` (optionally
    scoped by ``row_ids=``) or ``top_keywords=``.  Subjects always belong
    to R_DS tables (tables with a registered G_DS) — only those have OSs
    to precompute.
    """
    if top_keywords is not None and (table is not None or row_ids is not None):
        raise PersistError(
            "top_keywords is mutually exclusive with table=/row_ids="
        )
    if row_ids is not None and table is None:
        raise PersistError("row_ids requires table= to scope them")
    if table is not None:
        engine.gds_for(table)  # raises for non-R_DS tables
        n_rows = len(engine.db.table(table))
        if row_ids is not None:
            bad = [row_id for row_id in row_ids if not 0 <= int(row_id) < n_rows]
            if bad:
                raise PersistError(
                    f"row ids out of range for table {table!r} "
                    f"(0..{n_rows - 1}): {bad}"
                )
            # Order-preserving dedupe: a repeated id must not generate and
            # pack the same tree twice (nor inflate the report).
            return [
                (table, row_id) for row_id in dict.fromkeys(int(r) for r in row_ids)
            ]
        return [(table, row_id) for row_id in range(n_rows)]
    if top_keywords is None:
        raise PersistError(
            "pick a subject selector: table= (optionally with row_ids=) "
            "or top_keywords="
        )
    if top_keywords < 1:
        raise PersistError(f"top_keywords must be >= 1, got {top_keywords}")
    index = engine.searcher.index
    if not hasattr(index, "token_frequencies"):
        raise PersistError(
            "top-K keyword selection needs the in-memory inverted index; "
            "this engine serves its index from a snapshot"
        )
    subjects: list[tuple[str, int]] = []
    seen: set[tuple[str, int]] = set()
    for token, _count in index.token_frequencies():
        for posting in sorted(
            index.lookup(token), key=lambda p: (p.table, p.row_id)
        ):
            subject = (posting.table, posting.row_id)
            if subject in seen:
                continue
            seen.add(subject)
            subjects.append(subject)
            if len(subjects) >= top_keywords:
                return subjects
    return subjects


def precompute_snapshot(
    engine: "SizeLEngine",
    subjects: Sequence[tuple[str, int]],
    out_path: str | Path,
    *,
    workers: int = 1,
    overwrite: bool = False,
) -> PrecomputeReport:
    """Generate complete FlatOS trees for *subjects* and snapshot them.

    The trees are always *complete* OSs, so the snapshot serves every
    summary size (its manifest records ``l_values: null``; the manifest
    field exists for a future depth-limited precompute, and the cache
    disk tier refuses to serve snapshots that restrict it).

    ``workers`` is validated and executed through the serving layer's
    :class:`ParallelConfig` and a bounded thread pool.  The write is
    atomic (temp dir + rename); an existing snapshot is only replaced
    with ``overwrite=True``.

    Peak memory is ~2x the final arena size (all generated trees plus
    the packed copy); a streaming per-tree writer would cap it at 1x and
    is the natural extension if table-scale precomputes outgrow RAM.
    """
    subjects = [(table, int(row_id)) for table, row_id in subjects]
    if not subjects:
        raise PersistError("no subjects selected; nothing to precompute")
    # Both guards re-run inside write_snapshot; checked up front so a
    # forgotten --overwrite or an unsnapshottable engine fails before the
    # generation run, not after paying for every tree.
    ensure_absent_or_overwrite(Path(out_path), overwrite)
    ensure_snapshotable_index(engine.searcher.index)
    config = ParallelConfig(workers=workers).normalized()
    start = perf_counter()
    if config.workers == 1 or len(subjects) == 1:
        trees = [
            engine.complete_os_flat(table, row_id) for table, row_id in subjects
        ]
    else:
        # Bounded fan-out straight at the engine's generator — no cache
        # (precompute must not hold every tree twice), at most
        # ``config.workers`` generations running at once.
        with ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="repro-precompute"
        ) as pool:
            trees = list(
                pool.map(lambda subject: engine.complete_os_flat(*subject), subjects)
            )
    path = write_snapshot(out_path, engine, list(subjects), trees, overwrite=overwrite)
    snapshot = Snapshot.open(path, verify=False)
    return PrecomputeReport(
        path=path,
        subjects=len(subjects),
        tree_nodes=int(snapshot.manifest["tree_nodes"]),
        size_bytes=snapshot.size_bytes(),
        seconds=perf_counter() - start,
    )
