"""The versioned on-disk snapshot format and its mmap-backed reader.

A snapshot is a **directory**::

    <snapshot>/
      manifest.json           # format version, fingerprint, checksums, layout
      trees_indptr.npy        # int64, one entry per subject + 1
      trees_parent.npy        # FlatOS arena columns (see FlatOS.pack_arena)
      trees_depth.npy
      trees_gds_node_id.npy
      trees_row_id.npy
      trees_weight.npy
      dg000_forward.npy       # CSR data graph, three arrays per FK adjacency
      dg000_backward_indptr.npy
      dg000_backward_indices.npy
      ...
      idx_tokens.npy          # inverted index: sorted tokens + CSR postings
      idx_indptr.npy
      idx_table_ids.npy
      idx_row_ids.npy
      store_<table>.npy       # per-table global-importance arrays

``manifest.json`` carries the format version, the engine fingerprint and
store digest (see :mod:`repro.persist.fingerprint`), the l-values the
trees were generated for (``null`` = complete OSs, valid for every l),
the subject list aligned with ``trees_indptr``, and a SHA-256 checksum
per file.  :func:`write_snapshot` writes everything into a temporary
sibling directory and renames it into place, so readers never observe a
half-written snapshot.

:class:`Snapshot` opens the arenas with ``np.load(..., mmap_mode="r")``:
attach cost is checksum verification plus page-table setup, and a
:class:`~repro.core.os_tree.FlatOS` served from the snapshot is a set of
zero-copy slices into the mapped arena.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.os_tree import FlatOS
from repro.datagraph.graph import DataGraph, FkAdjacency
from repro.errors import SnapshotFormatError, SnapshotMismatchError
from repro.persist.fingerprint import engine_fingerprint, store_digest
from repro.ranking.store import ImportanceStore
from repro.reliability import inject
from repro.search.inverted_index import ArrayInvertedIndex

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import SizeLEngine
    from repro.db.database import Database
    from repro.schema_graph.gds import GDS

#: Bump on any incompatible layout change; readers reject other versions.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

_TREE_FILES = {name: f"trees_{name}.npy" for name in ("indptr",) + FlatOS.ARENA_FIELDS}


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _save(directory: Path, name: str, array: np.ndarray) -> None:
    np.save(directory / name, np.ascontiguousarray(array), allow_pickle=False)


def _manifest_checksum(manifest: dict) -> str:
    """SHA-256 of the manifest's canonical JSON, self-checksum excluded."""
    body = {k: v for k, v in manifest.items() if k != "manifest_checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def ensure_absent_or_overwrite(path: Path, overwrite: bool) -> None:
    """Reject writing over an existing snapshot unless *overwrite* is set.

    Shared by :func:`write_snapshot` and the precompute pipeline's
    fail-fast pre-check, so the two sites cannot drift.
    """
    if path.exists() and not overwrite:
        raise SnapshotFormatError(
            f"snapshot path already exists: {path} "
            f"(pass overwrite=True / --overwrite to replace)"
        )


def ensure_snapshotable_index(index: object) -> None:
    """Reject engines whose search index cannot be packed into arrays."""
    if not hasattr(index, "to_arrays"):
        raise SnapshotFormatError(
            "engine's search index cannot be snapshotted (no to_arrays); "
            "was this engine itself built from a snapshot? Precompute "
            "from a freshly built engine instead"
        )


def write_snapshot(
    path: str | Path,
    engine: "SizeLEngine",
    subjects: list[tuple[str, int]],
    trees: list[FlatOS],
    *,
    l_values: list[int] | None = None,
    overwrite: bool = False,
) -> Path:
    """Write a snapshot of *engine*'s derived structures to *path*.

    *subjects* and *trees* are parallel: ``trees[i]`` is the complete
    columnar OS of ``subjects[i]`` (an ``(rds_table, row_id)`` pair).
    *l_values* records which summary sizes the trees were generated to
    serve — ``None`` means complete OSs, valid for every ``l`` (the
    normal case; a future depth-limited precompute would restrict it).

    The write is atomic: everything lands in a ``<path>.tmp-<pid>``
    sibling first, which is renamed into place only after the manifest
    (the last file written) is complete.  With ``overwrite=True`` an
    existing snapshot at *path* is replaced.
    """
    path = Path(path)
    if len(subjects) != len(trees):
        raise ValueError("subjects and trees must be parallel lists")
    ensure_absent_or_overwrite(path, overwrite)
    tmp = path.parent / f"{path.name}.tmp-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        # FlatOS arena
        arena = FlatOS.pack_arena(trees)
        for name, filename in _TREE_FILES.items():
            _save(tmp, filename, arena[name])

        # CSR data graph
        datagraph_entries = []
        for i, adj in enumerate(engine.data_graph.adjacencies()):
            files = {
                "forward": f"dg{i:03d}_forward.npy",
                "backward_indptr": f"dg{i:03d}_backward_indptr.npy",
                "backward_indices": f"dg{i:03d}_backward_indices.npy",
            }
            for field, filename in files.items():
                _save(tmp, filename, getattr(adj, field))
            datagraph_entries.append(
                {"owner": adj.owner, "column": adj.column, "target": adj.target,
                 "files": files}
            )

        # Inverted index postings
        index = engine.searcher.index
        ensure_snapshotable_index(index)
        tokens, idx_indptr, table_ids, row_ids, index_tables = index.to_arrays()
        _save(tmp, "idx_tokens.npy", tokens)
        _save(tmp, "idx_indptr.npy", idx_indptr)
        _save(tmp, "idx_table_ids.npy", table_ids)
        _save(tmp, "idx_row_ids.npy", row_ids)

        # Importance arrays
        store_tables = sorted(engine.store.tables())
        for table in store_tables:
            _save(tmp, f"store_{table}.npy", engine.store.array(table))

        checksums = {
            f.name: _sha256_file(f) for f in sorted(tmp.iterdir())
        }
        manifest: dict = {
            "format_version": FORMAT_VERSION,
            "database": engine.db.name,
            "theta": engine.theta,
            "fingerprint": engine_fingerprint(
                engine.db, engine.gds_by_root, engine.theta
            ),
            "store_digest": store_digest(engine.store),
            "l_values": l_values,
            "subjects": [[table, int(row_id)] for table, row_id in subjects],
            "tree_nodes": int(arena["indptr"][-1]),
            "datagraph": datagraph_entries,
            "index": {
                "tables": index_tables,
                "files": {
                    "tokens": "idx_tokens.npy",
                    "indptr": "idx_indptr.npy",
                    "table_ids": "idx_table_ids.npy",
                    "row_ids": "idx_row_ids.npy",
                },
            },
            "store_tables": store_tables,
            "checksums": checksums,
        }
        # The manifest protects the arenas, so it must protect itself too:
        # a flipped row id in "subjects" would silently serve the wrong
        # subject's tree.  The self-checksum covers the canonical dump of
        # every other field and is verified at open.
        manifest["manifest_checksum"] = _manifest_checksum(manifest)
        (tmp / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )

        if path.exists():  # overwrite=True: swap the old directory out
            # Directories cannot be exchanged atomically on portable
            # POSIX, so the swap leaves *path* absent for the instant
            # between the two renames.  The old snapshot is parked first
            # and restored if the swap-in fails, so a crash can strand a
            # '<path>.old-*' copy but never lose the only good snapshot.
            graveyard = path.parent / f"{path.name}.old-{os.getpid()}"
            if graveyard.exists():
                shutil.rmtree(graveyard)
            os.replace(path, graveyard)
            try:
                os.replace(tmp, path)
            except BaseException:
                os.replace(graveyard, path)  # put the old snapshot back
                raise
            shutil.rmtree(graveyard)
        else:
            os.replace(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


class Snapshot:
    """An opened snapshot directory: validated manifest + mmap'd arenas.

    Use :meth:`open`; the constructor assumes a parsed manifest.  All
    arrays are loaded with ``mmap_mode="r"`` — nothing is copied into
    memory until a consumer touches the pages, and
    :meth:`load_flat` hands out zero-copy :class:`FlatOS` slices.
    """

    def __init__(self, path: Path, manifest: dict) -> None:
        self.path = path
        self.manifest = manifest
        self.fingerprint: str = manifest["fingerprint"]
        self.l_values: list[int] | None = manifest["l_values"]
        #: subject -> arena tree index
        self.subjects: dict[tuple[str, int], int] = {
            (table, int(row_id)): i
            for i, (table, row_id) in enumerate(manifest["subjects"])
        }
        self._arena = {
            name: self._mmap(filename) for name, filename in _TREE_FILES.items()
        }
        self._data_graph: DataGraph | None = None
        self._index_arrays: tuple | None = None
        self._store: ImportanceStore | None = None

    # ------------------------------------------------------------------ #
    # Opening / validation
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, path: str | Path, *, verify: bool = True) -> "Snapshot":
        """Open and (by default) checksum-verify a snapshot directory.

        ``verify=True`` reads every file once to check its SHA-256 against
        the manifest — a corrupted or truncated arena fails *here*, with a
        clear error, instead of serving garbage trees later.  Skipping
        verification makes attach O(1) for snapshots on trusted storage.
        """
        inject("snapshot.open", SnapshotFormatError)
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise SnapshotFormatError(
                f"not a snapshot directory (no {MANIFEST_NAME}): {path}"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SnapshotFormatError(
                f"corrupt snapshot manifest {manifest_path}: {exc}"
            ) from None
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise SnapshotFormatError(
                f"unsupported snapshot format version {version!r} in {path} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        required = {"fingerprint", "store_digest", "subjects", "l_values",
                    "datagraph", "index", "store_tables", "checksums",
                    "manifest_checksum"}
        missing = required - set(manifest)
        if missing:
            raise SnapshotFormatError(
                f"snapshot manifest {manifest_path} is missing fields: "
                f"{sorted(missing)}"
            )
        if manifest["manifest_checksum"] != _manifest_checksum(manifest):
            raise SnapshotFormatError(
                f"snapshot manifest {manifest_path} failed its self-checksum "
                f"(corrupted or hand-edited manifest); re-run precompute"
            )
        if verify:
            # The checksums map covers every arena file (the manifest is
            # written after it is computed and protects itself via
            # manifest_checksum above).
            for filename, expected in manifest["checksums"].items():
                inject("snapshot.checksum", SnapshotFormatError)
                file_path = path / filename
                if not file_path.is_file():
                    raise SnapshotFormatError(
                        f"snapshot {path} is missing arena file {filename!r}"
                    )
                actual = _sha256_file(file_path)
                if actual != expected:
                    raise SnapshotFormatError(
                        f"snapshot checksum mismatch for {filename!r} in {path}: "
                        f"expected {expected[:12]}..., got {actual[:12]}... "
                        f"(corrupted or partially written snapshot)"
                    )
        return cls(path, manifest)

    def reopen(self, *, verify: bool = True) -> "Snapshot":
        """A fresh :class:`Snapshot` re-read from this snapshot's directory.

        The hot-reload primitive (see
        :meth:`repro.service.Deployment.reload`): after an offline
        ``repro precompute --overwrite`` replaced the directory, reopening
        picks up the new manifest and arenas while this object keeps
        serving the old mmaps until the swap completes.
        """
        return type(self).open(self.path, verify=verify)

    def validate_dataset(
        self, db: "Database", pruned_gds_by_root: dict[str, "GDS"], theta: float
    ) -> None:
        """Reject a (database, pruned G_DS set, θ) this snapshot is not for.

        The engine-free half of :meth:`validate_engine`: the builder runs
        it *before* constructing an engine from the snapshot's store/data
        graph/index, so a cross-dataset snapshot fails with this clear
        error instead of whatever the foreign structures break first.
        """
        actual = engine_fingerprint(db, pruned_gds_by_root, theta)
        if actual != self.fingerprint:
            raise SnapshotMismatchError(
                f"snapshot {self.path} does not match this engine: dataset/"
                f"G_DS fingerprint {actual[:12]}... != snapshot "
                f"{self.fingerprint[:12]}... (different data, schema, G_DS "
                f"structure, or theta); re-run precompute for this engine"
            )

    def validate_engine(self, engine: "SizeLEngine") -> None:
        """Reject attachment to an engine this snapshot does not belong to.

        Recomputes the engine's fingerprint (schema + contents + pruned
        G_DS + θ) and compares it with the manifest's; an engine carrying
        its own importance store is additionally checked against the store
        digest (a store loaded *from* this snapshot is consistent by
        construction).  Raises :class:`SnapshotMismatchError` naming what
        differed.

        Deliberately *not* memoised per engine: the database may legally
        grow between attachments (``Table.insert``), and a re-attach must
        notice.  Re-validation is cheap anyway — the row-content hashes
        are cached on the append-only tables, so an unchanged database
        revalidates in O(schema + G_DS) time.
        """
        self.validate_dataset(engine.db, engine.gds_by_root, engine.theta)
        if self._store is None or engine.store is not self._store:
            actual_store = store_digest(engine.store)
            if actual_store != self.manifest["store_digest"]:
                raise SnapshotMismatchError(
                    f"snapshot {self.path} was precomputed under a different "
                    f"importance store (digest {actual_store[:12]}... != "
                    f"snapshot {self.manifest['store_digest'][:12]}...); its "
                    f"tree weights would be stale — re-run precompute or "
                    f"load the store from the snapshot"
                )

    # ------------------------------------------------------------------ #
    # Arena access
    # ------------------------------------------------------------------ #
    def _mmap(self, filename: str) -> np.ndarray:
        file_path = self.path / filename
        if not file_path.is_file():
            raise SnapshotFormatError(
                f"snapshot {self.path} is missing arena file {filename!r}"
            )
        try:
            return np.load(file_path, mmap_mode="r", allow_pickle=False)
        except (ValueError, EOFError, OSError) as exc:
            # EOFError: zero-byte/truncated .npy (reachable with
            # verify=False); OSError: unreadable file.  All must surface
            # as the typed format error the CLI maps to exit 2.
            raise SnapshotFormatError(
                f"unreadable snapshot arena {file_path}: {exc}"
            ) from None

    def __contains__(self, subject: tuple[str, int]) -> bool:
        return subject in self.subjects

    def __len__(self) -> int:
        return len(self.subjects)

    def load_flat(
        self,
        rds_table: str,
        row_id: int,
        gds: "GDS",
        db: "Database | None" = None,
    ) -> FlatOS | None:
        """The precomputed complete OS of a subject, or ``None`` if absent.

        Zero-copy: the returned :class:`FlatOS` columns are read-only
        slices of the memory-mapped arena.  *gds* must be the attaching
        engine's pruned G_DS for *rds_table* — guaranteed compatible by
        :meth:`validate_engine`.
        """
        index = self.subjects.get((rds_table, int(row_id)))
        if index is None:
            return None
        return FlatOS.from_arena(self._arena, index, gds, db=db, kind="complete")

    def data_graph(self) -> DataGraph:
        """The snapshotted CSR data graph (memory-mapped, built once)."""
        if self._data_graph is None:
            adjacencies: dict[tuple[str, str], FkAdjacency] = {}
            for entry in self.manifest["datagraph"]:
                adjacencies[(entry["owner"], entry["column"])] = FkAdjacency(
                    owner=entry["owner"],
                    column=entry["column"],
                    target=entry["target"],
                    forward=self._mmap(entry["files"]["forward"]),
                    backward_indptr=self._mmap(entry["files"]["backward_indptr"]),
                    backward_indices=self._mmap(entry["files"]["backward_indices"]),
                )
            self._data_graph = DataGraph(adjacencies)
        return self._data_graph

    def search_index(self, db: "Database") -> ArrayInvertedIndex:
        """The snapshotted inverted index as a zero-build array index."""
        if self._index_arrays is None:
            files = self.manifest["index"]["files"]
            self._index_arrays = (
                self._mmap(files["tokens"]),
                self._mmap(files["indptr"]),
                self._mmap(files["table_ids"]),
                self._mmap(files["row_ids"]),
            )
        tokens, indptr, table_ids, row_ids = self._index_arrays
        return ArrayInvertedIndex(
            db, tokens, indptr, table_ids, row_ids,
            list(self.manifest["index"]["tables"]),
        )

    def store(self) -> ImportanceStore:
        """The snapshotted importance store (memory-mapped arrays).

        The returned object is cached: :meth:`validate_engine` recognises
        an engine holding *this* store and skips the digest comparison.
        """
        if self._store is None:
            self._store = ImportanceStore(
                {table: self._mmap(f"store_{table}.npy")
                 for table in self.manifest["store_tables"]}
            )
        return self._store

    def size_bytes(self) -> int:
        """Total on-disk footprint of the snapshot's files."""
        return sum(f.stat().st_size for f in self.path.iterdir() if f.is_file())

    def __repr__(self) -> str:
        return (
            f"Snapshot({str(self.path)!r}, subjects={len(self.subjects)}, "
            f"nodes={self.manifest.get('tree_nodes', '?')})"
        )
