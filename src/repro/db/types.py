"""Column types and value validation for the relational engine."""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError


class ColumnType(enum.Enum):
    """Supported column types.

    The engine keeps the type system minimal: the paper's workloads (DBLP,
    TPC-H) only need integers, floats, text, and booleans.
    """

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    def validate(self, value: Any, *, nullable: bool) -> Any:
        """Validate and canonicalise *value* for this type.

        Integers are accepted for FLOAT columns (widened to float); bools are
        *not* accepted for INT columns (a classic Python foot-gun).  ``None``
        is allowed only for nullable columns.  Raises
        :class:`~repro.errors.TypeMismatchError` on mismatch.
        """
        if value is None:
            if nullable:
                return None
            raise TypeMismatchError("NULL value for non-nullable column")
        if self is ColumnType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(f"expected int, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool):
                raise TypeMismatchError(f"expected float, got {value!r}")
            if isinstance(value, (int, float)):
                return float(value)
            raise TypeMismatchError(f"expected float, got {value!r}")
        if self is ColumnType.TEXT:
            if not isinstance(value, str):
                raise TypeMismatchError(f"expected str, got {value!r}")
            return value
        if self is ColumnType.BOOL:
            if not isinstance(value, bool):
                raise TypeMismatchError(f"expected bool, got {value!r}")
            return value
        raise TypeMismatchError(f"unhandled column type {self!r}")  # pragma: no cover

    def parse_text(self, text: str) -> Any:
        """Parse a CSV cell into a value of this type (empty string = NULL)."""
        if text == "":
            return None
        if self is ColumnType.INT:
            return int(text)
        if self is ColumnType.FLOAT:
            return float(text)
        if self is ColumnType.BOOL:
            lowered = text.strip().lower()
            if lowered in ("true", "1", "t", "yes"):
                return True
            if lowered in ("false", "0", "f", "no"):
                return False
            raise TypeMismatchError(f"cannot parse bool from {text!r}")
        return text
