"""The minimal query layer used by the OS algorithms.

Algorithm 4 (prelim-l OS generation) issues exactly two SQL statement
templates against the database:

* line 12: ``SELECT * FROM Ri WHERE tj.ID = Ri.ID`` — a full equi-join
  lookup of the children of a parent tuple;
* line 10: ``SELECT * TOP l FROM Ri WHERE tj.ID = Ri.ID AND Ri.li > largest_l``
  — the same lookup capped to the l highest-local-importance children above
  a threshold (Avoidance Condition 2).

:class:`QueryInterface` implements both over hash indexes and counts each
statement execution as one *I/O access*, matching the paper's cost
accounting ("Avoidance Condition 2 still requires an I/O access even when
it returns no results", Section 5.3).
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Callable, Sequence

from repro.db.database import Database
from repro.errors import BackendIOError
from repro.reliability import check_deadline, inject


class QueryInterface:
    """Executes the two statement templates of Algorithm 4 with I/O counting.

    ``score_of(table_name, row_id) -> float`` supplies the per-tuple ordering
    key for the TOP-l variant; in the paper this is the tuple's local
    importance ``Ri.li`` (global importance times the G_DS node affinity).
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self.io_accesses = 0
        self.rows_fetched = 0
        # The engine shares one QueryInterface across a Session's worker
        # threads; += on a plain int loses updates under concurrency, so
        # counter mutation goes through this lock (the paper's efficiency
        # experiments read these numbers — they must stay exact).
        self._counter_lock = threading.Lock()

    def reset_counters(self) -> None:
        with self._counter_lock:
            self.io_accesses = 0
            self.rows_fetched = 0

    def count_io(self, rows_fetched: int = 0) -> None:
        """Record one statement execution (thread-safe).

        This is the backend-IO checkpoint: the paper's cost model bills
        per statement, so "per statement" is also where an injected IO
        fault surfaces (:class:`~repro.errors.BackendIOError`, 503) and
        where an expired request deadline cancels the generation (504).
        """
        inject("db.io", BackendIOError)
        check_deadline()
        with self._counter_lock:
            self.io_accesses += 1
            self.rows_fetched += rows_fetched

    # ------------------------------------------------------------------ #
    # Statement templates
    # ------------------------------------------------------------------ #
    def select_where_eq(self, table_name: str, column: str, value: Any) -> list[int]:
        """``SELECT * FROM table WHERE column = value`` → row ids.

        Counts one I/O access regardless of result size.
        """
        index = self.db.index_on(table_name, column)
        row_ids = index.lookup(value)
        self.count_io(rows_fetched=len(row_ids))
        return list(row_ids)

    def select_top_where_eq(
        self,
        table_name: str,
        column: str,
        value: Any,
        score_of: Callable[[str, int], float],
        threshold: float,
        limit: int,
    ) -> list[int]:
        """``SELECT * TOP limit FROM table WHERE column = value AND li > threshold``.

        Returns at most *limit* row ids with score strictly above *threshold*,
        ordered by descending score (ties broken by row id for determinism).
        Counts one I/O access even when nothing qualifies — exactly the cost
        behaviour the paper attributes to Avoidance Condition 2.
        """
        index = self.db.index_on(table_name, column)
        candidates = index.lookup(value)
        self.count_io(rows_fetched=len(candidates))
        qualifying = [
            (score_of(table_name, row_id), -row_id, row_id)
            for row_id in candidates
            if score_of(table_name, row_id) > threshold
        ]
        if len(qualifying) > limit:
            top = heapq.nlargest(limit, qualifying)
        else:
            top = sorted(qualifying, reverse=True)
        return [row_id for _score, _neg, row_id in top]

    def lookup_by_pk(self, table_name: str, pk_value: Any) -> list[int]:
        """``SELECT * FROM table WHERE pk = value`` (0 or 1 row ids)."""
        table = self.db.table(table_name)
        if table.has_pk(pk_value):
            self.count_io(rows_fetched=1)
            return [table.row_id_for_pk(pk_value)]
        self.count_io()
        return []

    # ------------------------------------------------------------------ #
    # Convenience (not I/O counted: client-side projections)
    # ------------------------------------------------------------------ #
    def project(
        self, table_name: str, row_ids: Sequence[int], columns: Sequence[str]
    ) -> list[tuple[Any, ...]]:
        """Project *columns* from the given rows (client-side, no I/O cost)."""
        table = self.db.table(table_name)
        idxs = [table.schema.column_index(c) for c in columns]
        return [tuple(table.row(rid)[i] for i in idxs) for rid in row_ids]
