"""Schema objects: columns, foreign keys, and table schemas."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.types import ColumnType
from repro.errors import SchemaError, UnknownColumnError


@dataclass(frozen=True)
class Column:
    """A typed column.

    ``text_searchable`` marks columns that feed the keyword inverted index
    (e.g. author names, paper titles); ``display`` marks columns rendered in
    OS output (the attribute-selection θ′ of Section 2.1 operates on these).
    """

    name: str
    type: ColumnType
    nullable: bool = False
    text_searchable: bool = False
    display: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key: ``column`` of the owning table references
    ``ref_table.ref_column`` (which must be that table's primary key)."""

    column: str
    ref_table: str
    ref_column: str


class TableSchema:
    """Schema of a single table: ordered columns, a primary key, and FKs."""

    def __init__(
        self,
        name: str,
        columns: list[Column],
        primary_key: str,
        foreign_keys: list[ForeignKey] | None = None,
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name: {name!r}")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns = list(columns)
        self._index_of = {c.name: i for i, c in enumerate(columns)}
        if primary_key not in self._index_of:
            raise UnknownColumnError(name, primary_key)
        if columns[self._index_of[primary_key]].nullable:
            raise SchemaError(f"primary key {primary_key!r} of {name!r} is nullable")
        self.primary_key = primary_key
        self.foreign_keys = list(foreign_keys or [])
        for fk in self.foreign_keys:
            if fk.column not in self._index_of:
                raise UnknownColumnError(name, fk.column)

    def column_index(self, column: str) -> int:
        """Return the positional index of *column*; raises on unknown names."""
        try:
            return self._index_of[column]
        except KeyError:
            raise UnknownColumnError(self.name, column) from None

    def has_column(self, column: str) -> bool:
        return column in self._index_of

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    @property
    def pk_index(self) -> int:
        return self._index_of[self.primary_key]

    def display_columns(self) -> list[Column]:
        """Columns rendered in OS output (non-key, display-flagged)."""
        fk_cols = {fk.column for fk in self.foreign_keys}
        return [
            c
            for c in self.columns
            if c.display and c.name != self.primary_key and c.name not in fk_cols
        ]

    def searchable_columns(self) -> list[Column]:
        """Columns indexed for keyword search."""
        return [c for c in self.columns if c.text_searchable]

    def __repr__(self) -> str:
        cols = ", ".join(c.name for c in self.columns)
        return f"TableSchema({self.name!r}, [{cols}], pk={self.primary_key!r})"
