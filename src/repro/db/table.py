"""Row storage for a single table.

Rows are stored as immutable tuples in insertion order; the row id is the
position in that list.  A primary-key hash index is maintained automatically;
secondary indexes register themselves via :meth:`Table.attach_index` and are
kept current on insert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

from repro.db.schema import TableSchema
from repro.errors import IntegrityError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.index import HashIndex


class Table:
    """A table: schema + rows + primary-key index."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        #: slot list; a deleted row leaves ``None`` behind so every live
        #: row id stays a stable array offset for the columnar tiers
        self._rows: list[tuple[Any, ...] | None] = []
        self._pk_to_row: dict[Any, int] = {}
        self._indexes: list["HashIndex"] = []
        self._deleted = 0
        #: monotone per-table mutation counter (insert/update/delete)
        self._mutations = 0
        #: content-fingerprint cache: (mutation count it was computed at, digest)
        self._content_fp: tuple[int, str] | None = None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def insert(self, values: Mapping[str, Any] | Sequence[Any]) -> int:
        """Insert one row (mapping by column name, or positional sequence).

        Returns the new row id.  Validates types and primary-key uniqueness;
        foreign keys are validated at the :class:`~repro.db.database.Database`
        level (so bulk loads may insert parents and children in any order and
        call ``validate_integrity`` once).
        """
        schema = self.schema
        if isinstance(values, Mapping):
            row_list = []
            unknown = set(values) - {c.name for c in schema.columns}
            if unknown:
                raise IntegrityError(
                    f"unknown columns for table {schema.name!r}: {sorted(unknown)}"
                )
            for col in schema.columns:
                row_list.append(values.get(col.name))
        else:
            if len(values) != len(schema.columns):
                raise IntegrityError(
                    f"table {schema.name!r} expects {len(schema.columns)} values, "
                    f"got {len(values)}"
                )
            row_list = list(values)

        for idx, col in enumerate(schema.columns):
            row_list[idx] = col.type.validate(row_list[idx], nullable=col.nullable)

        pk_value = row_list[schema.pk_index]
        if pk_value in self._pk_to_row:
            raise IntegrityError(
                f"duplicate primary key {pk_value!r} in table {schema.name!r}"
            )

        row = tuple(row_list)
        row_id = len(self._rows)
        self._rows.append(row)
        self._pk_to_row[pk_value] = row_id
        for index in self._indexes:
            index.add_row(row_id, row)
        self._mutations += 1
        return row_id

    def update_row(
        self, row_id: int, changes: Mapping[str, Any]
    ) -> tuple[tuple[Any, ...], tuple[Any, ...]]:
        """Update columns of one live row; returns ``(old_row, new_row)``.

        Primary-key changes are rejected: row ids and PK→row mappings are
        load-bearing for every derived structure (CSR offsets, importance
        arrays, snapshot arenas), so identity is immutable — delete and
        re-insert to rename a subject.  FK validity is the
        :class:`~repro.db.database.Database` transaction's job.
        """
        old_row = self._rows[row_id] if 0 <= row_id < len(self._rows) else None
        if old_row is None:
            raise IntegrityError(
                f"cannot update row {row_id} of table {self.schema.name!r}: "
                "no such live row"
            )
        schema = self.schema
        unknown = set(changes) - {c.name for c in schema.columns}
        if unknown:
            raise IntegrityError(
                f"unknown columns for table {schema.name!r}: {sorted(unknown)}"
            )
        row_list = list(old_row)
        for name, value in changes.items():
            idx = schema.column_index(name)
            col = schema.columns[idx]
            row_list[idx] = col.type.validate(value, nullable=col.nullable)
        if row_list[schema.pk_index] != old_row[schema.pk_index]:
            raise IntegrityError(
                f"primary-key updates are not supported (table "
                f"{schema.name!r}, row {row_id}): delete and re-insert"
            )
        new_row = tuple(row_list)
        self._apply_replace(row_id, old_row, new_row)
        return old_row, new_row

    def delete_row(self, row_id: int) -> tuple[Any, ...]:
        """Tombstone one live row; returns the old row tuple.

        The slot stays allocated (``len`` is unchanged) so existing row ids
        remain valid array offsets; referential integrity (no live row may
        still point at the tombstone) is checked at the transaction level.
        """
        old_row = self._rows[row_id] if 0 <= row_id < len(self._rows) else None
        if old_row is None:
            raise IntegrityError(
                f"cannot delete row {row_id} of table {self.schema.name!r}: "
                "no such live row"
            )
        self._rows[row_id] = None
        del self._pk_to_row[old_row[self.schema.pk_index]]
        for index in self._indexes:
            index.remove_row(row_id, old_row)
        self._deleted += 1
        self._mutations += 1
        return old_row

    # -- transaction rollback hooks (Database undo log only) ----------- #
    def _apply_replace(
        self, row_id: int, old_row: tuple[Any, ...], new_row: tuple[Any, ...]
    ) -> None:
        """Swap a live row's tuple in place, keeping indexes current."""
        self._rows[row_id] = new_row
        for index in self._indexes:
            index.remove_row(row_id, old_row)
            index.add_row(row_id, new_row)
        self._mutations += 1

    def _undo_insert(self, row_id: int) -> None:
        """Pop a just-inserted row (must still be the last slot)."""
        if row_id != len(self._rows) - 1:
            raise IntegrityError(
                f"cannot undo insert of row {row_id} in table "
                f"{self.schema.name!r}: not the last slot"
            )
        row = self._rows.pop()
        if row is not None:
            del self._pk_to_row[row[self.schema.pk_index]]
            for index in self._indexes:
                index.remove_row(row_id, row)
        self._mutations += 1

    def _undo_delete(self, row_id: int, old_row: tuple[Any, ...]) -> None:
        """Re-materialize a tombstoned row (transaction rollback)."""
        self._rows[row_id] = old_row
        self._pk_to_row[old_row[self.schema.pk_index]] = row_id
        for index in self._indexes:
            index.add_row(row_id, old_row)
        self._deleted -= 1
        self._mutations += 1

    def attach_index(self, index: "HashIndex") -> None:
        """Register a secondary index to be maintained on future inserts."""
        self._indexes.append(index)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Slot count (live rows + tombstones).

        Deliberately *not* the live-row count: ``len(table)`` sizes every
        columnar array (CSR forward arrays, importance vectors), and those
        are indexed by slot position.  Use :attr:`live_count` for the
        number of live rows.
        """
        return len(self._rows)

    @property
    def live_count(self) -> int:
        """Number of live (non-tombstoned) rows."""
        return len(self._rows) - self._deleted

    @property
    def mutation_count(self) -> int:
        """Monotone counter bumped by every insert/update/delete."""
        return self._mutations

    def is_deleted(self, row_id: int) -> bool:
        return 0 <= row_id < len(self._rows) and self._rows[row_id] is None

    @property
    def name(self) -> str:
        return self.schema.name

    def row(self, row_id: int) -> tuple[Any, ...]:
        """Return the full row tuple for *row_id* (must be live)."""
        row = self._rows[row_id]
        if row is None:
            raise IntegrityError(
                f"row {row_id} of table {self.schema.name!r} is deleted"
            )
        return row

    def value(self, row_id: int, column: str) -> Any:
        """Return a single column value of a row."""
        return self.row(row_id)[self.schema.column_index(column)]

    def pk_of_row(self, row_id: int) -> Any:
        """Return the primary-key value of *row_id*."""
        return self.row(row_id)[self.schema.pk_index]

    def row_id_for_pk(self, pk_value: Any) -> int:
        """Resolve a primary-key value to its row id (KeyError if absent)."""
        return self._pk_to_row[pk_value]

    def has_pk(self, pk_value: Any) -> bool:
        return pk_value in self._pk_to_row

    def scan(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Iterate over live (row_id, row) pairs in insertion order."""
        return (
            (row_id, row)
            for row_id, row in enumerate(self._rows)
            if row is not None
        )

    def content_fingerprint(self) -> str:
        """SHA-256 over the full slot contents, in row-id order.

        Cached at a mutation count: any insert/update/delete bumps the
        per-table counter and invalidates the digest.  Tombstones hash as
        ``None`` slots, so a delete changes the fingerprint even though the
        slot count does not.  This is what keeps snapshot attach-time
        validation (:mod:`repro.persist.fingerprint`) O(1) for tables that
        have not changed since the last computation, the way a DBMS
        compares a catalog version instead of re-reading every page.
        """
        import hashlib

        if self._content_fp is None or self._content_fp[0] != self._mutations:
            h = hashlib.sha256()
            # Chunked repr: one C-level repr per slice keeps the hash fast
            # without materialising the whole table as a single transient
            # string (bounded extra memory for large tables).
            for start in range(0, len(self._rows), 4096):
                h.update(repr(self._rows[start : start + 4096]).encode("utf-8"))
                h.update(b"\x1f")
            self._content_fp = (self._mutations, h.hexdigest())
        return self._content_fp[1]

    def row_as_dict(self, row_id: int) -> dict[str, Any]:
        """Return a row as a column-name keyed dict (for display/CSV)."""
        row = self.row(row_id)
        return {c.name: row[i] for i, c in enumerate(self.schema.columns)}

    def __repr__(self) -> str:
        return (
            f"Table({self.schema.name!r}, rows={self.live_count}, "
            f"slots={len(self._rows)})"
        )
