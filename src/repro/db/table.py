"""Row storage for a single table.

Rows are stored as immutable tuples in insertion order; the row id is the
position in that list.  A primary-key hash index is maintained automatically;
secondary indexes register themselves via :meth:`Table.attach_index` and are
kept current on insert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

from repro.db.schema import TableSchema
from repro.errors import IntegrityError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.index import HashIndex


class Table:
    """A table: schema + rows + primary-key index."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[tuple[Any, ...]] = []
        self._pk_to_row: dict[Any, int] = {}
        self._indexes: list["HashIndex"] = []
        #: content-fingerprint cache: (row count it was computed at, digest)
        self._content_fp: tuple[int, str] | None = None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def insert(self, values: Mapping[str, Any] | Sequence[Any]) -> int:
        """Insert one row (mapping by column name, or positional sequence).

        Returns the new row id.  Validates types and primary-key uniqueness;
        foreign keys are validated at the :class:`~repro.db.database.Database`
        level (so bulk loads may insert parents and children in any order and
        call ``validate_integrity`` once).
        """
        schema = self.schema
        if isinstance(values, Mapping):
            row_list = []
            unknown = set(values) - {c.name for c in schema.columns}
            if unknown:
                raise IntegrityError(
                    f"unknown columns for table {schema.name!r}: {sorted(unknown)}"
                )
            for col in schema.columns:
                row_list.append(values.get(col.name))
        else:
            if len(values) != len(schema.columns):
                raise IntegrityError(
                    f"table {schema.name!r} expects {len(schema.columns)} values, "
                    f"got {len(values)}"
                )
            row_list = list(values)

        for idx, col in enumerate(schema.columns):
            row_list[idx] = col.type.validate(row_list[idx], nullable=col.nullable)

        pk_value = row_list[schema.pk_index]
        if pk_value in self._pk_to_row:
            raise IntegrityError(
                f"duplicate primary key {pk_value!r} in table {schema.name!r}"
            )

        row = tuple(row_list)
        row_id = len(self._rows)
        self._rows.append(row)
        self._pk_to_row[pk_value] = row_id
        for index in self._indexes:
            index.add_row(row_id, row)
        return row_id

    def attach_index(self, index: "HashIndex") -> None:
        """Register a secondary index to be maintained on future inserts."""
        self._indexes.append(index)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rows)

    @property
    def name(self) -> str:
        return self.schema.name

    def row(self, row_id: int) -> tuple[Any, ...]:
        """Return the full row tuple for *row_id*."""
        return self._rows[row_id]

    def value(self, row_id: int, column: str) -> Any:
        """Return a single column value of a row."""
        return self._rows[row_id][self.schema.column_index(column)]

    def pk_of_row(self, row_id: int) -> Any:
        """Return the primary-key value of *row_id*."""
        return self._rows[row_id][self.schema.pk_index]

    def row_id_for_pk(self, pk_value: Any) -> int:
        """Resolve a primary-key value to its row id (KeyError if absent)."""
        return self._pk_to_row[pk_value]

    def has_pk(self, pk_value: Any) -> bool:
        return pk_value in self._pk_to_row

    def scan(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Iterate over (row_id, row) pairs in insertion order."""
        return iter(enumerate(self._rows))

    def content_fingerprint(self) -> str:
        """SHA-256 over the full row contents, in row-id order.

        Cached until the table grows: rows are append-only (there is no
        update or delete), so the row count is a valid cache version.
        This is what keeps snapshot attach-time validation
        (:mod:`repro.persist.fingerprint`) O(1) for tables that have not
        changed since the last computation, the way a DBMS compares a
        catalog version instead of re-reading every page.
        """
        import hashlib

        if self._content_fp is None or self._content_fp[0] != len(self._rows):
            h = hashlib.sha256()
            # Chunked repr: one C-level repr per slice keeps the hash fast
            # without materialising the whole table as a single transient
            # string (bounded extra memory for large tables).
            for start in range(0, len(self._rows), 4096):
                h.update(repr(self._rows[start : start + 4096]).encode("utf-8"))
                h.update(b"\x1f")
            self._content_fp = (len(self._rows), h.hexdigest())
        return self._content_fp[1]

    def row_as_dict(self, row_id: int) -> dict[str, Any]:
        """Return a row as a column-name keyed dict (for display/CSV)."""
        row = self._rows[row_id]
        return {c.name: row[i] for i, c in enumerate(self.schema.columns)}

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={len(self._rows)})"
