"""Hash indexes over table columns.

The OS-generation algorithms look up children by foreign-key equality; a
per-column hash index makes each such lookup O(1 + fan-out), which is what
lets the data-graph-free "directly from the database" backend of the paper
work at all.
"""

from __future__ import annotations

from typing import Any

from repro.db.table import Table


class HashIndex:
    """A hash index mapping a column value to the row ids holding it.

    NULLs are not indexed (matching SQL semantics where ``col = NULL`` never
    matches).  The index is built from existing rows on construction and kept
    current via :meth:`add_row`, which the owning table calls on insert.
    """

    def __init__(self, table: Table, column: str) -> None:
        self.table = table
        self.column = column
        self._col_idx = table.schema.column_index(column)
        self._buckets: dict[Any, list[int]] = {}
        for row_id, row in table.scan():
            self.add_row(row_id, row)
        table.attach_index(self)

    def add_row(self, row_id: int, row: tuple[Any, ...]) -> None:
        """Index one row (called by the table on insert)."""
        value = row[self._col_idx]
        if value is None:
            return
        self._buckets.setdefault(value, []).append(row_id)

    def remove_row(self, row_id: int, row: tuple[Any, ...]) -> None:
        """Drop one row's entry (called by the table on update/delete).

        Robust by design: a NULL value was never indexed, and a missing
        bucket or absent row id is a no-op rather than an error — an index
        attached after a row was removed must not poison the mutation path.
        Only the first occurrence of *row_id* is dropped, mirroring the one
        entry :meth:`add_row` appended; duplicate values across different
        rows keep their remaining entries.
        """
        value = row[self._col_idx]
        if value is None:
            return
        bucket = self._buckets.get(value)
        if bucket is None:
            return
        try:
            bucket.remove(row_id)
        except ValueError:
            return
        if not bucket:
            del self._buckets[value]

    def lookup(self, value: Any) -> list[int]:
        """Return row ids whose column equals *value* (insertion order)."""
        return self._buckets.get(value, [])

    def fan_out(self, value: Any) -> int:
        """Number of rows matching *value* (used by affinity cardinality)."""
        return len(self._buckets.get(value, []))

    def distinct_values(self) -> int:
        return len(self._buckets)

    def average_fan_out(self) -> float:
        """Mean bucket size over distinct values (0.0 for an empty index)."""
        if not self._buckets:
            return 0.0
        return sum(len(b) for b in self._buckets.values()) / len(self._buckets)

    def __repr__(self) -> str:
        return f"HashIndex({self.table.name}.{self.column}, distinct={len(self._buckets)})"
