"""The database catalog: tables, foreign keys, indexes, integrity checks."""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping, Sequence

from repro.db.index import HashIndex
from repro.db.schema import ForeignKey, TableSchema
from repro.db.table import Table
from repro.errors import IntegrityError, SchemaError, UnknownTableError


class Database:
    """An embedded relational database.

    Responsibilities:

    * catalog of :class:`~repro.db.table.Table` objects keyed by name;
    * foreign-key registry (populated from table schemas on creation);
    * hash-index management (``index_on`` creates or returns an index);
    * referential-integrity validation (:meth:`validate_integrity`).

    The database itself is query-agnostic; the statement templates used by
    the OS algorithms live in :class:`~repro.db.query.QueryInterface`.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._indexes: dict[tuple[str, str], HashIndex] = {}
        self._index_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Catalog
    # ------------------------------------------------------------------ #
    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from *schema*; FK targets must already exist."""
        if schema.name in self._tables:
            raise SchemaError(f"table already exists: {schema.name!r}")
        for fk in schema.foreign_keys:
            if fk.ref_table not in self._tables and fk.ref_table != schema.name:
                raise SchemaError(
                    f"table {schema.name!r} references unknown table {fk.ref_table!r}"
                )
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    @property
    def total_rows(self) -> int:
        """Total tuple count across all tables (the paper reports these)."""
        return sum(len(t) for t in self._tables.values())

    # ------------------------------------------------------------------ #
    # Foreign keys
    # ------------------------------------------------------------------ #
    def foreign_keys(self) -> list[tuple[str, ForeignKey]]:
        """All (owning_table, fk) pairs in the database."""
        pairs: list[tuple[str, ForeignKey]] = []
        for table in self._tables.values():
            for fk in table.schema.foreign_keys:
                pairs.append((table.name, fk))
        return pairs

    def foreign_keys_of(self, table_name: str) -> list[ForeignKey]:
        return list(self.table(table_name).schema.foreign_keys)

    def foreign_keys_into(self, table_name: str) -> list[tuple[str, ForeignKey]]:
        """All (owning_table, fk) pairs whose FK references *table_name*."""
        self.table(table_name)  # raise on unknown table
        return [
            (owner, fk)
            for owner, fk in self.foreign_keys()
            if fk.ref_table == table_name
        ]

    # ------------------------------------------------------------------ #
    # Indexes
    # ------------------------------------------------------------------ #
    def index_on(self, table_name: str, column: str) -> HashIndex:
        """Create (or return the existing) hash index on table.column."""
        key = (table_name, column)
        index = self._indexes.get(key)
        if index is None:
            # Double-checked: concurrent Session workers must not each pay
            # (or race) the O(n) index build on a cold column.
            with self._index_lock:
                index = self._indexes.get(key)
                if index is None:
                    index = HashIndex(self.table(table_name), column)
                    self._indexes[key] = index
        return index

    def ensure_fk_indexes(self) -> None:
        """Index every FK column and every referenced PK (loader helper)."""
        for owner, fk in self.foreign_keys():
            self.index_on(owner, fk.column)

    # ------------------------------------------------------------------ #
    # Bulk load + integrity
    # ------------------------------------------------------------------ #
    def insert(self, table_name: str, values: Mapping[str, Any] | Sequence[Any]) -> int:
        return self.table(table_name).insert(values)

    def insert_many(
        self, table_name: str, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> list[int]:
        table = self.table(table_name)
        return [table.insert(row) for row in rows]

    def validate_integrity(self) -> None:
        """Check every FK value resolves to an existing referenced PK.

        Raises :class:`~repro.errors.IntegrityError` naming the first
        dangling reference found.  NULL FK values are permitted (SQL
        semantics for nullable FK columns).
        """
        for owner_name, fk in self.foreign_keys():
            owner = self.table(owner_name)
            target = self.table(fk.ref_table)
            if fk.ref_column != target.schema.primary_key:
                raise IntegrityError(
                    f"FK {owner_name}.{fk.column} must reference the primary key "
                    f"of {fk.ref_table!r} ({target.schema.primary_key!r}), "
                    f"not {fk.ref_column!r}"
                )
            col_idx = owner.schema.column_index(fk.column)
            for row_id, row in owner.scan():
                value = row[col_idx]
                if value is None:
                    continue
                if not target.has_pk(value):
                    raise IntegrityError(
                        f"dangling FK: {owner_name}.{fk.column}={value!r} "
                        f"(row {row_id}) has no match in {fk.ref_table}"
                    )

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={len(self._tables)}, rows={self.total_rows})"
