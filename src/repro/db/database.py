"""The database catalog: tables, foreign keys, indexes, integrity checks."""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping, Sequence

from repro.db.index import HashIndex
from repro.db.mutation import CommitResult, Delete, Insert, RowChange, Update
from repro.db.schema import ForeignKey, TableSchema
from repro.db.table import Table
from repro.errors import IntegrityError, SchemaError, UnknownTableError


class Database:
    """An embedded relational database.

    Responsibilities:

    * catalog of :class:`~repro.db.table.Table` objects keyed by name;
    * foreign-key registry (populated from table schemas on creation);
    * hash-index management (``index_on`` creates or returns an index);
    * referential-integrity validation (:meth:`validate_integrity`).

    The database itself is query-agnostic; the statement templates used by
    the OS algorithms live in :class:`~repro.db.query.QueryInterface`.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._indexes: dict[tuple[str, str], HashIndex] = {}
        self._index_lock = threading.Lock()
        #: monotone dataset version, bumped once per committed transaction
        #: (bulk loads via :meth:`insert`/:meth:`insert_many` do not bump
        #: it — version 0 means "as built", which is what keeps response
        #: bodies byte-identical across topologies until a write happens)
        self._data_version = 0
        self._txn_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Catalog
    # ------------------------------------------------------------------ #
    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from *schema*; FK targets must already exist."""
        if schema.name in self._tables:
            raise SchemaError(f"table already exists: {schema.name!r}")
        for fk in schema.foreign_keys:
            if fk.ref_table not in self._tables and fk.ref_table != schema.name:
                raise SchemaError(
                    f"table {schema.name!r} references unknown table {fk.ref_table!r}"
                )
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    @property
    def total_rows(self) -> int:
        """Total tuple count across all tables (the paper reports these)."""
        return sum(len(t) for t in self._tables.values())

    # ------------------------------------------------------------------ #
    # Foreign keys
    # ------------------------------------------------------------------ #
    def foreign_keys(self) -> list[tuple[str, ForeignKey]]:
        """All (owning_table, fk) pairs in the database."""
        pairs: list[tuple[str, ForeignKey]] = []
        for table in self._tables.values():
            for fk in table.schema.foreign_keys:
                pairs.append((table.name, fk))
        return pairs

    def foreign_keys_of(self, table_name: str) -> list[ForeignKey]:
        return list(self.table(table_name).schema.foreign_keys)

    def foreign_keys_into(self, table_name: str) -> list[tuple[str, ForeignKey]]:
        """All (owning_table, fk) pairs whose FK references *table_name*."""
        self.table(table_name)  # raise on unknown table
        return [
            (owner, fk)
            for owner, fk in self.foreign_keys()
            if fk.ref_table == table_name
        ]

    # ------------------------------------------------------------------ #
    # Indexes
    # ------------------------------------------------------------------ #
    def index_on(self, table_name: str, column: str) -> HashIndex:
        """Create (or return the existing) hash index on table.column."""
        key = (table_name, column)
        index = self._indexes.get(key)
        if index is None:
            # Double-checked: concurrent Session workers must not each pay
            # (or race) the O(n) index build on a cold column.
            with self._index_lock:
                index = self._indexes.get(key)
                if index is None:
                    index = HashIndex(self.table(table_name), column)
                    self._indexes[key] = index
        return index

    def ensure_fk_indexes(self) -> None:
        """Index every FK column and every referenced PK (loader helper)."""
        for owner, fk in self.foreign_keys():
            self.index_on(owner, fk.column)

    # ------------------------------------------------------------------ #
    # Bulk load + integrity
    # ------------------------------------------------------------------ #
    def insert(self, table_name: str, values: Mapping[str, Any] | Sequence[Any]) -> int:
        return self.table(table_name).insert(values)

    def insert_many(
        self, table_name: str, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> list[int]:
        table = self.table(table_name)
        return [table.insert(row) for row in rows]

    # ------------------------------------------------------------------ #
    # Transactional mutation
    # ------------------------------------------------------------------ #
    @property
    def data_version(self) -> int:
        return self._data_version

    def update(self, table_name: str, pk: Any, changes: Mapping[str, Any]) -> CommitResult:
        """Update one row (by primary key) as a single-op transaction."""
        return self.apply_transaction([Update(table_name, pk, changes)])

    def delete(self, table_name: str, pk: Any) -> CommitResult:
        """Delete one row (by primary key) as a single-op transaction."""
        return self.apply_transaction([Delete(table_name, pk)])

    def apply_transaction(
        self, operations: "Sequence[Insert | Update | Delete]"
    ) -> CommitResult:
        """Apply *operations* in order, atomically.

        Each op sees the state left by the previous ones (an insert may
        reference a row inserted earlier in the same transaction; a delete
        frees its PK for re-insertion).  After the last op, scoped FK
        integrity is checked: every touched row's outgoing FKs must
        resolve, and no deleted row may still be referenced by a live row
        (FK-restrict).  Any failure — validation, duplicate PK, dangling
        FK — rolls every op back via the undo log and re-raises; the
        database is exactly as it was.

        On success the dataset version is bumped and returned with the
        ordered :class:`~repro.db.mutation.RowChange` records.
        """
        if not operations:
            raise IntegrityError("a transaction needs at least one operation")
        with self._txn_lock:
            changes: list[RowChange] = []
            try:
                for op in operations:
                    changes.append(self._apply_one(op))
                self._check_touched(changes)
            except Exception:
                for change in reversed(changes):
                    self._undo_one(change)
                raise
            self._data_version += 1
            return CommitResult(self._data_version, tuple(changes))

    def _apply_one(self, op: "Insert | Update | Delete") -> RowChange:
        if isinstance(op, Insert):
            table = self.table(op.table)
            row_id = table.insert(op.values)
            return RowChange("insert", op.table, row_id, None, table.row(row_id))
        if isinstance(op, Update):
            table = self.table(op.table)
            row_id = self._resolve_pk(table, op.pk)
            old_row, new_row = table.update_row(row_id, op.changes)
            return RowChange("update", op.table, row_id, old_row, new_row)
        if isinstance(op, Delete):
            table = self.table(op.table)
            row_id = self._resolve_pk(table, op.pk)
            old_row = table.delete_row(row_id)
            return RowChange("delete", op.table, row_id, old_row, None)
        raise IntegrityError(f"unknown mutation operation: {op!r}")

    @staticmethod
    def _resolve_pk(table: Table, pk: Any) -> int:
        try:
            return table.row_id_for_pk(pk)
        except KeyError:
            raise IntegrityError(
                f"no row with primary key {pk!r} in table {table.name!r}"
            ) from None

    def _undo_one(self, change: RowChange) -> None:
        table = self.table(change.table)
        if change.op == "insert":
            table._undo_insert(change.row_id)
        elif change.op == "update":
            assert change.old_row is not None and change.new_row is not None
            table._apply_replace(change.row_id, change.new_row, change.old_row)
        else:  # delete
            assert change.old_row is not None
            table._undo_delete(change.row_id, change.old_row)

    def _check_touched(self, changes: "list[RowChange]") -> None:
        """Scoped FK integrity over the transaction's end state.

        O(changes × FKs), not O(database): outgoing FKs are checked per
        touched live row, and incoming references to deleted rows are
        checked through hash indexes on the referencing columns (built on
        demand; FK columns are typically indexed already).
        """
        for change in changes:
            table = self.table(change.table)
            if change.new_row is not None and not table.is_deleted(change.row_id):
                # a later op may have re-updated or deleted this row; check
                # the *current* tuple, not the one this change installed
                row = table.row(change.row_id)
                for fk in table.schema.foreign_keys:
                    value = row[table.schema.column_index(fk.column)]
                    if value is None:
                        continue
                    if not self.table(fk.ref_table).has_pk(value):
                        raise IntegrityError(
                            f"dangling FK: {change.table}.{fk.column}={value!r} "
                            f"(row {change.row_id}) has no match in {fk.ref_table}"
                        )
            if change.op == "delete" and change.old_row is not None:
                if table.is_deleted(change.row_id):
                    pk_value = change.old_row[table.schema.pk_index]
                    if table.has_pk(pk_value):
                        continue  # pk re-inserted later in this transaction
                    for owner, fk in self.foreign_keys_into(change.table):
                        if self.index_on(owner, fk.column).lookup(pk_value):
                            raise IntegrityError(
                                f"cannot delete {change.table} pk={pk_value!r}: "
                                f"still referenced by {owner}.{fk.column}"
                            )

    def validate_integrity(self) -> None:
        """Check every FK value resolves to an existing referenced PK.

        Raises :class:`~repro.errors.IntegrityError` naming the first
        dangling reference found.  NULL FK values are permitted (SQL
        semantics for nullable FK columns).
        """
        for owner_name, fk in self.foreign_keys():
            owner = self.table(owner_name)
            target = self.table(fk.ref_table)
            if fk.ref_column != target.schema.primary_key:
                raise IntegrityError(
                    f"FK {owner_name}.{fk.column} must reference the primary key "
                    f"of {fk.ref_table!r} ({target.schema.primary_key!r}), "
                    f"not {fk.ref_column!r}"
                )
            col_idx = owner.schema.column_index(fk.column)
            for row_id, row in owner.scan():
                value = row[col_idx]
                if value is None:
                    continue
                if not target.has_pk(value):
                    raise IntegrityError(
                        f"dangling FK: {owner_name}.{fk.column}={value!r} "
                        f"(row {row_id}) has no match in {fk.ref_table}"
                    )

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={len(self._tables)}, rows={self.total_rows})"
