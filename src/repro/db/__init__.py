"""In-memory relational engine substrate.

The paper's system runs over MySQL; this package provides the equivalent
embedded substrate: typed tables with primary keys, hash indexes, foreign
keys, referential-integrity validation, and the minimal query layer that the
OS-generation algorithms need (the two SQL statement templates of
Algorithm 4).  An I/O accounting hook counts join queries so the cost
discussion of Sections 5.3 and 6.3 can be measured.
"""

from repro.db.types import ColumnType
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.table import Table
from repro.db.index import HashIndex
from repro.db.database import Database
from repro.db.query import QueryInterface

__all__ = [
    "ColumnType",
    "Column",
    "ForeignKey",
    "TableSchema",
    "Table",
    "HashIndex",
    "Database",
    "QueryInterface",
]
