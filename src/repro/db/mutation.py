"""Mutation operations and commit records for transactional writes.

A transaction is an ordered sequence of :class:`Insert` / :class:`Update`
/ :class:`Delete` operations applied atomically by
:meth:`~repro.db.database.Database.apply_transaction`: every operation is
applied in order against the in-progress state (so an insert may
reference a row inserted two ops earlier, and a delete frees its primary
key for re-insertion later in the same transaction), scoped FK integrity
is checked against the end state, and any failure rolls the whole
sequence back via the undo log.

The commit returns a :class:`CommitResult` whose :class:`RowChange`
records carry enough state (op, table, row id, old/new tuples) for the
live maintenance layer (:mod:`repro.live`) to patch derived structures —
CSR adjacency deltas, inverted-index postings, dirty-subject walks —
without rescanning the tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import RequestValidationError

__all__ = [
    "Insert",
    "Update",
    "Delete",
    "Mutation",
    "RowChange",
    "CommitResult",
    "decode_operation",
]


@dataclass(frozen=True)
class Insert:
    """Insert one row (``values`` maps column name to value)."""

    table: str
    values: Mapping[str, Any]


@dataclass(frozen=True)
class Update:
    """Update columns of the row whose primary key is ``pk``."""

    table: str
    pk: Any
    changes: Mapping[str, Any]


@dataclass(frozen=True)
class Delete:
    """Delete the row whose primary key is ``pk`` (FK-restrict)."""

    table: str
    pk: Any


Mutation = "Insert | Update | Delete"


@dataclass(frozen=True)
class RowChange:
    """One applied operation, with before/after row state.

    ``old_row`` is ``None`` for inserts, ``new_row`` is ``None`` for
    deletes; updates carry both.
    """

    op: str  # "insert" | "update" | "delete"
    table: str
    row_id: int
    old_row: "tuple[Any, ...] | None"
    new_row: "tuple[Any, ...] | None"


@dataclass(frozen=True)
class CommitResult:
    """A committed transaction: the new dataset version + its changes."""

    version: int
    changes: tuple[RowChange, ...] = field(default_factory=tuple)

    @property
    def applied(self) -> int:
        return len(self.changes)


def decode_operation(entry: Any, *, index: int = 0) -> "Insert | Update | Delete":
    """Decode one wire-shaped operation dict into a typed op.

    Strict by the protocol's convention: unknown fields, missing fields,
    and bad types all raise :class:`~repro.errors.RequestValidationError`
    naming the offending operation index.
    """

    def bad(reason: str) -> RequestValidationError:
        return RequestValidationError(f"operations[{index}]: {reason}")

    if not isinstance(entry, dict):
        raise bad(f"expected an object, got {type(entry).__name__}")
    op = entry.get("op")
    if op not in ("insert", "update", "delete"):
        raise bad(f"field 'op' must be 'insert', 'update', or 'delete', got {op!r}")
    table = entry.get("table")
    if not isinstance(table, str) or not table:
        raise bad("field 'table' must be a non-empty string")
    allowed = {
        "insert": {"op", "table", "values"},
        "update": {"op", "table", "pk", "set"},
        "delete": {"op", "table", "pk"},
    }[op]
    unknown = set(entry) - allowed
    if unknown:
        raise bad(f"unknown fields for op {op!r}: {sorted(unknown)}")
    if op == "insert":
        values = entry.get("values")
        if not isinstance(values, dict) or not values:
            raise bad("field 'values' must be a non-empty object")
        return Insert(table=table, values=values)
    if "pk" not in entry:
        raise bad(f"op {op!r} requires field 'pk'")
    if op == "update":
        changes = entry.get("set")
        if not isinstance(changes, dict) or not changes:
            raise bad("field 'set' must be a non-empty object")
        return Update(table=table, pk=entry["pk"], changes=changes)
    return Delete(table=table, pk=entry["pk"])
