"""CSV import/export for tables (used by the examples and for debugging)."""

from __future__ import annotations

import csv
from pathlib import Path

from repro.db.database import Database
from repro.db.table import Table
from repro.errors import SchemaError


def export_table(table: Table, path: str | Path) -> int:
    """Write *table* to CSV with a header row; returns the row count."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([c.name for c in table.schema.columns])
        count = 0
        for _row_id, row in table.scan():
            writer.writerow(["" if v is None else v for v in row])
            count += 1
    return count


def import_table(table: Table, path: str | Path) -> int:
    """Load CSV rows into *table*; header must match the schema columns.

    Values are parsed according to each column's declared type; empty cells
    become NULL.  Returns the number of rows inserted.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"empty CSV file: {path}") from None
        expected = [c.name for c in table.schema.columns]
        if header != expected:
            raise SchemaError(
                f"CSV header {header} does not match schema columns {expected}"
            )
        count = 0
        for cells in reader:
            values = [
                col.type.parse_text(cell)
                for col, cell in zip(table.schema.columns, cells)
            ]
            table.insert(values)
            count += 1
    return count


def export_database(db: Database, directory: str | Path) -> dict[str, int]:
    """Export every table to ``directory/<table>.csv``; returns row counts."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return {
        table.name: export_table(table, directory / f"{table.name}.csv")
        for table in db.tables()
    }


def import_database(db: Database, directory: str | Path) -> dict[str, int]:
    """Import ``directory/<table>.csv`` into each existing table of *db*."""
    directory = Path(directory)
    counts: dict[str, int] = {}
    for table in db.tables():
        csv_path = directory / f"{table.name}.csv"
        if csv_path.exists():
            counts[table.name] = import_table(table, csv_path)
    return counts
