"""Command-line interface: size-l OS keyword search over the demo databases.

Usage (after ``pip install -e .``)::

    python -m repro query --database dblp --keywords Faloutsos --l 15
    python -m repro query --database tpch --keywords "Supplier#000001" --l 10
    python -m repro query --database dblp --keywords Faloutsos --backend database
    python -m repro query --database dblp --keywords Faloutsos --workers 4
    python -m repro precompute --database dblp --out snap.d --table author
    python -m repro query --database dblp --keywords Faloutsos \\
        --source complete --snapshot snap.d
    python -m repro serve --database dblp --snapshot snap.d --port 8077
    python -m repro gds --database dblp --subject author
    python -m repro analyze --database dblp --subject author --max-l 25
    python -m repro load-dblp --xml dblp.xml --out dblp.sqlite --limit 5000
    python -m repro query --db dblp.sqlite --keywords Faloutsos --l 15

``query`` runs the paper's end-to-end pipeline (Examples 3-5), streaming
each result as its size-l OS is computed; ``precompute`` generates
complete OSs offline and writes a :mod:`repro.persist` snapshot that
``query --snapshot`` warm-starts from; ``serve`` exposes the same
pipeline over HTTP (:mod:`repro.service`); ``gds`` prints the annotated,
θ-pruned G_DS (Figure 2/12); ``analyze`` runs the Section-7
optimal-family analysis (nesting/stability across l).

Every subcommand resolves its dataset through one shared loader
(:func:`_load_session`) — the dataset flags are declared once on a parent
parser and built once per invocation.  ``--db PATH.sqlite`` swaps the
synthetic dataset for a real one previously imported (``load-dblp`` or
:func:`repro.storage.export_database`); ``--pool-bytes`` serves the data
graph through a bounded buffer pool instead of fully resident.  Exit
codes are pinned:

* ``0`` — success;
* ``1`` — the command ran but found nothing (no matching data subjects);
* ``2`` — usage or validation errors (argparse, bad options, snapshot
  rejection, unknown tables...).

``--algorithm`` and ``--backend`` choices derive from
:mod:`repro.core.registry`, so plugins registered via
``register_algorithm`` / ``register_backend`` before the parser is built
appear automatically.

The CLI builds the synthetic databases on the fly (deterministic under
``--seed``); wiring a custom database means using the library API directly
(see README quickstart).
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path
from typing import Sequence

from repro.core.analysis import nesting_profile, optimal_family, stability_profile
from repro.core.builder import NAMED_DATASETS, EngineBuilder
from repro.core.options import ParallelConfig, QueryOptions
from repro.core.registry import algorithm_names, backend_names
from repro.errors import ReproError, ServiceError
from repro.session import Session

#: Pinned exit codes (asserted by tests/test_cli.py).
EXIT_OK = 0
EXIT_NO_RESULTS = 1
EXIT_ERROR = 2


def _load_session(args: argparse.Namespace, *, cache_size: int = 64) -> Session:
    """The one shared dataset loader behind every subcommand.

    Builds the named dataset once (deterministic under ``--seed`` /
    ``--scale``) and wraps it in a Session; a ``--snapshot`` directory,
    when the subcommand defines the flag, is opened, validated, and
    attached (library errors propagate to :func:`main`, which maps them
    to exit code 2).
    """
    snapshot = None
    if getattr(args, "snapshot", None) is not None:
        # Opened (and checksum-verified) BEFORE the dataset is synthesised:
        # a typo'd path or corrupt snapshot fails in milliseconds instead
        # of after the most expensive step of the invocation.
        from repro.persist.snapshot import Snapshot

        snapshot = Snapshot.open(
            args.snapshot, verify=not getattr(args, "no_verify", False)
        )
    if getattr(args, "db", None) is not None:
        # A real imported dataset: --db replaces synthesis entirely, so
        # --seed/--scale are inert here.  A missing or corrupt file raises
        # StorageError, which main() maps to the pinned exit code 2.
        from repro.storage import open_dataset

        builder = EngineBuilder.from_dataset(open_dataset(args.db))
    else:
        builder = EngineBuilder.named(
            args.database, seed=args.seed, scale=args.scale
        )
    if snapshot is not None:
        builder.with_snapshot(snapshot)
    if getattr(args, "pool_bytes", None) is not None:
        builder.with_buffer_pool(args.pool_bytes)
    return builder.build_session(cache_size=cache_size)


def _dataset_label(args: argparse.Namespace) -> str:
    """What to call the served dataset: the --db file's stem, else the
    named database."""
    if getattr(args, "db", None) is not None:
        return Path(args.db).stem
    return args.database


def _cmd_query(args: argparse.Namespace) -> int:
    options = QueryOptions(
        l=args.l,
        algorithm=args.algorithm,
        source=args.source,
        backend=args.backend,
        max_results=args.max_results,
        parallel=ParallelConfig(workers=args.workers, ordered=not args.unordered),
    ).normalized()
    session = _load_session(args)
    rank = 0
    for entry in session.iter_keyword_query(args.keywords, options=options):
        rank += 1
        print(
            f"--- result {rank}: {entry.match.table} "
            f"(Im(t_DS)={entry.match.importance:.2f}, "
            f"Im(S)={entry.result.importance:.2f}, "
            f"|OS|={entry.result.stats['initial_os_size']}) ---"
        )
        print(entry.result.render())
        print()
    if rank == 0:
        print("no matching data subjects")
        return EXIT_NO_RESULTS
    if args.snapshot is not None:
        stats = session.cache_stats()
        print(
            f"[snapshot] disk hits: {stats.disk_hits}, "
            f"disk misses: {stats.disk_misses}"
        )
    return EXIT_OK


def _install_graceful_shutdown(server: object) -> None:
    """SIGTERM/SIGINT stop the serving loop cleanly (exit 0, not a dump).

    The handler runs *on* the thread inside ``serve_forever`` and
    ``shutdown()`` blocks until that loop exits, so the call is handed to
    a helper thread.  Outside the main thread (in-process test harnesses)
    signal handlers cannot be installed; that is fine — those callers
    stop the server directly.
    """

    def _terminate(signum: int, _frame: object) -> None:
        threading.Thread(target=server.shutdown, daemon=True).start()  # type: ignore[attr-defined]

    try:
        signal.signal(signal.SIGTERM, _terminate)
        signal.signal(signal.SIGINT, _terminate)
    except ValueError:  # not the main thread
        pass


def _serve_loop(server: object, args: argparse.Namespace, banner: str) -> int:
    """The shared serve lifecycle: banner, ready file, signals, loop."""
    print(banner, flush=True)
    if args.ready_file is not None:
        # smoke-test hook: the bound (possibly ephemeral) URL, readable by
        # the process that launched us
        args.ready_file.write_text(server.url + "\n", encoding="utf-8")  # type: ignore[attr-defined]
    _install_graceful_shutdown(server)
    try:
        if args.serve_seconds is not None:
            shutdown = threading.Timer(args.serve_seconds, server.shutdown)  # type: ignore[attr-defined]
            shutdown.daemon = True
            shutdown.start()
        server.serve_forever()  # type: ignore[attr-defined]
    except KeyboardInterrupt:
        pass  # a clean operator stop, not an error
    return EXIT_OK


def _middleware_config(args: argparse.Namespace) -> "object | None":
    """The serve flags as one :class:`MiddlewareConfig` (None = disarmed).

    Both topologies build their pipeline from this same object, so
    ``--shards 1`` and ``--shards 8`` enforce identical policy at their
    edge.
    """
    from repro.service.middleware import MiddlewareConfig

    if (
        args.auth_token_file is None
        and args.rate_limit is None
        and args.rate_burst is None
        and args.max_concurrent is None
        and args.access_log is None
    ):
        return None
    return MiddlewareConfig(
        auth_token_file=args.auth_token_file,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        max_concurrent=args.max_concurrent,
        access_log=None if args.access_log is None else str(args.access_log),
    )


def _serve_cluster(args: argparse.Namespace) -> int:
    """``repro serve --shards N``: the multi-process cluster path."""
    from repro.cluster import Cluster, DatasetSpec

    spec = DatasetSpec(
        name=args.database,
        database=args.database,
        seed=args.seed,
        scale=args.scale,
        snapshot=None if args.snapshot is None else str(args.snapshot),
        verify=not args.no_verify,
    )
    # hop access-log lines go to the same file as the edge's (atomic
    # appends, stamped with the shard); stderr-mode edge logs keep hop
    # logging off — N workers interleaving one terminal helps no one
    hop_log = ""
    if args.access_log is not None and str(args.access_log) != "-":
        hop_log = str(args.access_log)
    cluster = Cluster(
        [spec],
        args.shards,
        cache_size=args.cache_size,
        workers=args.workers,
        ordered=not args.unordered,
        access_log=hop_log,
    )
    cluster.start()
    try:
        try:
            server = cluster.create_http_server(
                host=args.host,
                port=args.port,
                verbose=args.verbose,
                middleware=_middleware_config(args),
            )
        except ServiceError as exc:  # bad middleware config (e.g. token file)
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        except OSError as exc:
            print(
                f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr
            )
            return EXIT_ERROR
        banner = (
            f"serving {args.database} on {server.url} "
            f"({args.shards} shards, consistent-hash routed)"
        )
        try:
            return _serve_loop(server, args, banner)
        finally:
            server.server_close()
    finally:
        cluster.stop()


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the HTTP front end over the shared loader's Session.

    The dataset (and optional snapshot) resolve through the exact same
    :func:`_load_session` path as ``query`` — no serve-only dataset-flag
    drift — then get registered as one :class:`~repro.service.Deployment`
    entry named after the database.  ``--workers``/``--unordered`` become
    the Session's default :class:`ParallelConfig`, so every served query
    fans out accordingly unless its request overrides them.

    ``--shards N`` (N > 1) swaps the in-process dispatcher for the
    :mod:`repro.cluster` worker pool: N subprocesses each build (or
    snapshot-attach) the dataset, the front end routes by consistent
    hashing, and SIGTERM drains everything in order.
    """
    if args.shards > 1:
        if args.db is not None:
            # DatasetSpec describes a dataset workers can synthesise
            # independently; a SQLite file has no such recipe yet.
            raise ReproError(
                "--db cannot be combined with --shards > 1; serve an "
                "imported dataset from a single process"
            )
        return _serve_cluster(args)
    from repro.service import Deployment, create_server

    name = _dataset_label(args)
    session = _load_session(args, cache_size=args.cache_size)
    session.parallel = ParallelConfig(
        workers=args.workers, ordered=not args.unordered
    ).normalized()
    deployment = Deployment().add_session(name, session)
    try:
        server = create_server(
            deployment,
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            middleware=_middleware_config(args),
        )
    except ServiceError as exc:  # bad middleware config (e.g. token file)
        print(f"error: {exc}", file=sys.stderr)
        deployment.close()
        return EXIT_ERROR
    except OSError as exc:
        # busy port, privileged port, unresolvable host: a usage error
        # (exit 2), not a bare traceback — and never exit 1, which the
        # pinned contract reserves for "ran but found nothing"
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return EXIT_ERROR
    try:
        return _serve_loop(server, args, f"serving {name} on {server.url}")
    finally:
        server.server_close()
        deployment.close()


def _cmd_precompute(args: argparse.Namespace) -> int:
    from repro.persist.precompute import precompute_snapshot, select_subjects

    session = _load_session(args)
    subjects = select_subjects(
        session.engine,
        table=args.table,
        row_ids=args.ids,
        top_keywords=args.top_keywords,
    )
    report = precompute_snapshot(
        session.engine,
        subjects,
        args.out,
        workers=args.workers,
        overwrite=args.overwrite,
    )
    print(
        f"snapshot written: {report.path}\n"
        f"  subjects: {report.subjects}\n"
        f"  tree nodes: {report.tree_nodes}\n"
        f"  size: {report.size_bytes / 1024:.1f} KiB\n"
        f"  precompute time: {report.seconds:.2f}s "
        f"(workers={args.workers})"
    )
    return EXIT_OK


def _cmd_load_dblp(args: argparse.Namespace) -> int:
    from repro.storage import load_dblp_xml

    report = load_dblp_xml(
        args.xml, args.out, limit=args.limit, overwrite=args.overwrite
    )
    print(
        f"loaded {report.path}\n"
        f"  papers: {report.papers}  authors: {report.authors}  "
        f"conferences: {report.conferences}\n"
        f"  writes: {report.writes}  cites: {report.cites}  "
        f"(skipped records: {report.skipped}, "
        f"unresolved citations: {report.unresolved_citations})\n"
        f"  total tuples: {report.total_tuples}"
    )
    return EXIT_OK


def _cmd_gds(args: argparse.Namespace) -> int:
    session = _load_session(args)
    print(session.engine.gds_for(args.subject).render())
    return EXIT_OK


def _cmd_analyze(args: argparse.Namespace) -> int:
    session = _load_session(args)
    engine = session.engine
    matches = engine.searcher.search(args.keywords) if args.keywords else None
    if matches:
        rds_table, row_id = matches[0].table, matches[0].row_id
    else:
        rds_table, row_id = args.subject, 0
    tree = session.complete_os(rds_table, row_id)
    family = optimal_family(tree, args.max_l)
    nesting = nesting_profile(family)
    stability = stability_profile(family)
    print(f"subject: {rds_table}#{row_id}  |OS| = {tree.size}")
    print(
        f"optimal family l=1..{args.max_l}: "
        f"nested pairs {nesting.nested_fraction * 100:.1f}% "
        f"(breaks at l = {nesting.breaks or 'none'})"
    )
    print(
        f"mean consecutive Jaccard = {stability.mean_jaccard:.3f}; "
        f"core = {stability.core_size} tuples, union = {stability.union_size} "
        f"(vs Σl = {sum(range(1, args.max_l + 1))} without sharing)"
    )
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Size-l Object Summaries for Relational Keyword Search "
        "(VLDB 2011) - reproduction CLI",
    )
    parser.add_argument("--seed", type=int, default=7, help="dataset seed")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset size multiplier"
    )
    # Declared once, inherited by every subcommand (the shared loader's
    # contract: any parsed namespace carries the dataset selection).
    dataset_parent = argparse.ArgumentParser(add_help=False)
    dataset_parent.add_argument(
        "--database", choices=NAMED_DATASETS, default="dblp"
    )
    dataset_parent.add_argument(
        "--db",
        default=None,
        metavar="PATH.sqlite",
        help="serve a real imported dataset from this SQLite file "
        "(see load-dblp) instead of synthesising --database; a missing "
        "or corrupt file exits 2",
    )
    dataset_parent.add_argument(
        "--pool-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="serve the data graph through a buffer pool of this capacity "
        "instead of fully resident (page hit/miss/eviction counters "
        "appear in /v1/metrics)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser(
        "query", parents=[dataset_parent], help="run a size-l OS keyword query"
    )
    query.add_argument("--keywords", nargs="+", required=True)
    query.add_argument("--l", dest="l", type=int, default=10)
    query.add_argument(
        "--algorithm", choices=algorithm_names(), default="top_path"
    )
    query.add_argument("--source", choices=("complete", "prelim"), default="prelim")
    query.add_argument(
        "--backend",
        choices=backend_names(),
        default="datagraph",
        help="OS-generation backend (registry-extensible)",
    )
    query.add_argument("--max-results", type=int, default=3)
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        help="thread-pool size for the per-subject size-l pipelines "
        "(1 = serial)",
    )
    query.add_argument(
        "--unordered",
        action="store_true",
        help="with --workers > 1, print each result as it completes "
        "instead of preserving the match ranking",
    )
    query.add_argument(
        "--snapshot",
        default=None,
        metavar="DIR",
        help="warm-start from a precomputed snapshot directory (see the "
        "precompute subcommand); rejected with a clear error when it "
        "does not match the dataset",
    )
    query.add_argument(
        "--no-verify",
        action="store_true",
        help="skip per-file checksum verification of --snapshot (attach "
        "becomes O(1) instead of O(snapshot bytes); the manifest "
        "self-checksum and dataset fingerprint are still checked)",
    )
    query.set_defaults(func=_cmd_query)

    precompute = sub.add_parser(
        "precompute",
        parents=[dataset_parent],
        help="generate complete OSs offline into a snapshot directory",
    )
    precompute.add_argument(
        "--out", required=True, metavar="DIR", help="snapshot directory to write"
    )
    precompute.add_argument(
        "--table", default=None, help="precompute every subject of this R_DS table"
    )
    precompute.add_argument(
        "--ids",
        type=int,
        nargs="+",
        default=None,
        metavar="ROW",
        help="explicit row ids (requires --table)",
    )
    precompute.add_argument(
        "--top-keywords",
        type=int,
        default=None,
        metavar="K",
        help="precompute the K subjects the most frequent keywords resolve to",
    )
    precompute.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel OS generations (ParallelConfig fan-out; 1 = serial)",
    )
    precompute.add_argument(
        "--overwrite",
        action="store_true",
        help="replace an existing snapshot at --out",
    )
    precompute.set_defaults(func=_cmd_precompute)

    serve = sub.add_parser(
        "serve",
        parents=[dataset_parent],
        help="serve size-l OS queries over HTTP (see README: Serving over HTTP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8077,
        help="TCP port (0 binds an ephemeral port, printed at startup)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="default per-query fan-out of the served Session (1 = serial)",
    )
    serve.add_argument(
        "--unordered",
        action="store_true",
        help="with --workers > 1, served queries default to completion order",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="serve from N worker subprocesses behind a consistent-hash "
        "router (1 = classic single-process serving)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=64,
        metavar="SUBJECTS",
        help="per-process complete-OS cache capacity (with --shards N the "
        "cluster holds N disjoint partitions of this size)",
    )
    serve.add_argument(
        "--snapshot",
        default=None,
        metavar="DIR",
        help="warm-start the served dataset from a precomputed snapshot "
        "(also enables /v1/admin/reload hot swaps)",
    )
    serve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip per-file checksum verification of --snapshot",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request"
    )
    serve.add_argument(
        "--serve-seconds",
        type=float,
        default=None,
        metavar="S",
        help="shut down cleanly after S seconds (smoke tests; default: forever)",
    )
    serve.add_argument(
        "--ready-file",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the bound URL to PATH once listening (smoke tests)",
    )
    serve.add_argument(
        "--auth-token-file",
        type=Path,
        default=None,
        metavar="PATH",
        help="require 'Authorization: Bearer <token>' matching a line of "
        "PATH ('principal:token' or bare token per line); rejects with "
        "the pinned 401 (default: no authentication)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="RPS",
        help="per-client token-bucket admission rate in requests/second; "
        "over-rate requests get the pinned 429 with Retry-After "
        "(default: unlimited)",
    )
    serve.add_argument(
        "--rate-burst",
        type=int,
        default=None,
        metavar="N",
        help="token-bucket capacity (default: 2x the ceiled --rate-limit)",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        metavar="N",
        help="per-client in-flight request cap; excess requests get the "
        "pinned 429 (default: unlimited)",
    )
    serve.add_argument(
        "--access-log",
        default=None,
        metavar="PATH",
        help="append one JSON line per request to PATH ('-' = stderr); "
        "with --shards N, workers also append per-hop lines stamped "
        "with their shard (default: off)",
    )
    serve.set_defaults(func=_cmd_serve)

    load_dblp = sub.add_parser(
        "load-dblp",
        help="stream a DBLP XML dump into a SQLite dataset file",
    )
    load_dblp.add_argument(
        "--xml",
        required=True,
        metavar="PATH",
        help="DBLP XML dump (the public dblp.xml or any subset of it)",
    )
    load_dblp.add_argument(
        "--out",
        required=True,
        metavar="PATH.sqlite",
        help="SQLite dataset file to write (usable via --db afterwards)",
    )
    load_dblp.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="stop after N accepted papers (CI-sized samples of the real "
        "dump; default: load everything)",
    )
    load_dblp.add_argument(
        "--overwrite",
        action="store_true",
        help="replace an existing file at --out",
    )
    load_dblp.set_defaults(func=_cmd_load_dblp)

    gds = sub.add_parser(
        "gds", parents=[dataset_parent], help="print an annotated G_DS"
    )
    gds.add_argument("--subject", required=True, help="R_DS table name")
    gds.set_defaults(func=_cmd_gds)

    analyze = sub.add_parser(
        "analyze",
        parents=[dataset_parent],
        help="analyse the space of optimal size-l OSs (Section 7)",
    )
    analyze.add_argument("--subject", default="author", help="R_DS table name")
    analyze.add_argument("--keywords", nargs="*", help="pick the subject by keywords")
    analyze.add_argument("--max-l", type=int, default=20)
    analyze.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # One uniform mapping: every library-level failure (bad options,
        # unknown tables, snapshot rejection...) is a usage error — same
        # exit code argparse uses — with the message on stderr.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
