"""Command-line interface: size-l OS keyword search over the demo databases.

Usage (after ``pip install -e .``)::

    python -m repro query --database dblp --keywords Faloutsos --l 15
    python -m repro query --database tpch --keywords "Supplier#000001" --l 10
    python -m repro query --database dblp --keywords Faloutsos --backend database
    python -m repro query --database dblp --keywords Faloutsos --workers 4
    python -m repro gds --database dblp --subject author
    python -m repro analyze --database dblp --subject author --max-l 25

``query`` runs the paper's end-to-end pipeline (Examples 3-5), streaming
each result as its size-l OS is computed; ``gds`` prints the annotated,
θ-pruned G_DS (Figure 2/12); ``analyze`` runs the Section-7
optimal-family analysis (nesting/stability across l).

``--algorithm`` and ``--backend`` choices derive from
:mod:`repro.core.registry`, so plugins registered via
``register_algorithm`` / ``register_backend`` before the parser is built
appear automatically.

The CLI builds the synthetic databases on the fly (deterministic under
``--seed``); wiring a custom database means using the library API directly
(see README quickstart).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.analysis import nesting_profile, optimal_family, stability_profile
from repro.core.builder import NAMED_DATASETS, EngineBuilder
from repro.core.options import ParallelConfig, QueryOptions
from repro.core.registry import algorithm_names, backend_names
from repro.errors import SummaryError
from repro.session import Session


def _build_session(database: str, seed: int, scale: float) -> Session:
    try:
        return EngineBuilder.named(database, seed=seed, scale=scale).build_session()
    except SummaryError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_query(args: argparse.Namespace) -> int:
    try:
        options = QueryOptions(
            l=args.l,
            algorithm=args.algorithm,
            source=args.source,
            backend=args.backend,
            max_results=args.max_results,
            parallel=ParallelConfig(
                workers=args.workers, ordered=not args.unordered
            ),
        ).normalized()
    except SummaryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = _build_session(args.database, args.seed, args.scale)
    rank = 0
    for entry in session.iter_keyword_query(args.keywords, options=options):
        rank += 1
        print(
            f"--- result {rank}: {entry.match.table} "
            f"(Im(t_DS)={entry.match.importance:.2f}, "
            f"Im(S)={entry.result.importance:.2f}, "
            f"|OS|={entry.result.stats['initial_os_size']}) ---"
        )
        print(entry.result.render())
        print()
    if rank == 0:
        print("no matching data subjects")
        return 1
    return 0


def _cmd_gds(args: argparse.Namespace) -> int:
    session = _build_session(args.database, args.seed, args.scale)
    print(session.engine.gds_for(args.subject).render())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    session = _build_session(args.database, args.seed, args.scale)
    engine = session.engine
    matches = engine.searcher.search(args.keywords) if args.keywords else None
    if matches:
        rds_table, row_id = matches[0].table, matches[0].row_id
    else:
        rds_table, row_id = args.subject, 0
    tree = session.complete_os(rds_table, row_id)
    family = optimal_family(tree, args.max_l)
    nesting = nesting_profile(family)
    stability = stability_profile(family)
    print(f"subject: {rds_table}#{row_id}  |OS| = {tree.size}")
    print(
        f"optimal family l=1..{args.max_l}: "
        f"nested pairs {nesting.nested_fraction * 100:.1f}% "
        f"(breaks at l = {nesting.breaks or 'none'})"
    )
    print(
        f"mean consecutive Jaccard = {stability.mean_jaccard:.3f}; "
        f"core = {stability.core_size} tuples, union = {stability.union_size} "
        f"(vs Σl = {sum(range(1, args.max_l + 1))} without sharing)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Size-l Object Summaries for Relational Keyword Search "
        "(VLDB 2011) - reproduction CLI",
    )
    parser.add_argument("--seed", type=int, default=7, help="dataset seed")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset size multiplier"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="run a size-l OS keyword query")
    query.add_argument("--database", choices=NAMED_DATASETS, default="dblp")
    query.add_argument("--keywords", nargs="+", required=True)
    query.add_argument("--l", dest="l", type=int, default=10)
    query.add_argument(
        "--algorithm", choices=algorithm_names(), default="top_path"
    )
    query.add_argument("--source", choices=("complete", "prelim"), default="prelim")
    query.add_argument(
        "--backend",
        choices=backend_names(),
        default="datagraph",
        help="OS-generation backend (registry-extensible)",
    )
    query.add_argument("--max-results", type=int, default=3)
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        help="thread-pool size for the per-subject size-l pipelines "
        "(1 = serial)",
    )
    query.add_argument(
        "--unordered",
        action="store_true",
        help="with --workers > 1, print each result as it completes "
        "instead of preserving the match ranking",
    )
    query.set_defaults(func=_cmd_query)

    gds = sub.add_parser("gds", help="print an annotated G_DS")
    gds.add_argument("--database", choices=NAMED_DATASETS, default="dblp")
    gds.add_argument("--subject", required=True, help="R_DS table name")
    gds.set_defaults(func=_cmd_gds)

    analyze = sub.add_parser(
        "analyze", help="analyse the space of optimal size-l OSs (Section 7)"
    )
    analyze.add_argument("--database", choices=NAMED_DATASETS, default="dblp")
    analyze.add_argument("--subject", default="author", help="R_DS table name")
    analyze.add_argument("--keywords", nargs="*", help="pick the subject by keywords")
    analyze.add_argument("--max-l", type=int, default=20)
    analyze.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
