"""repro — a full reproduction of "Size-l Object Summaries for Relational
Keyword Search" (Fakas, Cai, Mamoulis; PVLDB 5(3), 2011).

The library implements the paper's complete stack from scratch:

* an embedded relational engine (:mod:`repro.db`),
* schema graphs and G_DS treealization with affinity (:mod:`repro.schema_graph`),
* global ObjectRank / ValueRank tuple importance (:mod:`repro.ranking`),
* the tuple-level data graph index (:mod:`repro.datagraph`),
* Object Summary generation and the size-l algorithms — optimal DP,
  Bottom-Up Pruning, Update Top-Path-l, prelim-l OS generation
  (:mod:`repro.core`),
* keyword search (:mod:`repro.search`),
* synthetic DBLP and TPC-H datasets (:mod:`repro.datasets`), and
* the Section-6 experiment harness (:mod:`repro.evaluation`).

Quickstart::

    from repro.datasets.dblp import small_dblp
    from repro.ranking import compute_objectrank
    from repro.core import SizeLEngine

    data = small_dblp()
    store = compute_objectrank(data.db, data.ga1())
    engine = SizeLEngine(
        data.db,
        {"author": data.author_gds(), "paper": data.paper_gds()},
        store,
    )
    for entry in engine.keyword_query("Faloutsos", l=15):
        print(entry.result.render())
"""

from repro.core import (
    ObjectSummary,
    OSNode,
    SizeLEngine,
    SizeLResult,
    bottom_up_size_l,
    brute_force_size_l,
    generate_os,
    generate_prelim_os,
    optimal_size_l,
    top_path_size_l,
)
from repro.db import Column, ColumnType, Database, ForeignKey, TableSchema
from repro.ranking import (
    ImportanceStore,
    compute_objectrank,
    compute_pagerank,
    compute_valuerank,
)
from repro.schema_graph import GDS, ManualAffinityModel, SchemaGraph, build_gds

__version__ = "1.0.0"

__all__ = [
    "ObjectSummary",
    "OSNode",
    "SizeLEngine",
    "SizeLResult",
    "bottom_up_size_l",
    "brute_force_size_l",
    "generate_os",
    "generate_prelim_os",
    "optimal_size_l",
    "top_path_size_l",
    "Column",
    "ColumnType",
    "Database",
    "ForeignKey",
    "TableSchema",
    "ImportanceStore",
    "compute_objectrank",
    "compute_pagerank",
    "compute_valuerank",
    "GDS",
    "ManualAffinityModel",
    "SchemaGraph",
    "build_gds",
    "__version__",
]
