"""repro — a full reproduction of "Size-l Object Summaries for Relational
Keyword Search" (Fakas, Cai, Mamoulis; PVLDB 5(3), 2011).

The library implements the paper's complete stack from scratch:

* an embedded relational engine (:mod:`repro.db`),
* schema graphs and G_DS treealization with affinity (:mod:`repro.schema_graph`),
* global ObjectRank / ValueRank tuple importance (:mod:`repro.ranking`),
* the tuple-level data graph index (:mod:`repro.datagraph`),
* Object Summary generation and the size-l algorithms — optimal DP,
  Bottom-Up Pruning, Update Top-Path-l, prelim-l OS generation
  (:mod:`repro.core`),
* keyword search (:mod:`repro.search`),
* synthetic DBLP and TPC-H datasets (:mod:`repro.datasets`),
* the Section-6 experiment harness (:mod:`repro.evaluation`),
* an offline-precompute + mmap snapshot persistence tier
  (:mod:`repro.persist`), and
* a service layer — typed wire protocol, multi-dataset
  :class:`~repro.service.Deployment` registry, :class:`AsyncSession`, and
  the ``repro serve`` HTTP front end (:mod:`repro.service`).

Quickstart::

    from repro import QueryOptions, Session
    from repro.datasets.dblp import small_dblp

    session = Session.from_dataset(small_dblp())
    for entry in session.iter_keyword_query("Faloutsos", options=QueryOptions(l=15)):
        print(entry.result.render())

See README.md for the full API tour (typed options, registries, builder)
and the old→new migration table.
"""

from repro.core import (
    Algorithm,
    Backend,
    CacheStats,
    EngineBuilder,
    FlatOS,
    KeywordResult,
    ObjectSummary,
    OSNode,
    ParallelConfig,
    QueryOptions,
    ResultStats,
    SizeLEngine,
    SizeLResult,
    Source,
    SummaryCache,
    algorithm_names,
    backend_names,
    bottom_up_size_l,
    brute_force_size_l,
    generate_os,
    generate_os_flat,
    generate_prelim_os,
    optimal_size_l,
    register_algorithm,
    register_backend,
    top_path_size_l,
)
from repro.session import Session
from repro.service import AsyncSession, Deployment
from repro.persist import (
    Snapshot,
    precompute_snapshot,
    select_subjects,
    write_snapshot,
)
from repro.db import Column, ColumnType, Database, ForeignKey, TableSchema
from repro.ranking import (
    ImportanceStore,
    compute_objectrank,
    compute_pagerank,
    compute_valuerank,
)
from repro.schema_graph import GDS, ManualAffinityModel, SchemaGraph, build_gds
from repro.storage import (
    BufferPool,
    export_database,
    import_database,
    load_dblp_xml,
    open_dataset,
)

__version__ = "1.2.0"

__all__ = [
    "ObjectSummary",
    "OSNode",
    "FlatOS",
    "SizeLEngine",
    "SizeLResult",
    "Session",
    "AsyncSession",
    "Deployment",
    "SummaryCache",
    "CacheStats",
    "KeywordResult",
    "EngineBuilder",
    "ParallelConfig",
    "QueryOptions",
    "ResultStats",
    "Algorithm",
    "Source",
    "Backend",
    "register_algorithm",
    "register_backend",
    "algorithm_names",
    "backend_names",
    "bottom_up_size_l",
    "brute_force_size_l",
    "generate_os",
    "generate_os_flat",
    "generate_prelim_os",
    "optimal_size_l",
    "top_path_size_l",
    "Snapshot",
    "precompute_snapshot",
    "select_subjects",
    "write_snapshot",
    "Column",
    "ColumnType",
    "Database",
    "ForeignKey",
    "TableSchema",
    "ImportanceStore",
    "compute_objectrank",
    "compute_pagerank",
    "compute_valuerank",
    "GDS",
    "ManualAffinityModel",
    "SchemaGraph",
    "build_gds",
    "BufferPool",
    "export_database",
    "import_database",
    "load_dblp_xml",
    "open_dataset",
    "__version__",
]
