"""The undirected database schema graph.

Nodes are relations; edges are foreign-key relationships.  Pure junction
tables (those that exist only to encode an M:N relationship, like DBLP's
``writes`` and ``cites``) are detected here so the G_DS treealization can fold
them into single M:N edges, exactly as the paper's G_DS figures hide them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.db.schema import ForeignKey


@dataclass(frozen=True)
class SchemaEdge:
    """One FK relationship: ``owner.column`` references ``target`` (its PK)."""

    owner: str
    column: str
    target: str

    def other(self, table: str) -> str:
        """The endpoint opposite *table* (owner vs target)."""
        if table == self.owner:
            return self.target
        if table == self.target:
            return self.owner
        raise ValueError(f"table {table!r} is not an endpoint of {self}")


class SchemaGraph:
    """Schema graph over a :class:`~repro.db.database.Database`.

    ``junction_tables`` may be passed explicitly; otherwise a table is
    auto-detected as a junction when it has exactly two foreign keys, no
    foreign keys pointing *into* it, and no data columns beyond its primary
    key and the two FK columns.  (TPC-H's ``partsupp`` carries data and is
    referenced by ``lineitem``, so it is correctly *not* detected — it appears
    as a first-class node in the paper's Figure 12.)
    """

    def __init__(self, db: Database, junction_tables: set[str] | None = None) -> None:
        self.db = db
        self.edges: list[SchemaEdge] = [
            SchemaEdge(owner, fk.column, fk.ref_table)
            for owner, fk in db.foreign_keys()
        ]
        self._by_owner: dict[str, list[SchemaEdge]] = {}
        self._by_target: dict[str, list[SchemaEdge]] = {}
        for edge in self.edges:
            self._by_owner.setdefault(edge.owner, []).append(edge)
            self._by_target.setdefault(edge.target, []).append(edge)
        if junction_tables is None:
            self.junction_tables = {
                name for name in db.table_names if self._looks_like_junction(name)
            }
        else:
            self.junction_tables = set(junction_tables)

    def _looks_like_junction(self, table_name: str) -> bool:
        table = self.db.table(table_name)
        fks: list[ForeignKey] = table.schema.foreign_keys
        if len(fks) != 2:
            return False
        if self._by_target.get(table_name):
            return False
        fk_columns = {fk.column for fk in fks}
        data_columns = {
            c.name
            for c in table.schema.columns
            if c.name != table.schema.primary_key and c.name not in fk_columns
        }
        return not data_columns

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #
    def edges_from(self, table: str) -> list[SchemaEdge]:
        """FK edges owned by *table* (N:1 towards their targets)."""
        return list(self._by_owner.get(table, []))

    def edges_into(self, table: str) -> list[SchemaEdge]:
        """FK edges pointing at *table* (1:N from *table*'s view)."""
        return list(self._by_target.get(table, []))

    def degree(self, table: str) -> int:
        """Number of FK relationships touching *table* (schema connectivity)."""
        return len(self._by_owner.get(table, [])) + len(self._by_target.get(table, []))

    def is_junction(self, table: str) -> bool:
        return table in self.junction_tables

    def junction_partner_edges(
        self, junction: str, arriving_edge: SchemaEdge
    ) -> list[SchemaEdge]:
        """The other FK edge(s) of a junction table, given the one matched.

        For a self-loop M:N (DBLP ``cites``: citing → paper, cited → paper)
        both FKs target the same table; the partner is the *other FK column*,
        so this is keyed on the FK column, not the target table.
        """
        return [
            edge
            for edge in self._by_owner.get(junction, [])
            if edge.column != arriving_edge.column
        ]

    def __repr__(self) -> str:
        return (
            f"SchemaGraph(tables={len(self.db.table_names)}, edges={len(self.edges)}, "
            f"junctions={sorted(self.junction_tables)})"
        )
