"""Schema-level graphs: the database schema graph and G_DS treealization.

The G_DS (Data Subject Schema Graph, Section 2.1 of the paper) is a directed
labelled tree rooted at the relation R_DS holding data subjects.  It is a
"treealization" of the schema: looped and many-to-many relationships are
replicated into distinct tree nodes (PaperCites / PaperCitedBy / Co-Author in
DBLP; the duplicated Supplier / Parts / Lineitem / Partsupp branches in
TPC-H).  Each node carries an affinity score computed with Equation 1 and, once
a ranking is available, the max(R_i)/mmax(R_i) statistics used by the prelim-l
avoidance conditions.
"""

from repro.schema_graph.graph import SchemaEdge, SchemaGraph
from repro.schema_graph.gds import (
    GDS,
    GDSNode,
    JunctionJoin,
    RefJoin,
    ReverseJoin,
    build_gds,
)
from repro.schema_graph.affinity import (
    AffinityModel,
    ComputedAffinityModel,
    ManualAffinityModel,
    select_attributes,
)

__all__ = [
    "SchemaEdge",
    "SchemaGraph",
    "GDS",
    "GDSNode",
    "RefJoin",
    "ReverseJoin",
    "JunctionJoin",
    "build_gds",
    "AffinityModel",
    "ComputedAffinityModel",
    "ManualAffinityModel",
    "select_attributes",
]
