"""G_DS construction: treealization of the schema graph (Section 2.1).

A G_DS node describes *how to reach child tuples from a parent tuple*:

* :class:`RefJoin` — the parent row carries a FK; the child is the single
  referenced row (N:1), e.g. Paper → Year, Customer → Nation.
* :class:`ReverseJoin` — child rows carry a FK to the parent (1:N), e.g.
  Customer → Order, Nation → Supplier.
* :class:`JunctionJoin` — an M:N hop through a pure junction table, e.g.
  Author → Paper via ``writes``, Paper → Co-Author via ``writes`` reversed,
  Paper → PaperCites / PaperCitedBy via ``cites``.

Treealization rules (replicating the behaviour behind the paper's Figures 2
and 12):

* every FK relationship of the current relation spawns a child node, except
  the exact reversal of the edge used to arrive (Customer → Nation does not
  spawn Nation → Customer);
* M:N edges *are* re-traversed backwards — that is what creates Co-Author —
  but the materialisation then excludes the tuple we came from
  (``exclude_origin``), which is why Christos Faloutsos never appears as his
  own co-author;
* a self-loop M:N relation (``cites``) spawns one child per FK column role,
  yielding the replicated PaperCites and PaperCitedBy nodes;
* expansion stops at ``max_depth``; applying the affinity threshold θ then
  yields the pruned G_DS(θ) the algorithms traverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import GraphError
from repro.schema_graph.graph import SchemaGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.schema_graph.affinity import AffinityModel


@dataclass(frozen=True)
class RefJoin:
    """Child = single row referenced by the parent's FK column (N:1)."""

    fk_column: str
    target_table: str


@dataclass(frozen=True)
class ReverseJoin:
    """Children = rows of ``child_table`` whose ``fk_column`` = parent PK (1:N)."""

    child_table: str
    fk_column: str


@dataclass(frozen=True)
class JunctionJoin:
    """Children = M:N partners through ``junction_table``.

    For a parent tuple t: junction rows with ``from_column = t.pk`` are
    fetched, and each row's ``to_column`` resolves a target-table tuple.
    ``exclude_origin`` drops targets equal to the tuple the OS arrived from
    (the co-author rule).
    """

    junction_table: str
    from_column: str
    to_column: str
    target_table: str
    exclude_origin: bool = False


JoinSpec = RefJoin | ReverseJoin | JunctionJoin


class GDSNode:
    """One relation node of a G_DS tree.

    Attributes mirror the paper's annotations: ``affinity`` (Eq. 1),
    ``max_local`` = max(R_i) and ``mmax_local`` = mmax(R_i) (Section 5.3,
    filled in by :func:`repro.ranking.store.annotate_gds`), and the selected
    display ``attributes`` (the θ′ attribute filter of Section 2.1).
    """

    __slots__ = (
        "node_id",
        "label",
        "table",
        "join",
        "parent",
        "children",
        "affinity",
        "depth",
        "attributes",
        "max_local",
        "mmax_local",
    )

    def __init__(
        self,
        node_id: int,
        label: str,
        table: str,
        join: JoinSpec | None,
        parent: "GDSNode | None",
        affinity: float,
    ) -> None:
        self.node_id = node_id
        self.label = label
        self.table = table
        self.join = join
        self.parent = parent
        self.children: list[GDSNode] = []
        self.affinity = affinity
        self.depth = 0 if parent is None else parent.depth + 1
        self.attributes: list[str] = []
        self.max_local = 0.0
        self.mmax_local = 0.0

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def walk(self) -> Iterator["GDSNode"]:
        """Pre-order traversal of this node's subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:
        return (
            f"GDSNode({self.label!r}, table={self.table!r}, "
            f"af={self.affinity:.3f}, depth={self.depth})"
        )


class GDS:
    """A Data Subject Schema Graph: a labelled tree of :class:`GDSNode`."""

    def __init__(self, root: GDSNode) -> None:
        self.root = root
        self._by_label: dict[str, GDSNode] = {}
        for node in root.walk():
            if node.label in self._by_label:
                raise GraphError(f"duplicate G_DS label: {node.label!r}")
            self._by_label[node.label] = node

    @property
    def root_table(self) -> str:
        return self.root.table

    def nodes(self) -> list[GDSNode]:
        """All nodes in pre-order."""
        return list(self.root.walk())

    def node(self, label: str) -> GDSNode:
        try:
            return self._by_label[label]
        except KeyError:
            raise GraphError(f"no G_DS node labelled {label!r}") from None

    def has_node(self, label: str) -> bool:
        return label in self._by_label

    def prune(self, theta: float) -> "GDS":
        """Return G_DS(θ): the subtree of nodes with affinity >= θ.

        The paper: "Given an affinity threshold θ, a subset of G_DS can be
        produced, denoted as G_DS(θ)."  The root always survives (affinity 1).
        Pruning a node prunes its whole subtree (children cannot be connected
        without their parent).
        """
        def clone(node: GDSNode, parent: GDSNode | None, counter: list[int]) -> GDSNode:
            copy = GDSNode(
                counter[0], node.label, node.table, node.join, parent, node.affinity
            )
            counter[0] += 1
            copy.attributes = list(node.attributes)
            copy.max_local = node.max_local
            copy.mmax_local = node.mmax_local
            for child in node.children:
                if child.affinity >= theta:
                    copy.children.append(clone(child, copy, counter))
            return copy

        return GDS(clone(self.root, None, [0]))

    def render(self) -> str:
        """Indented text rendering with affinity annotations (cf. Figure 2)."""
        lines: list[str] = []

        def visit(node: GDSNode, depth: int) -> None:
            prefix = "  " * depth
            lines.append(
                f"{prefix}{node.label} [{node.table}] "
                f"(af={node.affinity:.2f}, max={node.max_local:.3f}, "
                f"mmax={node.mmax_local:.3f})"
            )
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"GDS(root={self.root.label!r}, nodes={len(self._by_label)})"


LabelOverride = Callable[[str, JoinSpec], str]


def _raw_label(join: JoinSpec) -> str:
    """The canonical (pre-uniquification) label for a new G_DS node.

    Override keys are matched against this raw form, so a dataset preset can
    rename e.g. ``("Paper", "paper_via_citing_id")`` to ``"PaperCites"``
    regardless of how many other subtrees used similar defaults first.
    """
    if isinstance(join, RefJoin):
        return join.target_table
    if isinstance(join, ReverseJoin):
        return join.child_table
    if join.exclude_origin:
        return f"co_{join.target_table}"
    return f"{join.target_table}_via_{join.from_column}"


def _uniquify(base: str, used_labels: set[str]) -> str:
    candidate = base
    suffix = 2
    while candidate in used_labels:
        candidate = f"{base}_{suffix}"
        suffix += 1
    return candidate


def build_gds(
    schema_graph: SchemaGraph,
    root_table: str,
    affinity_model: "AffinityModel",
    max_depth: int = 4,
    label_overrides: dict[tuple[str, str], str] | None = None,
    attribute_theta: float = 0.5,
    root_label: str | None = None,
) -> GDS:
    """Treealize the schema graph into a G_DS rooted at *root_table*.

    ``label_overrides`` maps ``(parent_label, default_label)`` to a pretty
    label (the dataset modules use this to match the paper's figure names);
    ``root_label`` names the root node (defaults to the table name).
    ``attribute_theta`` is the θ′ attribute-affinity threshold; attributes
    scoring below it (e.g. TPC-H Comment columns) are excluded from display.
    """
    from repro.schema_graph.affinity import select_attributes

    db = schema_graph.db
    if not db.has_table(root_table):
        raise GraphError(f"unknown root table for G_DS: {root_table!r}")
    overrides = label_overrides or {}
    counter = [0]
    used_labels: set[str] = set()

    def make_node(
        label: str, table: str, join: JoinSpec | None, parent: GDSNode | None
    ) -> GDSNode:
        if parent is None:
            affinity = 1.0
        else:
            edge_score = affinity_model.edge_score(parent, label, table, join)
            if not 0.0 <= edge_score <= 1.0:
                raise GraphError(
                    f"affinity edge score for {label!r} out of [0,1]: {edge_score}"
                )
            affinity = edge_score * parent.affinity
        node = GDSNode(counter[0], label, table, join, parent, affinity)
        counter[0] += 1
        used_labels.add(label)
        node.attributes = select_attributes(
            db.table(table).schema, theta_prime=attribute_theta
        )
        return node

    def candidate_joins(node: GDSNode) -> list[JoinSpec]:
        table = node.table
        arrival = node.join
        parent_table = node.parent.table if node.parent is not None else None
        joins: list[JoinSpec] = []
        # N:1 — FKs owned by this relation.
        for edge in schema_graph.edges_from(table):
            if isinstance(arrival, ReverseJoin) and (
                arrival.child_table == table and arrival.fk_column == edge.column
            ):
                continue  # exact reversal of the arrival edge
            joins.append(RefJoin(fk_column=edge.column, target_table=edge.target))
        # 1:N and M:N — FKs pointing at this relation.
        for edge in schema_graph.edges_into(table):
            if schema_graph.is_junction(edge.owner):
                for partner in schema_graph.junction_partner_edges(edge.owner, edge):
                    reverses_arrival = (
                        isinstance(arrival, JunctionJoin)
                        and arrival.junction_table == edge.owner
                        and arrival.to_column == edge.column
                        and arrival.from_column == partner.column
                    )
                    joins.append(
                        JunctionJoin(
                            junction_table=edge.owner,
                            from_column=edge.column,
                            to_column=partner.column,
                            target_table=partner.target,
                            exclude_origin=reverses_arrival,
                        )
                    )
            else:
                if isinstance(arrival, RefJoin) and (
                    edge.owner == parent_table and arrival.fk_column == edge.column
                ):
                    # We arrived by following exactly this FK from the parent
                    # relation; do not bounce back along it.
                    continue
                joins.append(ReverseJoin(child_table=edge.owner, fk_column=edge.column))
        return joins

    def expand(node: GDSNode) -> None:
        if node.depth >= max_depth:
            return
        for join in candidate_joins(node):
            if isinstance(join, ReverseJoin):
                table = join.child_table
            else:
                table = join.target_table
            raw = _raw_label(join)
            if (node.label, raw) in overrides:
                label = overrides[(node.label, raw)]
                if label in used_labels:
                    raise GraphError(
                        f"label override collision: {label!r} already used in this G_DS"
                    )
            else:
                label = _uniquify(raw, used_labels)
            child = make_node(label, table, join, node)
            node.children.append(child)
            expand(child)

    root = make_node(root_label or root_table, root_table, None, None)
    expand(root)
    return GDS(root)
