"""Affinity models implementing Equation 1 of the paper.

Equation 1 defines the affinity of a relation R_i to R_DS recursively:

    Af(R_i) = ( Σ_j m_j · w_j ) · Af(R_parent)

where the m_j are per-edge affinity metrics in [0, 1] with weights w_j
summing to 1.  The paper (citing [8]) lists distance and connectivity
properties on both the schema and the data graph as metrics, and notes that
"alternatively, a domain expert can set Af(R_i)s manually".

Two models are provided:

:class:`ManualAffinityModel`
    Expert-specified absolute affinities per G_DS label.  The dataset presets
    use the exact values of the paper's Figure 2 (DBLP Author G_DS) and
    Figure 12 (TPC-H Customer G_DS), so annotations match the paper.

:class:`ComputedAffinityModel`
    A concrete instantiation of Eq. 1 with four per-edge metrics:
    distance decay (constant per edge; depth is captured by the recursive
    product), schema connectivity of the child relation, data-graph forward
    cardinality, and reverse cardinality.  High fan-out lowers affinity,
    following [8]'s cardinality metrics.

Attribute selection (the θ′ filter of Section 2.1) lives here too:
:func:`attribute_affinity` scores columns and :func:`select_attributes`
applies the threshold — excluding, for example, TPC-H ``comment`` columns
from Customer OSs exactly as the paper describes.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Protocol

from repro.db.schema import TableSchema
from repro.errors import GraphError
from repro.schema_graph.graph import SchemaGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.schema_graph.gds import GDSNode, JoinSpec


class AffinityModel(Protocol):
    """Supplies the per-edge factor ``Σ_j m_j w_j`` of Equation 1."""

    def edge_score(
        self, parent: "GDSNode", child_label: str, child_table: str, join: "JoinSpec"
    ) -> float:
        """Return the edge factor in [0, 1] for parent → child.

        ``child_label`` is the final label the treealizer assigns to the new
        node (label overrides already applied), so manual models can key
        their expert values by label.
        """
        ...  # pragma: no cover


class ManualAffinityModel:
    """Expert-specified affinities, keyed by G_DS node label.

    ``absolute`` maps node labels to absolute affinities Af(R_i); the edge
    score returned is ``Af(child) / Af(parent)`` so the recursive product of
    Eq. 1 reproduces the absolute values exactly.  Labels missing from the
    map fall back to ``default_edge`` (useful for deep nodes the paper's
    figures do not annotate because θ prunes them anyway).

    The dataset presets pair each model with matching ``label_overrides``
    for :func:`~repro.schema_graph.gds.build_gds`, so the labels seen here
    are exactly the paper's figure names (Paper, Co_Author, PaperCites, ...).
    """

    def __init__(self, absolute: dict[str, float], default_edge: float = 0.5) -> None:
        for label, value in absolute.items():
            if not 0.0 < value <= 1.0:
                raise GraphError(
                    f"manual affinity for {label!r} must be in (0, 1], got {value}"
                )
        if not 0.0 <= default_edge <= 1.0:
            raise GraphError(f"default_edge must be in [0, 1], got {default_edge}")
        self.absolute = dict(absolute)
        self.default_edge = default_edge

    def edge_score(
        self, parent: "GDSNode", child_label: str, child_table: str, join: "JoinSpec"
    ) -> float:
        if child_label not in self.absolute:
            return self.default_edge
        parent_affinity = self.absolute.get(parent.label, parent.affinity)
        if parent_affinity <= 0:
            return 0.0
        return min(1.0, self.absolute[child_label] / parent_affinity)


class ComputedAffinityModel:
    """Equation 1 with concrete distance/connectivity/cardinality metrics.

    Metrics (each in [0, 1], higher = closer affinity):

    * ``m_dist`` — a constant per-edge decay; the recursive product of
      Eq. 1 turns it into exponential decay with schema distance, which is
      exactly the "distance" metric's effect.
    * ``m_conn`` — 1 / (1 + ln(1 + fk_degree(child))): relations tangled
      with many others are less specific to the DS.
    * ``m_card`` — 1 / (1 + ln(1 + avg_fan_out)): a child relation joining
      the parent with huge fan-out (e.g. Lineitem under Order) dilutes each
      child's bond to the DS.
    * ``m_rev`` — 1 / (1 + ln(1 + avg_reverse_fan_out)): how many parents
      share each child (shared children are less DS-specific).

    Weights default to (0.55, 0.15, 0.20, 0.10) and must sum to 1.
    """

    def __init__(
        self,
        schema_graph: SchemaGraph,
        decay: float = 0.93,
        weights: tuple[float, float, float, float] = (0.55, 0.15, 0.20, 0.10),
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise GraphError(f"decay must be in (0, 1], got {decay}")
        if abs(sum(weights) - 1.0) > 1e-9:
            raise GraphError(f"metric weights must sum to 1, got {weights}")
        self.schema_graph = schema_graph
        self.decay = decay
        self.weights = weights

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def _m_conn(self, child_table: str) -> float:
        degree = self.schema_graph.degree(child_table)
        return 1.0 / (1.0 + math.log1p(degree))

    def _avg_fan_out(self, join: "JoinSpec") -> float:
        from repro.schema_graph.gds import JunctionJoin, RefJoin, ReverseJoin

        db = self.schema_graph.db
        if isinstance(join, RefJoin):
            return 1.0  # N:1 — exactly one child per parent
        if isinstance(join, ReverseJoin):
            return db.index_on(join.child_table, join.fk_column).average_fan_out()
        if isinstance(join, JunctionJoin):
            return db.index_on(join.junction_table, join.from_column).average_fan_out()
        raise GraphError(f"unknown join spec: {join!r}")  # pragma: no cover

    def _avg_reverse_fan_out(self, join: "JoinSpec") -> float:
        from repro.schema_graph.gds import JunctionJoin, RefJoin, ReverseJoin

        db = self.schema_graph.db
        if isinstance(join, RefJoin):
            # How many owners share each referenced row.
            owners = [
                (owner, fk)
                for owner, fk in db.foreign_keys()
                if fk.ref_table == join.target_table and fk.column == join.fk_column
            ]
            if not owners:
                return 1.0
            owner, fk = owners[0]
            return db.index_on(owner, fk.column).average_fan_out()
        if isinstance(join, ReverseJoin):
            return 1.0  # each child row has exactly one parent
        if isinstance(join, JunctionJoin):
            return db.index_on(join.junction_table, join.to_column).average_fan_out()
        raise GraphError(f"unknown join spec: {join!r}")  # pragma: no cover

    def edge_score(
        self, parent: "GDSNode", child_label: str, child_table: str, join: "JoinSpec"
    ) -> float:
        w_dist, w_conn, w_card, w_rev = self.weights
        m_dist = self.decay
        m_conn = self._m_conn(child_table)
        m_card = 1.0 / (1.0 + math.log1p(max(0.0, self._avg_fan_out(join))))
        m_rev = 1.0 / (1.0 + math.log1p(max(0.0, self._avg_reverse_fan_out(join))))
        score = w_dist * m_dist + w_conn * m_conn + w_card * m_card + w_rev * m_rev
        return max(0.0, min(1.0, score))


# ---------------------------------------------------------------------- #
# Attribute selection (θ′)
# ---------------------------------------------------------------------- #
_LOW_AFFINITY_MARKERS = ("comment", "remark", "note", "clerk", "shippriority")


def attribute_affinity(column_name: str) -> float:
    """Heuristic attribute affinity in [0, 1].

    Descriptive attributes score high; free-text bookkeeping columns (the
    paper's example: ``Comment`` in TPC-H Partsupp) score low, so the default
    θ′ = 0.5 excludes them — reproducing "Comment is excluded from Partsupp
    relation as it is not relevant to Customer DSs".
    """
    lowered = column_name.lower()
    if any(marker in lowered for marker in _LOW_AFFINITY_MARKERS):
        return 0.2
    return 0.9


def select_attributes(schema: TableSchema, theta_prime: float = 0.5) -> list[str]:
    """Display attributes of a relation passing the θ′ filter.

    Keys (primary and foreign) are never displayed — they carry no
    information for a human reader; they are structure, not content.
    """
    return [
        column.name
        for column in schema.display_columns()
        if attribute_affinity(column.name) >= theta_prime
    ]
