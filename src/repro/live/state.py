"""LiveState: the per-session coordinator of the write path.

Activating live state on a :class:`~repro.session.Session` swaps the
engine's frozen derived structures for their delta-overlaid counterparts
(:class:`~repro.live.delta_graph.LiveDataGraph`,
:class:`~repro.live.delta_index.LiveInvertedIndex`) and installs the
session's :class:`~repro.live.locks.ReadWriteLock` as the engine's read
guard.  From then on every committed transaction flows through
:meth:`LiveState.apply` under the write lock:

1. the ``live.apply`` fault site fires *before* any state changes, so an
   injected fault is a clean abort (503, nothing torn);
2. pre-mutation dirty subjects are walked on the old edges;
3. the transaction commits on the :class:`~repro.db.database.Database`
   (its own undo log guarantees all-or-nothing);
4. importance arrays grow to cover inserted rows (new tuples take their
   table's mean importance — importance is *frozen* between compactions,
   which is what makes incremental == rebuild well-defined);
5. inverted-index and data-graph deltas are patched from the commit's
   :class:`~repro.db.mutation.RowChange` records;
6. post-mutation dirty subjects are walked on the new edges, and the
   union is surgically invalidated in the summary cache — targeted
   subtree patches, not invalidate-everything-touching-a-table;
7. registered watches whose token sets intersect the commit's touched
   tokens are re-evaluated and notified.

:meth:`compact` folds the deltas into fresh frozen structures (a new
generation), optionally writing a :mod:`repro.persist` snapshot
directory so the next cold start attaches the post-mutation dataset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.db.mutation import CommitResult, Delete, Insert, Update
from repro.errors import BackendIOError
from repro.live.delta_graph import LiveDataGraph
from repro.live.delta_index import LiveInvertedIndex
from repro.live.dirty import dirty_subjects
from repro.live.locks import FrozenReadGuard, ReadWriteLock
from repro.live.watch import Watch, WatchRegistry
from repro.reliability import inject
from repro.search.inverted_index import InvertedIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from pathlib import Path

    from repro.session import Session

#: The fault-injection site armed by chaos schedules: fires inside the
#: write lock, before any visible change — an injected fault aborts the
#: mutation cleanly (maps to 503; the database is untouched).
APPLY_FAULT_SITE = "live.apply"


class LiveCommit:
    """What one applied transaction did, for responses and tests."""

    __slots__ = ("commit", "dirty", "touched_tokens", "notified")

    def __init__(
        self,
        commit: CommitResult,
        dirty: set[tuple[str, int]],
        touched_tokens: set[str],
        notified: int,
    ) -> None:
        self.commit = commit
        self.dirty = dirty
        self.touched_tokens = touched_tokens
        self.notified = notified

    @property
    def version(self) -> int:
        return self.commit.version

    def dirty_by_table(self) -> dict[str, list[int]]:
        """Dirty subjects grouped/sorted for deterministic wire bodies."""
        grouped: dict[str, list[int]] = {}
        for table, row_id in sorted(self.dirty):
            grouped.setdefault(table, []).append(row_id)
        return grouped


class LiveState:
    """Mutation-aware serving state for one session (see module docstring)."""

    def __init__(
        self,
        session: "Session",
        *,
        auto_compact_threshold: "int | None" = None,
    ) -> None:
        self.session = session
        self.engine = session.engine
        self.db = self.engine.db
        self.lock = ReadWriteLock()
        # force the lazy CSR build, then overlay it
        self.graph = LiveDataGraph(self.engine.data_graph, self.db)
        self.engine._data_graph = self.graph
        searcher = self.engine.searcher
        self.index = LiveInvertedIndex(searcher.index, searcher.rds_tables)
        searcher.index = self.index
        # swap in the real lock, then drain readers that entered under
        # the frozen guard — the first commit must not race a query that
        # was already in flight when the dataset became mutable
        frozen = self.engine.live_guard
        self.engine.live_guard = self.lock
        if isinstance(frozen, FrozenReadGuard):
            frozen.upgrade(self.lock)
        self.watches = WatchRegistry()
        self.mutations_applied = 0
        self.compactions = 0
        self.auto_compactions = 0
        #: automatic compaction policy: fold the deltas whenever the total
        #: overlay size (graph edges + index postings) crosses this after a
        #: commit; None disables the policy (PR 9's manual-only behavior)
        self.auto_compact_threshold = auto_compact_threshold

    # ------------------------------------------------------------------ #
    # The write path
    # ------------------------------------------------------------------ #
    def apply(self, operations: "Sequence[Insert | Update | Delete]") -> LiveCommit:
        """Commit *operations* and incrementally maintain every derived
        structure (see module docstring for the exact sequence)."""
        with self.lock.write():
            inject(APPLY_FAULT_SITE, BackendIOError)
            pre_touched: list[tuple[str, int]] = []
            for op in operations:
                if isinstance(op, (Update, Delete)):
                    table = self.db.table(op.table)
                    if table.has_pk(op.pk):
                        pre_touched.append((op.table, table.row_id_for_pk(op.pk)))
            # commits or raises untouched (the db's undo log is the guarantee)
            commit = self.db.apply_transaction(operations)
            # the graph still holds pre-mutation edges: walk old subjects
            dirty = dirty_subjects(self.engine.gds_by_root, self.graph, pre_touched)
            self._extend_importance(commit)
            touched_tokens = self._patch_index(commit)
            self.graph.apply_changes(commit.changes)
            dirty |= dirty_subjects(
                self.engine.gds_by_root,
                self.graph,
                [(change.table, change.row_id) for change in commit.changes],
            )
            for rds_table, row_id in sorted(dirty):
                self.session.cache.invalidate(rds_table, row_id)
            self.mutations_applied += 1
            notified = self.watches.on_commit(
                commit.version, touched_tokens, self._evaluate_top
            )
            threshold = self.auto_compact_threshold
            if threshold is not None and self.overlay_size >= threshold:
                # The write lock is re-entrant, and queries see identical
                # answers on either side of the fold — the commit we just
                # applied is already in the overlays being compacted.
                self.compact()
                self.auto_compactions += 1
            return LiveCommit(commit, dirty, touched_tokens, notified)

    def _extend_importance(self, commit: CommitResult) -> None:
        store = self.engine.store
        for table_name in sorted(
            {c.table for c in commit.changes if c.op == "insert"}
        ):
            store.extend(table_name, len(self.db.table(table_name)))

    def _patch_index(self, commit: CommitResult) -> set[str]:
        """Net per-row token deltas into the live index; returns touched
        tokens.  First old_row / last new_row win: a row updated twice in
        one transaction transitions once, from its pre-state to its final
        state."""
        firsts: dict[tuple[str, int], Any] = {}
        finals: dict[tuple[str, int], Any] = {}
        for change in commit.changes:
            key = (change.table, change.row_id)
            if key not in firsts:
                firsts[key] = change.old_row
            finals[key] = change.new_row
        touched: set[str] = set()
        for (table_name, row_id), old_row in firsts.items():
            if table_name not in self.index.tables:
                continue
            schema = self.db.table(table_name).schema
            touched |= self.index.apply_row(
                table_name, row_id, schema, old_row, finals[(table_name, row_id)]
            )
        return touched

    # ------------------------------------------------------------------ #
    # Watches
    # ------------------------------------------------------------------ #
    def _evaluate_top(
        self, keywords: tuple[str, ...], k: int
    ) -> list[dict[str, Any]]:
        matches = self.engine.searcher.search(list(keywords))
        return [
            {
                "table": match.table,
                "row_id": match.row_id,
                "importance": float(match.importance),
            }
            for match in matches[:k]
        ]

    def register_watch(
        self,
        keywords: "list[str] | tuple[str, ...]",
        k: int,
        *,
        watch_id: "str | None" = None,
    ) -> tuple[Watch, int]:
        """Register a continual query; returns (watch, dataset_version).

        The initial top-k is evaluated under the read lock, so the
        returned baseline and version describe one consistent state."""
        with self.lock.read():
            top = self._evaluate_top(tuple(keywords), k)
            watch = self.watches.register(
                list(keywords), k, top, watch_id=watch_id
            )
            return watch, self.db.data_version

    def poll_watch(
        self, watch_id: str, after_version: int, timeout_seconds: float
    ) -> tuple[Watch, list[dict[str, Any]], int]:
        watch, notifications = self.watches.poll(
            watch_id, after_version, timeout_seconds
        )
        return watch, notifications, self.db.data_version

    def cancel_watch(self, watch_id: str) -> bool:
        return self.watches.cancel(watch_id)

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def compact(
        self,
        *,
        snapshot_dir: "str | Path | None" = None,
        subjects: "Sequence[tuple[str, int]] | None" = None,
        overwrite: bool = False,
    ) -> "Path | None":
        """Fold every delta into a fresh frozen generation.

        The compacted CSR is rebuilt per edge from the always-current
        forward arrays (one ``bincount`` + stable ``argsort``, the offline
        builder's kernel) and the inverted index from one tokenizing scan;
        overlays reset to empty so read paths return to their vectorized
        fast paths.  With *snapshot_dir* the new generation is also
        written as a :mod:`repro.persist` snapshot (complete OSs for
        *subjects*, default: every live R_DS row), so cold starts attach
        the post-mutation dataset.
        """
        with self.lock.write():
            self.graph = LiveDataGraph(self.graph.compacted(), self.db)
            self.engine._data_graph = self.graph
            self.index = self.index.rebuilt(
                InvertedIndex(self.db, self.index.tables)
            )
            self.engine.searcher.index = self.index
            self.compactions += 1
            if snapshot_dir is None:
                return None
            from repro.persist.precompute import precompute_snapshot

            if subjects is None:
                subjects = [
                    (table_name, row_id)
                    for table_name in self.engine.gds_by_root
                    for row_id, _row in self.db.table(table_name).scan()
                ]
            report = precompute_snapshot(
                self.engine, subjects, snapshot_dir, overwrite=overwrite
            )
            return report.path

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    @property
    def overlay_size(self) -> int:
        """Total delta-overlay entries: graph edges + index postings."""
        return self.graph.overlay_size + self.index.overlay_size

    def stats(self) -> dict[str, Any]:
        return {
            "dataset_version": self.db.data_version,
            "watch_active": self.watches.active_count,
            "mutations_applied": self.mutations_applied,
            "compactions": self.compactions,
            "auto_compactions": self.auto_compactions,
            "overlay_size": self.overlay_size,
            "graph_dirty_edges": sum(
                1 for adj in self.graph.adjacencies() if getattr(adj, "dirty", False)
            ),
            "index_dirty": self.index.dirty,
        }
