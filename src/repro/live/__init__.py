"""Live mutation subsystem: transactional writes over a serving dataset.

The :mod:`repro.live` package makes a frozen, read-optimised deployment
mutation-aware without giving up its read paths: committed transactions
patch delta overlays over the CSR data graph and the inverted index
(:mod:`~repro.live.delta_graph`, :mod:`~repro.live.delta_index`),
dirty-subject tracking (:mod:`~repro.live.dirty`) downgrades cache
invalidation from "every subject in the table" to exactly the Object
Summaries whose join trees reach a touched tuple, and registered
continual queries (:mod:`~repro.live.watch`) are re-ranked only when a
commit's token footprint overlaps theirs.  :class:`LiveState` ties the
pieces together under a :class:`ReadWriteLock` whose contract — readers
see pre- or post-commit state, never a torn middle — is what the hammer
suite pins.
"""

from repro.live.delta_graph import LiveAdjacency, LiveDataGraph
from repro.live.delta_index import LiveInvertedIndex, row_tokens
from repro.live.dirty import dirty_subjects
from repro.live.locks import FrozenReadGuard, NULL_GUARD, ReadWriteLock
from repro.live.state import APPLY_FAULT_SITE, LiveCommit, LiveState
from repro.live.watch import MAX_NOTIFICATIONS, Watch, WatchRegistry

__all__ = [
    "APPLY_FAULT_SITE",
    "LiveAdjacency",
    "LiveCommit",
    "FrozenReadGuard",
    "LiveDataGraph",
    "LiveInvertedIndex",
    "LiveState",
    "MAX_NOTIFICATIONS",
    "NULL_GUARD",
    "ReadWriteLock",
    "Watch",
    "WatchRegistry",
    "dirty_subjects",
    "row_tokens",
]
