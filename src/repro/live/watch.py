"""Continual keyword queries: registered top-k watches over a live dataset.

A watch is a registered keyword query plus its last-delivered ranked
top-k match list.  On every committed transaction the live state asks the
registry to re-evaluate — but only the watches whose token sets intersect
the commit's touched tokens can possibly change (match membership is a
pure function of the inverted index, and importance is frozen between
compactions), so an irrelevant write re-ranks nothing.  When a watch's
top-k differs from the last delivered list, a versioned notification is
queued and every long-poller is woken.

Pollers use ``after_version`` cursors: :meth:`poll` blocks until a
notification newer than the cursor exists (or the timeout lapses), then
returns *all* queued notifications newer than the cursor — so a slow
poller sees every intermediate top-k change up to the retention cap.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RequestValidationError, UnknownWatchError
from repro.search.tokenizer import tokenize

#: Queued notifications kept per watch; older ones are dropped (a poller
#: that lags further behind re-syncs from the newest retained entry).
MAX_NOTIFICATIONS = 128


@dataclass
class Watch:
    """One registered continual query and its delivery state."""

    watch_id: str
    keywords: tuple[str, ...]
    k: int
    tokens: frozenset[str]
    last_top: list[dict[str, Any]]
    #: queued (dataset_version, top_k) deliveries, oldest first
    notifications: list[dict[str, Any]] = field(default_factory=list)
    cancelled: bool = False


class WatchRegistry:
    """All watches of one dataset's live state."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._watches: dict[str, Watch] = {}

    # ------------------------------------------------------------------ #
    # Registration lifecycle
    # ------------------------------------------------------------------ #
    def register(
        self,
        keywords: "list[str] | tuple[str, ...]",
        k: int,
        initial_top: list[dict[str, Any]],
        *,
        watch_id: "str | None" = None,
    ) -> Watch:
        """Create a watch seeded with its initial top-k (already evaluated).

        ``watch_id`` lets the cluster router pre-assign one id and
        broadcast it to every shard; single-process callers get a fresh id.
        """
        tokens: set[str] = set()
        for keyword in keywords:
            tokens.update(tokenize(keyword))
        if not tokens:
            raise RequestValidationError(
                "field 'keywords' must contain at least one indexable token"
            )
        watch = Watch(
            watch_id=watch_id if watch_id else uuid.uuid4().hex[:16],
            keywords=tuple(keywords),
            k=int(k),
            tokens=frozenset(tokens),
            last_top=list(initial_top),
        )
        with self._cond:
            if watch.watch_id in self._watches:
                raise RequestValidationError(
                    f"watch id already registered: {watch.watch_id!r}"
                )
            self._watches[watch.watch_id] = watch
        return watch

    def get(self, watch_id: str) -> Watch:
        with self._cond:
            watch = self._watches.get(watch_id)
        if watch is None:
            raise UnknownWatchError(watch_id)
        return watch

    def cancel(self, watch_id: str) -> bool:
        """Cancel and remove a watch; wakes its pollers. False if unknown."""
        with self._cond:
            watch = self._watches.pop(watch_id, None)
            if watch is None:
                return False
            watch.cancelled = True
            self._cond.notify_all()
        return True

    @property
    def active_count(self) -> int:
        with self._cond:
            return len(self._watches)

    # ------------------------------------------------------------------ #
    # Commit-time evaluation + long-polling
    # ------------------------------------------------------------------ #
    def on_commit(
        self,
        version: int,
        touched_tokens: set[str],
        evaluate: Callable[[tuple[str, ...], int], list[dict[str, Any]]],
    ) -> int:
        """Re-evaluate affected watches after a commit; returns how many
        notifications were queued.  Runs under the live write lock — the
        evaluation sees exactly the committed state."""
        queued = 0
        with self._cond:
            watches = list(self._watches.values())
        for watch in watches:
            if touched_tokens and not (watch.tokens & touched_tokens):
                continue
            top = evaluate(watch.keywords, watch.k)
            if top == watch.last_top:
                continue
            with self._cond:
                if watch.cancelled:
                    continue
                watch.last_top = list(top)
                watch.notifications.append(
                    {"dataset_version": version, "top_k": top}
                )
                del watch.notifications[:-MAX_NOTIFICATIONS]
                queued += 1
                self._cond.notify_all()
        return queued

    def poll(
        self, watch_id: str, after_version: int, timeout_seconds: float
    ) -> tuple[Watch, list[dict[str, Any]]]:
        """Block until the watch has a notification newer than
        ``after_version`` (or the timeout lapses); returns the watch and
        every retained notification newer than the cursor, oldest first."""
        deadline = time.monotonic() + max(0.0, timeout_seconds)
        with self._cond:
            while True:
                watch = self._watches.get(watch_id)
                if watch is None:
                    raise UnknownWatchError(watch_id)
                fresh = [
                    dict(entry)
                    for entry in watch.notifications
                    if entry["dataset_version"] > after_version
                ]
                if fresh:
                    return watch, fresh
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return watch, []
                self._cond.wait(min(remaining, 0.5))
